//! # vtpm-sentinel — streaming security-detection plane
//!
//! The telemetry crate *measures*; this crate *watches*. A [`Sentinel`]
//! consumes the platform's observability exhaust — request spans,
//! migration spans, audit records, hypervisor dump events, and gauge
//! snapshots — as one ordered stream of [`StreamEvent`]s and runs a set
//! of pluggable online [`Detector`]s over it:
//!
//! * **deny-rate anomaly** — per-VM EWMA of the denied fraction
//!   ([`detectors::DenyRateEwma`]);
//! * **dump-attack signature** — any cross-domain use of the memory
//!   dump facility, the structural fingerprint of the A1–A7 attack
//!   family ([`detectors::DumpSignature`]);
//! * **migration-replay watch** — bursts of `RejectedStale` refusals
//!   ([`detectors::ReplayWatch`]);
//! * **nonce hygiene** — any observed nonce reuse
//!   ([`detectors::NonceHygiene`]);
//! * **scrub escalation** — cumulative mirror scrub failures past a
//!   budget ([`detectors::ScrubEscalation`]);
//! * **quote-storm** — per-verifier attestation-submission bursts
//!   against the verifier plane ([`detectors::QuoteStorm`]); its alerts
//!   carry the offending verifier in `domain` so the harness can close
//!   the loop into the pool's admission throttle, mirroring the
//!   deny-rate → ring-admission path;
//! * **stale-quote watch** — bursts of stale or replayed deep-quote
//!   presentations ([`detectors::StaleQuoteWatch`]);
//! * **SLO burn relay** — observatory burn-rate transitions arriving as
//!   `slo_burn:<rule>` gauges ([`detectors::SloBurn`]); raises and
//!   clears feed the harness's fleet pause/resume bridge the same way
//!   churn-storm alerts do.
//!
//! Everything is driven by caller-supplied virtual-time stamps and the
//! stream order — no wall clock, no randomness — so a chaos replay of
//! the same seed produces byte-identical alerts, and the R-D1
//! experiment can gate hard on "zero false positives on clean seeds,
//! every injected attack detected".
//!
//! A bounded [`FlightRecorder`] (the black box) retains the last N
//! events; the engine snapshots it into a [`FlightDump`] whenever a
//! detector fires or a crash-recovery marker passes by, giving each
//! alert its surrounding context without unbounded retention.
//!
//! The crate deliberately depends only on `vtpm-telemetry`: audit and
//! hypervisor facts arrive as plain-field views ([`AuditView`],
//! [`DumpView`]) so the sentinel can run out-of-process of the stack it
//! observes, exactly like a real detection plane.

pub mod detectors;
pub mod flight;

pub use detectors::{
    default_detectors, ChurnStorm, DenyRateEwma, Detector, DumpSignature, NonceHygiene,
    QuoteStorm, ReplayWatch, ScrubEscalation, SloBurn, StaleQuoteWatch,
};
pub use flight::{FlightDump, FlightRecorder};

use vtpm_telemetry::{MigrationSpanRecord, SpanRecord};

/// Audit-record outcome, as the sentinel sees it: a plain-field mirror
/// of the access-control crate's `AuditOutcome` (codes match its wire
/// encoding) so this crate needs no dependency on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditKind {
    /// Request allowed and executed.
    Allowed,
    /// Request denied; payload is the deny-reason code (see
    /// `vtpm_telemetry::DENY_LABELS`).
    Denied(u8),
    /// A migration-protocol stage was chained; payload is the stage
    /// code (`MigrationStage as u8`; 7 = `RejectedStale`).
    MigrationStage(u8),
}

/// One audit record, flattened for the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditView {
    /// Host whose audit chain recorded it.
    pub host: u32,
    /// Virtual timestamp (ns).
    pub at_ns: u64,
    /// Request id / migration trace id the entry is chained under.
    pub request_id: u64,
    /// Requesting domain (or peer host for migration stages).
    pub domain: u32,
    /// Target vTPM instance (or cluster vm id).
    pub instance: u32,
    /// TPM ordinal (or migration epoch, truncated).
    pub ordinal: u32,
    /// How the entry ended.
    pub kind: AuditKind,
}

/// One use of the hypervisor memory-dump facility, flattened from
/// `xen_sim::DumpEvent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DumpView {
    /// Host the dump ran on.
    pub host: u32,
    /// Virtual timestamp (ns).
    pub at_ns: u64,
    /// Domain that invoked the dump.
    pub caller_domain: u32,
    /// Frames returned.
    pub frames: u64,
    /// Frames owned by *other* domains — zero for benign self-dumps,
    /// positive exactly when memory crossed a domain boundary.
    pub foreign_frames: u64,
}

/// One attestation-verification outcome, flattened from the verifier
/// plane's event stream (`vtpm_attest::AttestEvent`) — plain fields so
/// this crate needs no dependency on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttestView {
    /// Host whose verifier pool judged the submission.
    pub host: u32,
    /// Virtual timestamp (ns).
    pub at_ns: u64,
    /// Submitting verifier's identity.
    pub verifier: u32,
    /// Instance the evidence claimed (0 when it never decoded).
    pub instance: u32,
    /// Verdict code (`vtpm_attest::Verdict::code`): 0 accepted,
    /// 1 stale, 2 replayed, 3 bad-chain, 4 untrusted-hw-aik,
    /// 5 measurement-mismatch, 6 malformed, 7 throttled.
    pub verdict: u8,
}

/// One event on the sentinel's input stream, in virtual-time order.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// A finished request span from some host's telemetry ring.
    Span {
        /// Host the request ran on.
        host: u32,
        /// The span record.
        record: SpanRecord,
    },
    /// A finished migration attempt (cluster-wide; carries src/dst).
    MigrationSpan(MigrationSpanRecord),
    /// An audit-chain record.
    Audit(AuditView),
    /// A memory-dump trail entry.
    Dump(DumpView),
    /// A verifier-plane verdict on one attestation submission.
    Attest(AttestView),
    /// A named gauge observation (e.g. `nonce_reuses`,
    /// `mirror_scrub_failures`), sampled from a metrics snapshot.
    Gauge {
        /// Host the gauge belongs to.
        host: u32,
        /// Virtual timestamp of the sample (ns).
        at_ns: u64,
        /// Stable gauge name.
        name: &'static str,
        /// Current value.
        value: u64,
    },
    /// A host finished crash recovery — always worth a black-box dump.
    CrashRecovery {
        /// The recovered host.
        host: u32,
        /// Virtual timestamp (ns).
        at_ns: u64,
    },
}

impl StreamEvent {
    /// Virtual timestamp of the event (ns).
    pub fn at_ns(&self) -> u64 {
        match self {
            StreamEvent::Span { record, .. } => record.end_ns,
            StreamEvent::MigrationSpan(m) => m.start_ns.saturating_add(m.total_ns),
            StreamEvent::Audit(a) => a.at_ns,
            StreamEvent::Dump(d) => d.at_ns,
            StreamEvent::Attest(a) => a.at_ns,
            StreamEvent::Gauge { at_ns, .. } | StreamEvent::CrashRecovery { at_ns, .. } => *at_ns,
        }
    }

    /// Host the event is attributed to (source host for migrations).
    pub fn host(&self) -> u32 {
        match self {
            StreamEvent::Span { host, .. }
            | StreamEvent::Gauge { host, .. }
            | StreamEvent::CrashRecovery { host, .. } => *host,
            StreamEvent::MigrationSpan(m) => m.src_host,
            StreamEvent::Audit(a) => a.host,
            StreamEvent::Dump(d) => d.host,
            StreamEvent::Attest(a) => a.host,
        }
    }

    /// Compact, deterministic one-line rendering for flight dumps.
    pub fn describe(&self) -> String {
        match self {
            StreamEvent::Span { host, record } => format!(
                "span host={host} req={} dom={} ord={:#06x} outcome={}",
                record.request_id,
                record.domain,
                record.ordinal,
                record.outcome.label()
            ),
            StreamEvent::MigrationSpan(m) => format!(
                "migration trace={:#x} vm={} epoch={} {}→{} outcome={}",
                m.trace_id,
                m.vm,
                m.epoch,
                m.src_host,
                m.dst_host,
                m.outcome.label()
            ),
            StreamEvent::Audit(a) => format!(
                "audit host={} req={:#x} dom={} kind={:?}",
                a.host, a.request_id, a.domain, a.kind
            ),
            StreamEvent::Dump(d) => format!(
                "dump host={} caller=dom{} frames={} foreign={}",
                d.host, d.caller_domain, d.frames, d.foreign_frames
            ),
            StreamEvent::Attest(a) => format!(
                "attest host={} verifier={} instance={} verdict={}",
                a.host, a.verifier, a.instance, a.verdict
            ),
            StreamEvent::Gauge { host, name, value, .. } => {
                format!("gauge host={host} {name}={value}")
            }
            StreamEvent::CrashRecovery { host, .. } => format!("crash-recovery host={host}"),
        }
    }
}

/// How loudly a detector fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Operationally interesting; not a security event by itself.
    Warning,
    /// A security invariant broke or an attack signature matched.
    Critical,
}

impl Severity {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }
}

/// One detector firing.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Which detector fired.
    pub detector: &'static str,
    /// Host the triggering event was attributed to.
    pub host: u32,
    /// Virtual timestamp of the triggering event (ns) — detection
    /// latency is `at_ns - attack_start_ns`.
    pub at_ns: u64,
    /// Severity.
    pub severity: Severity,
    /// Causal trace/request id of the triggering event, when it has one.
    pub trace_id: Option<u64>,
    /// Source domain the alert implicates, when the detector attributes
    /// one (today only the deny-rate detector does). This is what the
    /// manager's admission-control bridge keys its throttling on.
    pub domain: Option<u32>,
    /// Human-readable specifics (deterministic for a given stream).
    pub detail: String,
}

impl Alert {
    /// Deterministic transcript line.
    pub fn line(&self) -> String {
        let trace = match self.trace_id {
            Some(t) => format!(" trace={t:#x}"),
            None => String::new(),
        };
        format!(
            "[{}] {} host={} at={}ns{}: {}",
            self.severity.label(),
            self.detector,
            self.host,
            self.at_ns,
            trace,
            self.detail
        )
    }
}

/// Tunables for the default detector set and the black box.
#[derive(Debug, Clone, Copy)]
pub struct SentinelConfig {
    /// Events the flight recorder retains (per sentinel).
    pub flight_capacity: usize,
    /// At most this many flight dumps are kept (first firings matter
    /// most; later ones only bump counters).
    pub max_flight_dumps: usize,
    /// EWMA smoothing factor for the deny-rate detector.
    pub deny_rate_alpha: f64,
    /// Deny-rate EWMA level that trips the detector.
    pub deny_rate_threshold: f64,
    /// Spans a (host, domain) pair must produce before the deny-rate
    /// detector may fire (cold-start guard).
    pub deny_rate_min_samples: u64,
    /// Sliding window for the replay watch (virtual ns).
    pub replay_window_ns: u64,
    /// `RejectedStale` refusals within the window that trip the watch.
    pub replay_burst: usize,
    /// Cumulative mirror scrub failures tolerated before escalation.
    pub scrub_budget: u64,
    /// A Dom0 dump this close (virtual ns) to an observed
    /// crash-recovery on the same host is the manager's own recovery
    /// scan, not an attack, and is not flagged.
    pub recovery_dump_grace_ns: u64,
    /// Sliding window for the quote-storm detector (virtual ns).
    pub quote_storm_window_ns: u64,
    /// Attestation submissions from one verifier within the window that
    /// qualify as a storm.
    pub quote_storm_burst: usize,
    /// Sliding window for the stale-quote watch (virtual ns).
    pub stale_quote_window_ns: u64,
    /// Stale/replayed presentations within the window that trip the
    /// watch.
    pub stale_quote_burst: usize,
    /// Sliding window for the churn-storm / host-flap watch (virtual
    /// ns).
    pub churn_window_ns: u64,
    /// Crash-recoveries (any host) within the window that qualify as a
    /// churn storm.
    pub churn_storm_crashes: usize,
    /// Once a storm is raised, it clears when the window drains to at
    /// most this many crash-recoveries.
    pub churn_clear_crashes: usize,
    /// Crash-recoveries of a *single* host within the window that flag
    /// that host as flapping.
    pub host_flap_crashes: usize,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig {
            flight_capacity: 256,
            max_flight_dumps: 8,
            deny_rate_alpha: 0.2,
            // Chaos workloads legitimately mix denied traffic in; only
            // a sustained majority-denied stream is anomalous.
            deny_rate_threshold: 0.9,
            deny_rate_min_samples: 8,
            replay_window_ns: 10_000_000,
            // migrate() retries at most twice after a rejection, so a
            // healthy run can produce a couple of stale refusals — a
            // burst of four within the window cannot happen without an
            // active replayer.
            replay_burst: 4,
            scrub_budget: 64,
            // The recovery scan and the crash-recovery marker are
            // stamped by the same virtual clock with no workload in
            // between, so 1ms of grace is already generous.
            recovery_dump_grace_ns: 1_000_000,
            // A verifier with a legitimate cadence polls once per
            // nonce-window (seconds of virtual time); 64 submissions
            // inside one millisecond is mechanical hammering.
            quote_storm_window_ns: 1_000_000,
            quote_storm_burst: 64,
            stale_quote_window_ns: 10_000_000,
            // The freshness window is issuer-published, so an honest
            // verifier ages out of it at most once per window roll; a
            // burst of four refusals means replayed/hoarded evidence.
            stale_quote_burst: 4,
            // Migration-chaos rounds advance virtual time by whole
            // milliseconds each (fabric frames + RSA opens), so
            // organic crashes land several ms apart; four recoveries
            // crammed into 5 ms is a storm by construction.
            churn_window_ns: 5_000_000,
            churn_storm_crashes: 4,
            churn_clear_crashes: 1,
            host_flap_crashes: 3,
        }
    }
}

/// The streaming engine: feeds every event to the black box and the
/// detector set, collects alerts, and snapshots the black box when one
/// fires.
pub struct Sentinel {
    cfg: SentinelConfig,
    detectors: Vec<Box<dyn Detector>>,
    flight: FlightRecorder,
    alerts: Vec<Alert>,
    dumps: Vec<FlightDump>,
    events_seen: u64,
}

impl Sentinel {
    /// A sentinel with the default detector set.
    pub fn new(cfg: SentinelConfig) -> Self {
        let detectors = default_detectors(&cfg);
        Self::with_detectors(cfg, detectors)
    }

    /// A sentinel with a caller-supplied detector set.
    pub fn with_detectors(cfg: SentinelConfig, detectors: Vec<Box<dyn Detector>>) -> Self {
        Sentinel {
            detectors,
            flight: FlightRecorder::new(cfg.flight_capacity),
            alerts: Vec::new(),
            dumps: Vec::new(),
            events_seen: 0,
            cfg,
        }
    }

    /// Feed one event through the black box and every detector.
    /// Returns how many new alerts fired.
    pub fn observe(&mut self, ev: StreamEvent) -> usize {
        self.events_seen += 1;
        self.flight.push(ev.clone());
        let new_alerts: Vec<Alert> =
            self.detectors.iter_mut().filter_map(|d| d.observe(&ev)).collect();
        let fired = new_alerts.len();
        for alert in new_alerts {
            self.dump_black_box(format!("alert: {}", alert.line()), alert.at_ns);
            self.alerts.push(alert);
        }
        if let StreamEvent::CrashRecovery { at_ns, host } = ev {
            self.dump_black_box(format!("crash-recovery host={host}"), at_ns);
        }
        fired
    }

    /// Feed a batch, preserving order.
    pub fn observe_all(&mut self, events: impl IntoIterator<Item = StreamEvent>) -> usize {
        events.into_iter().map(|ev| self.observe(ev)).sum()
    }

    fn dump_black_box(&mut self, reason: String, at_ns: u64) {
        if self.dumps.len() < self.cfg.max_flight_dumps {
            self.dumps.push(self.flight.dump(reason, at_ns));
        }
    }

    /// Every alert so far, in firing order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alerts at [`Severity::Critical`] — the attack-detection verdicts
    /// the R-D1 gate counts.
    pub fn critical_alerts(&self) -> impl Iterator<Item = &Alert> {
        self.alerts.iter().filter(|a| a.severity == Severity::Critical)
    }

    /// Black-box snapshots captured so far.
    pub fn flight_dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Events consumed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Deterministic summary block for chaos transcripts: event count,
    /// then one line per alert, then one line per flight dump.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut out =
            vec![format!("sentinel: events={} alerts={}", self.events_seen, self.alerts.len())];
        out.extend(self.alerts.iter().map(Alert::line));
        out.extend(self.dumps.iter().map(FlightDump::summary));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtpm_telemetry::{migration_trace_id, Outcome};

    fn span(host: u32, id: u64, end_ns: u64, outcome: Outcome) -> StreamEvent {
        StreamEvent::Span {
            host,
            record: SpanRecord {
                request_id: id,
                domain: 3,
                ordinal: 0x14,
                ingress_ns: end_ns.saturating_sub(100),
                decode_ns: end_ns.saturating_sub(80),
                ac_ns: end_ns.saturating_sub(60),
                exec_ns: end_ns.saturating_sub(40),
                mirror_ns: end_ns.saturating_sub(20),
                end_ns,
                mirror_bytes: 0,
                outcome,
            },
        }
    }

    #[test]
    fn clean_stream_stays_silent() {
        let mut s = Sentinel::new(SentinelConfig::default());
        for i in 0..100 {
            // Mostly-allowed traffic with a sprinkle of denies, benign
            // self-dumps, zero gauges: nothing here is anomalous.
            let outcome = if i % 10 == 0 { Outcome::Denied(2) } else { Outcome::Ok };
            s.observe(span(0, i, 1_000 * i, outcome));
        }
        s.observe(StreamEvent::Dump(DumpView {
            host: 0,
            at_ns: 200_000,
            caller_domain: 5,
            frames: 8,
            foreign_frames: 0,
        }));
        s.observe(StreamEvent::Gauge { host: 0, at_ns: 201_000, name: "nonce_reuses", value: 0 });
        assert!(s.alerts().is_empty(), "clean stream fired: {:?}", s.alerts());
        assert!(s.flight_dumps().is_empty());
    }

    #[test]
    fn foreign_dump_fires_critical_with_black_box() {
        let mut s = Sentinel::new(SentinelConfig::default());
        s.observe(span(1, 7, 5_000, Outcome::Ok));
        let fired = s.observe(StreamEvent::Dump(DumpView {
            host: 1,
            at_ns: 9_000,
            caller_domain: 0,
            frames: 128,
            foreign_frames: 96,
        }));
        assert_eq!(fired, 1);
        let a = &s.alerts()[0];
        assert_eq!((a.detector, a.severity), ("dump-signature", Severity::Critical));
        assert_eq!(a.at_ns, 9_000);
        // The black box captured the span that preceded the dump.
        assert_eq!(s.flight_dumps().len(), 1);
        assert!(s.flight_dumps()[0].events.iter().any(|e| matches!(e, StreamEvent::Span { .. })));
    }

    #[test]
    fn replay_burst_fires_once_and_carries_trace() {
        let mut s = Sentinel::new(SentinelConfig::default());
        let trace = migration_trace_id(4, 9);
        for i in 0..6u64 {
            s.observe(StreamEvent::Audit(AuditView {
                host: 2,
                at_ns: 1_000_000 + i * 1_000,
                request_id: trace,
                domain: 1,
                instance: 4,
                ordinal: 9,
                kind: AuditKind::MigrationStage(7),
            }));
        }
        let fired: Vec<_> = s.alerts().iter().filter(|a| a.detector == "replay-watch").collect();
        assert_eq!(fired.len(), 1, "latched after first firing");
        assert_eq!(fired[0].trace_id, Some(trace));
    }

    #[test]
    fn summary_is_deterministic() {
        let run = || {
            let mut s = Sentinel::new(SentinelConfig::default());
            for i in 0..20 {
                s.observe(span(0, i, 500 * i, Outcome::Denied(1)));
            }
            s.observe(StreamEvent::Gauge {
                host: 0,
                at_ns: 99_000,
                name: "nonce_reuses",
                value: 2,
            });
            s.summary_lines()
        };
        let a = run();
        assert_eq!(a, run(), "same stream must produce byte-identical summaries");
        assert!(a.iter().any(|l| l.contains("deny-rate")), "sustained denies fire: {a:?}");
        assert!(a.iter().any(|l| l.contains("nonce-hygiene")), "nonce reuse fires: {a:?}");
    }
}
