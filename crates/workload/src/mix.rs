//! TPM command mixes.
//!
//! The paper's evaluation needs realistic guest behaviour; absent its
//! exact workload description, the mixes model the three ways guests
//! used vTPMs in the 2010 literature: remote attestation services
//! (quote-heavy), sealed-storage services (seal/unseal-heavy), and
//! general integrity measurement (extend/read with occasional seals).

use tpm_crypto::drbg::Drbg;

/// One operation a guest can issue against its vTPM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// TPM_GetRandom (16 bytes).
    GetRandom,
    /// TPM_PcrRead of a rotating index.
    PcrRead,
    /// TPM_Extend of a rotating index.
    Extend,
    /// TPM_Seal of a small secret under the SRK.
    Seal,
    /// TPM_Unseal of the prepared blob.
    Unseal,
    /// TPM_Quote over PCRs 0–3 with a fresh nonce.
    Quote,
    /// TPM_Sign of a small message.
    Sign,
}

impl Op {
    /// All operations, in declaration order.
    pub const ALL: [Op; 7] =
        [Op::GetRandom, Op::PcrRead, Op::Extend, Op::Seal, Op::Unseal, Op::Quote, Op::Sign];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Op::GetRandom => "GetRandom",
            Op::PcrRead => "PcrRead",
            Op::Extend => "Extend",
            Op::Seal => "Seal",
            Op::Unseal => "Unseal",
            Op::Quote => "Quote",
            Op::Sign => "Sign",
        }
    }
}

/// A weighted command mix.
#[derive(Debug, Clone)]
pub struct CommandMix {
    /// Mix label for reports.
    pub name: &'static str,
    weights: Vec<(Op, u32)>,
    total: u32,
}

impl CommandMix {
    /// Build from (op, weight) pairs; weights need not sum to anything.
    pub fn new(name: &'static str, weights: &[(Op, u32)]) -> Self {
        let total = weights.iter().map(|(_, w)| w).sum();
        assert!(total > 0, "mix must have positive total weight");
        CommandMix { name, weights: weights.to_vec(), total }
    }

    /// Attestation service: mostly quotes and PCR reads.
    pub fn attestation_heavy() -> Self {
        Self::new(
            "attestation",
            &[(Op::Quote, 50), (Op::PcrRead, 30), (Op::Extend, 10), (Op::GetRandom, 10)],
        )
    }

    /// Sealed-storage service: seal/unseal dominates.
    pub fn sealing_heavy() -> Self {
        Self::new(
            "sealing",
            &[(Op::Seal, 35), (Op::Unseal, 35), (Op::GetRandom, 15), (Op::PcrRead, 15)],
        )
    }

    /// Integrity measurement: extends and reads, occasional seal.
    pub fn measurement() -> Self {
        Self::new(
            "measurement",
            &[(Op::Extend, 45), (Op::PcrRead, 35), (Op::Seal, 10), (Op::GetRandom, 10)],
        )
    }

    /// Uniform mix over everything (stress).
    pub fn uniform() -> Self {
        Self::new("uniform", &Op::ALL.map(|o| (o, 1)))
    }

    /// Cheap-commands-only mix (used where RSA cost would drown the
    /// quantity being measured, e.g. the manager-scaling experiment).
    pub fn light() -> Self {
        Self::new("light", &[(Op::GetRandom, 40), (Op::PcrRead, 40), (Op::Extend, 20)])
    }

    /// Draw the next operation.
    pub fn sample(&self, rng: &mut Drbg) -> Op {
        let mut pick = rng.below(self.total as u64) as u32;
        for (op, w) in &self.weights {
            if pick < *w {
                return *op;
            }
            pick -= w;
        }
        unreachable!("weights cover the range")
    }

    /// Generate a fixed-length operation sequence.
    pub fn sequence(&self, n: usize, rng: &mut Drbg) -> Vec<Op> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The weight assigned to `op` (0 when absent).
    pub fn weight(&self, op: Op) -> u32 {
        self.weights.iter().find(|(o, _)| *o == op).map(|(_, w)| *w).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_respects_weights_roughly() {
        let mix = CommandMix::new("t", &[(Op::Extend, 90), (Op::Seal, 10)]);
        let mut rng = Drbg::new(b"mix");
        let seq = mix.sequence(2000, &mut rng);
        let extends = seq.iter().filter(|&&o| o == Op::Extend).count();
        let seals = seq.len() - extends;
        assert!(extends > 1600 && extends < 1990, "extends {extends}");
        assert!(seals > 10, "seals {seals}");
    }

    #[test]
    fn single_op_mix_is_constant() {
        let mix = CommandMix::new("only", &[(Op::Quote, 5)]);
        let mut rng = Drbg::new(b"mix2");
        assert!(mix.sequence(50, &mut rng).iter().all(|&o| o == Op::Quote));
    }

    #[test]
    fn presets_are_well_formed() {
        for mix in [
            CommandMix::attestation_heavy(),
            CommandMix::sealing_heavy(),
            CommandMix::measurement(),
            CommandMix::uniform(),
            CommandMix::light(),
        ] {
            let mut rng = Drbg::new(b"preset");
            let seq = mix.sequence(100, &mut rng);
            assert_eq!(seq.len(), 100);
            // Every sampled op has positive weight in the mix.
            assert!(seq.iter().all(|&o| mix.weight(o) > 0), "{}", mix.name);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let mix = CommandMix::uniform();
        let mut a = Drbg::new(b"same");
        let mut b = Drbg::new(b"same");
        assert_eq!(mix.sequence(100, &mut a), mix.sequence(100, &mut b));
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn empty_mix_panics() {
        CommandMix::new("empty", &[]);
    }
}
