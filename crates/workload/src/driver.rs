//! Per-guest closed-loop driver.
//!
//! [`GuestSession::prepare`] performs the one-time setup a real
//! vTPM-using guest does at boot (Startup, TakeOwnership, create and
//! load a signing key, seal a reference blob); [`GuestSession::run`]
//! then executes operations from a [`crate::mix::CommandMix`], each a
//! complete multi-command TPM exchange (sessions included) over the
//! guest's transport.

use tpm::{handle, ClientError, KeyUsage, PcrSelection, SealedBlob, TpmClient, Transport};
use tpm_crypto::drbg::Drbg;

use crate::mix::Op;

/// A prepared guest TPM session.
pub struct GuestSession<T: Transport> {
    client: TpmClient<T>,
    owner_auth: [u8; 20],
    srk_auth: [u8; 20],
    key_auth: [u8; 20],
    data_auth: [u8; 20],
    sign_key: u32,
    sealed: SealedBlob,
    rng: Drbg,
    pcr_cursor: u32,
    ops_run: u64,
}

impl<T: Transport> GuestSession<T> {
    /// Set up the guest's TPM end to end. Expensive (one RSA keygen in
    /// the vTPM); do it once per guest, outside timed regions.
    pub fn prepare(transport: T, seed: &[u8]) -> Result<Self, ClientError> {
        let mut rng = Drbg::new(&[seed, b"/driver"].concat());
        let mut auths = [[0u8; 20]; 4];
        for a in auths.iter_mut() {
            rng.fill_bytes(a);
        }
        let [owner_auth, srk_auth, key_auth, data_auth] = auths;

        let mut client = TpmClient::new(transport, seed);
        client.startup_clear()?;
        client.take_ownership(&owner_auth, &srk_auth)?;
        let blob = client.create_wrap_key(
            handle::SRK,
            &srk_auth,
            KeyUsage::Signing,
            512,
            &key_auth,
            None,
        )?;
        let sign_key = client.load_key2(handle::SRK, &srk_auth, &blob)?;
        let sealed = client.seal(handle::SRK, &srk_auth, &data_auth, None, b"reference-secret")?;
        Ok(GuestSession {
            client,
            owner_auth,
            srk_auth,
            key_auth,
            data_auth,
            sign_key,
            sealed,
            rng,
            pcr_cursor: 0,
            ops_run: 0,
        })
    }

    /// Owner auth (exposed for scenario code that needs admin ops).
    pub fn owner_auth(&self) -> [u8; 20] {
        self.owner_auth
    }

    /// Operations executed so far.
    pub fn ops_run(&self) -> u64 {
        self.ops_run
    }

    /// The underlying client (for scenario-specific extra commands).
    pub fn client_mut(&mut self) -> &mut TpmClient<T> {
        &mut self.client
    }

    /// Execute one operation (a full TPM exchange, auth sessions and all).
    pub fn run(&mut self, op: Op) -> Result<(), ClientError> {
        self.ops_run += 1;
        // Rotate across ordinary PCRs 0..=7.
        let pcr = self.pcr_cursor % 8;
        self.pcr_cursor = self.pcr_cursor.wrapping_add(1);
        match op {
            Op::GetRandom => {
                self.client.get_random(16)?;
            }
            Op::PcrRead => {
                self.client.pcr_read(pcr)?;
            }
            Op::Extend => {
                let mut digest = [0u8; 20];
                self.rng.fill_bytes(&mut digest);
                self.client.extend(pcr, &digest)?;
            }
            Op::Seal => {
                let mut secret = [0u8; 16];
                self.rng.fill_bytes(&mut secret);
                // Keep the latest blob so Unseal always has fresh material.
                self.sealed = self.client.seal(
                    handle::SRK,
                    &self.srk_auth,
                    &self.data_auth,
                    None,
                    &secret,
                )?;
            }
            Op::Unseal => {
                self.client.unseal(handle::SRK, &self.srk_auth, &self.data_auth, &self.sealed)?;
            }
            Op::Quote => {
                let mut nonce = [0u8; 20];
                self.rng.fill_bytes(&mut nonce);
                self.client.quote(
                    self.sign_key,
                    &self.key_auth,
                    &nonce,
                    &PcrSelection::of(&[0, 1, 2, 3]),
                )?;
            }
            Op::Sign => {
                self.client.sign(self.sign_key, &self.key_auth, b"workload message")?;
            }
        }
        Ok(())
    }

    /// Execute one operation, returning its wall-clock latency in ns.
    pub fn run_timed(&mut self, op: Op) -> Result<u64, ClientError> {
        let t0 = std::time::Instant::now();
        self.run(op)?;
        Ok(t0.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::CommandMix;
    use tpm::{DirectTransport, Tpm};

    #[test]
    fn prepare_and_run_every_op() {
        let mut tpm = Tpm::new(b"driver-test");
        let mut session =
            GuestSession::prepare(DirectTransport { tpm: &mut tpm, locality: 0 }, b"s").unwrap();
        for op in Op::ALL {
            session.run(op).unwrap_or_else(|e| panic!("{op:?}: {e}"));
        }
        assert_eq!(session.ops_run(), Op::ALL.len() as u64);
    }

    #[test]
    fn mix_sequence_runs_clean() {
        let mut tpm = Tpm::new(b"driver-mix");
        let mut session =
            GuestSession::prepare(DirectTransport { tpm: &mut tpm, locality: 0 }, b"s").unwrap();
        let mix = CommandMix::uniform();
        let mut rng = Drbg::new(b"seq");
        for op in mix.sequence(30, &mut rng) {
            session.run(op).unwrap();
        }
        assert_eq!(session.ops_run(), 30);
    }

    #[test]
    fn seal_then_unseal_uses_fresh_blob() {
        let mut tpm = Tpm::new(b"driver-seal");
        let mut session =
            GuestSession::prepare(DirectTransport { tpm: &mut tpm, locality: 0 }, b"s").unwrap();
        session.run(Op::Seal).unwrap();
        session.run(Op::Unseal).unwrap();
        session.run(Op::Seal).unwrap();
        session.run(Op::Unseal).unwrap();
    }

    #[test]
    fn timed_run_reports_positive_latency() {
        let mut tpm = Tpm::new(b"driver-time");
        let mut session =
            GuestSession::prepare(DirectTransport { tpm: &mut tpm, locality: 0 }, b"s").unwrap();
        let ns = session.run_timed(Op::Extend).unwrap();
        assert!(ns > 0);
    }
}
