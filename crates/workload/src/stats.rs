//! Latency sample collection and summary statistics.

/// A set of latency samples in nanoseconds.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values_ns: Vec<u64>,
}

/// Summary statistics over a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (ns).
    pub mean_ns: f64,
    /// Minimum (ns).
    pub min_ns: u64,
    /// Median (ns).
    pub p50_ns: u64,
    /// 95th percentile (ns).
    pub p95_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
    /// Maximum (ns).
    pub max_ns: u64,
}

impl Samples {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn push(&mut self, ns: u64) {
        self.values_ns.push(ns);
    }

    /// Merge another set into this one.
    pub fn merge(&mut self, other: &Samples) {
        self.values_ns.extend_from_slice(&other.values_ns);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values_ns.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values_ns.is_empty()
    }

    /// Raw values (for export).
    pub fn values(&self) -> &[u64] {
        &self.values_ns
    }

    /// Compute the summary; `None` when empty.
    pub fn summary(&self) -> Option<Summary> {
        if self.values_ns.is_empty() {
            return None;
        }
        let mut sorted = self.values_ns.clone();
        sorted.sort_unstable();
        let pct = |p: f64| -> u64 {
            // Nearest-rank percentile.
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        let sum: u128 = sorted.iter().map(|&v| v as u128).sum();
        Some(Summary {
            count: sorted.len(),
            mean_ns: sum as f64 / sorted.len() as f64,
            min_ns: sorted[0],
            p50_ns: pct(50.0),
            p95_ns: pct(95.0),
            p99_ns: pct(99.0),
            max_ns: *sorted.last().unwrap(),
        })
    }
}

impl Summary {
    /// Mean in milliseconds (convenience for report tables).
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1e6
    }

    /// Relative overhead of `self` versus a `base` summary, in percent.
    pub fn overhead_pct(&self, base: &Summary) -> f64 {
        (self.mean_ns - base.mean_ns) / base.mean_ns * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_summary() {
        assert!(Samples::new().summary().is_none());
    }

    #[test]
    fn single_sample() {
        let mut s = Samples::new();
        s.push(100);
        let sum = s.summary().unwrap();
        assert_eq!(sum.count, 1);
        assert_eq!(sum.mean_ns, 100.0);
        assert_eq!(sum.min_ns, 100);
        assert_eq!(sum.p50_ns, 100);
        assert_eq!(sum.p99_ns, 100);
        assert_eq!(sum.max_ns, 100);
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let mut s = Samples::new();
        for v in 1..=100u64 {
            s.push(v * 10);
        }
        let sum = s.summary().unwrap();
        assert_eq!(sum.min_ns, 10);
        assert_eq!(sum.max_ns, 1000);
        assert_eq!(sum.p50_ns, 500);
        assert_eq!(sum.p95_ns, 950);
        assert_eq!(sum.p99_ns, 990);
        assert!((sum.mean_ns - 505.0).abs() < 1e-9);
    }

    #[test]
    fn order_independent() {
        let mut a = Samples::new();
        let mut b = Samples::new();
        for v in [5u64, 1, 9, 3, 7] {
            a.push(v);
        }
        for v in [9u64, 7, 5, 3, 1] {
            b.push(v);
        }
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn merge_combines() {
        let mut a = Samples::new();
        a.push(1);
        let mut b = Samples::new();
        b.push(3);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.summary().unwrap().mean_ns, 2.0);
    }

    #[test]
    fn overhead_pct() {
        let base = Summary {
            count: 1,
            mean_ns: 100.0,
            min_ns: 0,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
            max_ns: 0,
        };
        let other = Summary { mean_ns: 112.0, ..base };
        assert!((other.overhead_pct(&base) - 12.0).abs() < 1e-9);
    }
}
