//! Open-loop arrival processes.
//!
//! Closed-loop drivers (`runner`) measure capacity; open-loop arrivals
//! measure *latency under offered load*, which is what a consolidation
//! host actually experiences — guests issue TPM requests when their
//! applications need them, not back-to-back. Interarrival times are
//! exponential (Poisson process), the standard model for independent
//! request sources.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Poisson arrival process with a fixed rate.
pub struct PoissonArrivals {
    rng: StdRng,
    /// Mean interarrival gap in nanoseconds.
    mean_gap_ns: f64,
}

impl PoissonArrivals {
    /// `rate_per_sec` arrivals per second on average.
    pub fn new(rate_per_sec: f64, seed: u64) -> Self {
        assert!(rate_per_sec > 0.0);
        PoissonArrivals { rng: StdRng::seed_from_u64(seed), mean_gap_ns: 1e9 / rate_per_sec }
    }

    /// Next interarrival gap in nanoseconds (exponentially distributed).
    pub fn next_gap_ns(&mut self) -> u64 {
        // Inverse-CDF sampling; clamp u away from 0 to avoid inf.
        let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        (-u.ln() * self.mean_gap_ns) as u64
    }

    /// Generate `n` absolute arrival timestamps starting at 0.
    pub fn schedule(&mut self, n: usize) -> Vec<u64> {
        let mut t = 0u64;
        (0..n)
            .map(|_| {
                t += self.next_gap_ns();
                t
            })
            .collect()
    }
}

/// Offered-load run summary.
#[derive(Debug, Clone, Copy)]
pub struct OfferedLoadResult {
    /// Arrivals issued.
    pub issued: usize,
    /// Mean response time (service + queueing) in ns.
    pub mean_response_ns: f64,
    /// Fraction of requests that waited behind an earlier one.
    pub queued_fraction: f64,
}

/// Simulate an M/D/1-style queue: Poisson arrivals, deterministic
/// service time (the per-op virtual cost). This predicts the latency a
/// hardware-TPM-backed vTPM sees at a given offered load — the analytical
/// companion to the measured closed-loop runs.
pub fn offered_load_model(
    rate_per_sec: f64,
    service_ns: u64,
    n: usize,
    seed: u64,
) -> OfferedLoadResult {
    let mut arrivals = PoissonArrivals::new(rate_per_sec, seed);
    let schedule = arrivals.schedule(n);
    let mut server_free_at = 0u64;
    let mut total_response = 0u128;
    let mut queued = 0usize;
    for &arrive in &schedule {
        let start = arrive.max(server_free_at);
        if start > arrive {
            queued += 1;
        }
        let done = start + service_ns;
        server_free_at = done;
        total_response += (done - arrive) as u128;
    }
    OfferedLoadResult {
        issued: n,
        mean_response_ns: total_response as f64 / n as f64,
        queued_fraction: queued as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_average_to_rate() {
        let mut a = PoissonArrivals::new(1000.0, 42); // 1k/s => 1ms mean
        let n = 20_000;
        let total: u64 = (0..n).map(|_| a.next_gap_ns()).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1e6).abs() < 5e4, "mean gap {mean} ns");
    }

    #[test]
    fn schedule_is_monotonic() {
        let mut a = PoissonArrivals::new(500.0, 7);
        let s = a.schedule(100);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let s1 = PoissonArrivals::new(100.0, 9).schedule(50);
        let s2 = PoissonArrivals::new(100.0, 9).schedule(50);
        assert_eq!(s1, s2);
        let s3 = PoissonArrivals::new(100.0, 10).schedule(50);
        assert_ne!(s1, s3);
    }

    #[test]
    fn queueing_grows_with_utilization() {
        // Service = 1ms. At 10% utilization queueing is rare; at 90% it
        // dominates — textbook M/D/1 behaviour.
        let low = offered_load_model(100.0, 1_000_000, 5_000, 1);
        let high = offered_load_model(900.0, 1_000_000, 5_000, 1);
        assert!(low.queued_fraction < 0.3, "low {:?}", low);
        assert!(high.queued_fraction > 0.6, "high {:?}", high);
        assert!(high.mean_response_ns > 2.0 * low.mean_response_ns);
    }

    #[test]
    fn response_never_below_service_time() {
        let r = offered_load_model(500.0, 2_000_000, 1_000, 3);
        assert!(r.mean_response_ns >= 2_000_000.0);
        assert_eq!(r.issued, 1_000);
    }
}
