//! A reference TPM oracle for differential testing.
//!
//! The chaos harness replays one seeded command trace twice: once
//! through the full stack (guest ring → manager → instance TPM →
//! encrypted mirror) and once through this oracle — a deliberately
//! tiny, independent model of the TPM state the trace touches: the PCR
//! vector, the NV map, and the monotonic counters. Diffing final states
//! turns every chaos run into a correctness check: any fault the stack
//! mishandles (torn mirror, lost NV write, double-applied extend after
//! a duplicated ring response) shows up as a divergence.
//!
//! The oracle is cloneable, so crash/recovery tests can snapshot it
//! before a command and ask afterwards whether the recovered TPM equals
//! the *pre*- or *post*-command oracle — the only two legal outcomes.

use std::collections::BTreeMap;

use tpm::{Tpm, DIGEST_LEN, NUM_PCRS};
use tpm_crypto::sha1;

use crate::trace::TraceEvent;

/// Reference model of the trace-visible TPM state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpmOracle {
    /// TPM_Startup seen.
    pub started: bool,
    /// The PCR vector.
    pub pcrs: [[u8; DIGEST_LEN]; NUM_PCRS],
    /// NV map: index → (declared size, contents).
    pub nv: BTreeMap<u32, Vec<u8>>,
    /// Monotonic counters: handle → value.
    pub counters: BTreeMap<u32, u32>,
    nv_budget: usize,
    nv_used: usize,
    next_counter_handle: u32,
    counter_capacity: usize,
    active_counter: Option<u32>,
}

impl TpmOracle {
    /// Snapshot a real TPM as the oracle's starting state.
    ///
    /// Assumes no counter has been incremented in the TPM's current boot
    /// (the active-counter latch is not observable); capture at instance
    /// creation — as the harness does — satisfies that trivially.
    pub fn capture(tpm: &Tpm) -> Self {
        let nv: BTreeMap<u32, Vec<u8>> = tpm
            .nv()
            .indices()
            .into_iter()
            .map(|i| (i, tpm.nv().area(i).expect("listed index").data.clone()))
            .collect();
        let nv_used: usize = nv.values().map(Vec::len).sum();
        let counters: BTreeMap<u32, u32> = tpm
            .counters()
            .handles()
            .into_iter()
            .map(|h| (h, tpm.counters().read(h).expect("listed handle").value))
            .collect();
        let next_counter_handle = counters.keys().max().map_or(1, |h| h + 1);
        TpmOracle {
            started: tpm.is_started(),
            pcrs: *tpm.pcrs().snapshot(),
            nv,
            counters,
            nv_budget: tpm.nv().free_bytes() + nv_used,
            nv_used,
            next_counter_handle,
            counter_capacity: 4,
            active_counter: None,
        }
    }

    /// Model a TPM reboot that preserved permanent state (e.g. manager
    /// crash + recovery from the mirror): counter values, NV and PCR
    /// bytes all survive, but the one-active-counter-per-boot latch
    /// clears — any counter may become the active one again.
    pub fn note_reboot(&mut self) {
        self.active_counter = None;
    }

    /// Advance the model by one trace event, mirroring the TPM's exact
    /// acceptance rules (budget, capacity, one-active-counter-per-boot)
    /// so a rejected operation is a no-op on both sides.
    pub fn apply(&mut self, event: &TraceEvent) {
        match *event {
            TraceEvent::Startup => {
                self.started = true;
                self.pcrs = *tpm::PcrBank::new().snapshot();
                self.active_counter = None;
            }
            TraceEvent::Extend { pcr, digest } => {
                let i = pcr as usize;
                if self.started && i < NUM_PCRS {
                    let mut buf = [0u8; 2 * DIGEST_LEN];
                    buf[..DIGEST_LEN].copy_from_slice(&self.pcrs[i]);
                    buf[DIGEST_LEN..].copy_from_slice(&digest);
                    self.pcrs[i] = sha1(&buf);
                }
            }
            TraceEvent::PcrRead { .. } | TraceEvent::GetRandom { .. } => {}
            TraceEvent::ProvisionNv { index, fill, len } => {
                let len = len as usize;
                if !self.nv.contains_key(&index) && self.nv_used + len <= self.nv_budget {
                    self.nv.insert(index, vec![fill; len]);
                    self.nv_used += len;
                }
            }
            TraceEvent::ReleaseNv { index } => {
                if let Some(data) = self.nv.remove(&index) {
                    self.nv_used -= data.len();
                }
            }
            TraceEvent::CreateCounter { .. } => {
                if self.counters.len() < self.counter_capacity {
                    let handle = self.next_counter_handle;
                    self.next_counter_handle += 1;
                    self.counters.insert(handle, 1);
                }
            }
            TraceEvent::IncrementCounter { nth } => {
                let handles: Vec<u32> = self.counters.keys().copied().collect();
                if handles.is_empty() {
                    return;
                }
                let target = handles[nth as usize % handles.len()];
                match self.active_counter {
                    Some(active) if active != target => {} // NotActive
                    _ => {
                        self.active_counter = Some(target);
                        *self.counters.get_mut(&target).expect("listed") += 1;
                    }
                }
            }
        }
    }

    /// Compare against a real TPM; returns one line per divergence
    /// (empty means the states agree on everything the oracle models).
    pub fn diff(&self, tpm: &Tpm) -> Vec<String> {
        let mut out = Vec::new();
        if self.started != tpm.is_started() {
            out.push(format!("started: oracle {} vs tpm {}", self.started, tpm.is_started()));
        }
        for (i, expect) in self.pcrs.iter().enumerate() {
            let got = tpm.pcrs().read(i).expect("valid index");
            if &got != expect {
                out.push(format!("pcr[{i}]: oracle {} vs tpm {}", hex(expect), hex(&got)));
            }
        }
        let tpm_indices = tpm.nv().indices();
        for &index in self.nv.keys() {
            match tpm.nv().area(index) {
                None => out.push(format!("nv[{index:#x}]: oracle defined, tpm missing")),
                Some(area) => {
                    if area.data != self.nv[&index] {
                        out.push(format!("nv[{index:#x}]: contents differ"));
                    }
                }
            }
        }
        for index in tpm_indices {
            if !self.nv.contains_key(&index) {
                out.push(format!("nv[{index:#x}]: tpm defined, oracle missing"));
            }
        }
        let tpm_handles = tpm.counters().handles();
        for (&handle, &value) in &self.counters {
            match tpm.counters().read(handle) {
                Err(_) => out.push(format!("counter[{handle}]: oracle defined, tpm missing")),
                Ok(c) if c.value != value => {
                    out.push(format!("counter[{handle}]: oracle {value} vs tpm {}", c.value));
                }
                Ok(_) => {}
            }
        }
        for handle in tpm_handles {
            if !self.counters.contains_key(&handle) {
                out.push(format!("counter[{handle}]: tpm defined, oracle missing"));
            }
        }
        out
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpm::TpmConfig;

    fn fresh() -> (Tpm, TpmOracle) {
        let tpm = Tpm::manufacture(b"oracle-test", TpmConfig::default());
        let oracle = TpmOracle::capture(&tpm);
        (tpm, oracle)
    }

    #[test]
    fn capture_of_fresh_tpm_diffs_clean() {
        let (tpm, oracle) = fresh();
        assert_eq!(oracle.diff(&tpm), Vec::<String>::new());
    }

    #[test]
    fn oracle_tracks_a_mixed_trace() {
        let (mut tpm, mut oracle) = fresh();
        let events = crate::trace::generate_trace(b"oracle-mixed", 200);
        for ev in &events {
            crate::trace::apply_to_tpm(&mut tpm, ev);
            oracle.apply(ev);
        }
        assert_eq!(oracle.diff(&tpm), Vec::<String>::new());
    }

    #[test]
    fn divergence_is_reported() {
        let (mut tpm, oracle) = fresh();
        let ev = TraceEvent::Startup;
        crate::trace::apply_to_tpm(&mut tpm, &ev);
        crate::trace::apply_to_tpm(
            &mut tpm,
            &TraceEvent::Extend { pcr: 3, digest: [0xEE; DIGEST_LEN] },
        );
        // The oracle never saw the events: both flags and PCR 3 differ.
        let diff = oracle.diff(&tpm);
        assert!(diff.iter().any(|d| d.starts_with("started")));
        assert!(diff.iter().any(|d| d.starts_with("pcr[3]")));
    }

    #[test]
    fn counter_semantics_match_one_active_per_boot() {
        let (mut tpm, mut oracle) = fresh();
        let seq = [
            TraceEvent::Startup,
            TraceEvent::CreateCounter { label: *b"ctr1" },
            TraceEvent::CreateCounter { label: *b"ctr2" },
            TraceEvent::IncrementCounter { nth: 0 },
            // Different counter this boot: must be rejected by both.
            TraceEvent::IncrementCounter { nth: 1 },
            TraceEvent::Startup,
            // New boot: the other counter may become active.
            TraceEvent::IncrementCounter { nth: 1 },
        ];
        for ev in &seq {
            crate::trace::apply_to_tpm(&mut tpm, ev);
            oracle.apply(ev);
        }
        assert_eq!(oracle.diff(&tpm), Vec::<String>::new());
        assert_eq!(oracle.counters.values().copied().collect::<Vec<_>>(), vec![2, 2]);
    }
}
