//! Seeded, replayable command traces.
//!
//! A trace is a flat event list drawn from a DRBG: the same seed always
//! yields the same events, which is what makes chaos runs replayable —
//! the harness replays one trace through the full stack (with faults)
//! and through the [`crate::oracle::TpmOracle`] (without), then diffs.
//!
//! Events come in two flavours, mirroring how real guests touch a vTPM:
//!
//! * **wire events** ([`TraceEvent::wire_command`] returns `Some`) —
//!   TPM 1.2 commands a guest sends over the split-driver ring:
//!   Startup, Extend, PcrRead, GetRandom. Auth-session commands are
//!   deliberately excluded: session nonces depend on the instance RNG,
//!   which the oracle does not model.
//! * **toolstack events** — NV provisioning/release and monotonic
//!   counters, driven through the manager's `with_instance` path. These
//!   grow and shrink the serialized state, which is exactly what makes
//!   the mirror's page management interesting under faults.

use tpm::{ordinal, Tpm, DIGEST_LEN};
use tpm_crypto::drbg::Drbg;

/// NV indices the generator rotates through — a small set, so
/// provision/release pairs actually collide and exercise redefinition.
const NV_INDICES: [u32; 6] = [0x0100, 0x0101, 0x0102, 0x0103, 0x0104, 0x0105];

/// One event of a replayable trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// TPM_Startup(ST_CLEAR): resets PCRs, re-arms the counter latch.
    Startup,
    /// TPM_Extend of `pcr` with `digest`.
    Extend { pcr: u32, digest: [u8; DIGEST_LEN] },
    /// TPM_PCRRead of `pcr` (state no-op; exercises the read path).
    PcrRead { pcr: u32 },
    /// TPM_GetRandom (state no-op; the RNG is not permanent state).
    GetRandom { n: u16 },
    /// Toolstack: provision an NV area filled with `fill`.
    ProvisionNv { index: u32, fill: u8, len: u16 },
    /// Toolstack: release an NV area.
    ReleaseNv { index: u32 },
    /// Toolstack: create a monotonic counter.
    CreateCounter { label: [u8; 4] },
    /// Toolstack: increment the `nth` live counter (mod the live count).
    IncrementCounter { nth: u8 },
}

impl TraceEvent {
    /// Encode as a raw TPM 1.2 wire command, or `None` for toolstack
    /// events that bypass the ring.
    pub fn wire_command(&self) -> Option<Vec<u8>> {
        fn cmd(ordinal: u32, params: &[u8]) -> Vec<u8> {
            let mut c = vec![0x00, 0xC1];
            c.extend_from_slice(&(10 + params.len() as u32).to_be_bytes());
            c.extend_from_slice(&ordinal.to_be_bytes());
            c.extend_from_slice(params);
            c
        }
        match *self {
            TraceEvent::Startup => Some(cmd(ordinal::STARTUP, &1u16.to_be_bytes())),
            TraceEvent::Extend { pcr, digest } => {
                let mut params = pcr.to_be_bytes().to_vec();
                params.extend_from_slice(&digest);
                Some(cmd(ordinal::EXTEND, &params))
            }
            TraceEvent::PcrRead { pcr } => Some(cmd(ordinal::PCR_READ, &pcr.to_be_bytes())),
            TraceEvent::GetRandom { n } => {
                Some(cmd(ordinal::GET_RANDOM, &(n as u32).to_be_bytes()))
            }
            _ => None,
        }
    }

    /// Whether this event goes through the toolstack path.
    pub fn is_toolstack(&self) -> bool {
        self.wire_command().is_none()
    }
}

/// Apply one event directly to a TPM: wire events through `execute`,
/// toolstack events through the provisioning API. Rejections (budget,
/// capacity, counter latch) are deliberately swallowed — the oracle
/// models the same acceptance rules, so both sides no-op together.
pub fn apply_to_tpm(tpm: &mut Tpm, event: &TraceEvent) {
    if let Some(wire) = event.wire_command() {
        let _ = tpm.execute(0, &wire);
        return;
    }
    match *event {
        TraceEvent::ProvisionNv { index, fill, len } => {
            let _ = tpm.provision_nv(index, &vec![fill; len as usize]);
        }
        TraceEvent::ReleaseNv { index } => {
            let _ = tpm.release_nv(index);
        }
        TraceEvent::CreateCounter { label } => {
            let _ = tpm.create_counter([0x77; DIGEST_LEN], label);
        }
        TraceEvent::IncrementCounter { nth } => {
            let handles = tpm.counters().handles();
            if !handles.is_empty() {
                let target = handles[nth as usize % handles.len()];
                let _ = tpm.increment_counter(target);
            }
        }
        _ => unreachable!("wire events handled above"),
    }
}

/// Generate a deterministic `n`-event trace from `seed`. The first
/// event is always Startup (a TPM must be started before anything
/// else); later Startups model guest reboots.
pub fn generate_trace(seed: &[u8], n: usize) -> Vec<TraceEvent> {
    let mut rng = Drbg::new(&[seed, b"/trace"].concat());
    let mut events = Vec::with_capacity(n);
    if n > 0 {
        events.push(TraceEvent::Startup);
    }
    while events.len() < n {
        let roll = rng.below(100);
        let ev = match roll {
            0..=29 => {
                let mut digest = [0u8; DIGEST_LEN];
                rng.fill_bytes(&mut digest);
                TraceEvent::Extend { pcr: rng.below(16) as u32, digest }
            }
            30..=41 => TraceEvent::PcrRead { pcr: rng.below(24) as u32 },
            42..=51 => TraceEvent::GetRandom { n: 1 + rng.below(32) as u16 },
            // NV lengths up to ~1.5 pages so a handful of live areas
            // pushes the serialized state across several mirror pages
            // and shrinks cross page boundaries.
            52..=69 => TraceEvent::ProvisionNv {
                index: NV_INDICES[rng.below(NV_INDICES.len() as u64) as usize],
                fill: rng.next_u32() as u8,
                len: 1 + rng.below(6000) as u16,
            },
            70..=81 => TraceEvent::ReleaseNv {
                index: NV_INDICES[rng.below(NV_INDICES.len() as u64) as usize],
            },
            82..=87 => {
                let mut label = [0u8; 4];
                rng.fill_bytes(&mut label);
                TraceEvent::CreateCounter { label }
            }
            88..=95 => TraceEvent::IncrementCounter { nth: rng.next_u32() as u8 },
            _ => TraceEvent::Startup,
        };
        events.push(ev);
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        assert_eq!(generate_trace(b"seed-a", 300), generate_trace(b"seed-a", 300));
        assert_ne!(generate_trace(b"seed-a", 300), generate_trace(b"seed-b", 300));
    }

    #[test]
    fn trace_starts_with_startup() {
        for seed in [b"x1".as_slice(), b"x2", b"x3"] {
            assert_eq!(generate_trace(seed, 50)[0], TraceEvent::Startup);
        }
    }

    #[test]
    fn wire_commands_are_well_formed() {
        let ev = TraceEvent::Extend { pcr: 5, digest: [0xAB; DIGEST_LEN] };
        let wire = ev.wire_command().unwrap();
        assert_eq!(&wire[..2], &[0x00, 0xC1]);
        assert_eq!(u32::from_be_bytes(wire[2..6].try_into().unwrap()) as usize, wire.len());
        assert_eq!(u32::from_be_bytes(wire[6..10].try_into().unwrap()), ordinal::EXTEND);
        assert!(TraceEvent::ProvisionNv { index: 1, fill: 0, len: 1 }.is_toolstack());
    }

    #[test]
    fn trace_mutates_a_real_tpm_deterministically() {
        let run = || {
            let mut tpm = Tpm::manufacture(b"trace-det", tpm::TpmConfig::default());
            for ev in generate_trace(b"trace-det", 250) {
                apply_to_tpm(&mut tpm, &ev);
            }
            tpm.serialize_state()
        };
        assert_eq!(run(), run());
    }
}
