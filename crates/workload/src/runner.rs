//! Multi-VM concurrent workload runner.
//!
//! Takes ownership of launched guests, gives each its own thread and
//! [`crate::driver::GuestSession`], runs a command mix closed-loop, and
//! aggregates per-operation latency samples plus wall/virtual time.

use std::collections::HashMap;
use std::sync::Arc;

use vtpm::Guest;
use xen_sim::Hypervisor;

use tpm_crypto::drbg::Drbg;

use crate::driver::GuestSession;
use crate::mix::{CommandMix, Op};
use crate::stats::Samples;

/// Result of one multi-guest run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Latency samples per operation type (wall-clock ns).
    pub per_op: HashMap<Op, Samples>,
    /// All samples combined.
    pub all: Samples,
    /// Wall-clock duration of the measured region.
    pub wall_ns: u64,
    /// Virtual time consumed by the measured region.
    pub virtual_ns: u64,
    /// Operations completed.
    pub total_ops: u64,
    /// Operations that returned an error.
    pub errors: u64,
}

impl RunResult {
    /// Aggregate throughput in operations per wall-clock second.
    pub fn throughput_wall(&self) -> f64 {
        self.total_ops as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Aggregate throughput in operations per *virtual* second — the
    /// number a hardware-TPM-backed deployment would see.
    pub fn throughput_virtual(&self) -> f64 {
        self.total_ops as f64 / (self.virtual_ns as f64 / 1e9)
    }
}

/// Run `ops_per_guest` operations of `mix` on every guest concurrently.
///
/// Setup (ownership, key creation) happens before the measured region so
/// the samples reflect steady-state operation latency.
pub fn run_concurrent(
    hv: &Arc<Hypervisor>,
    guests: Vec<Guest>,
    mix: &CommandMix,
    ops_per_guest: usize,
    seed: &[u8],
) -> RunResult {
    // Phase 1: prepare sessions (unmeasured).
    let sessions: Vec<_> = guests
        .into_iter()
        .enumerate()
        .map(|(i, g)| {
            let s = [seed, b"/guest/", &(i as u32).to_be_bytes()].concat();
            let session = GuestSession::prepare(g.front, &s).expect("guest prepares");
            let plan = mix.sequence(ops_per_guest, &mut Drbg::new(&[&s[..], b"/plan"].concat()));
            (session, plan)
        })
        .collect();

    // Phase 2: measured concurrent execution.
    let v0 = hv.clock.now_ns();
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = sessions
        .into_iter()
        .map(|(mut session, plan)| {
            std::thread::spawn(move || {
                let mut per_op: HashMap<Op, Samples> = HashMap::new();
                let mut errors = 0u64;
                for op in plan {
                    match session.run_timed(op) {
                        Ok(ns) => per_op.entry(op).or_default().push(ns),
                        Err(_) => errors += 1,
                    }
                }
                (per_op, errors)
            })
        })
        .collect();

    let mut per_op: HashMap<Op, Samples> = HashMap::new();
    let mut errors = 0u64;
    for h in handles {
        let (thread_samples, thread_errors) = h.join().expect("guest thread");
        for (op, s) in thread_samples {
            per_op.entry(op).or_default().merge(&s);
        }
        errors += thread_errors;
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let virtual_ns = hv.clock.now_ns() - v0;

    let mut all = Samples::new();
    for s in per_op.values() {
        all.merge(s);
    }
    let total_ops = all.len() as u64;
    RunResult { per_op, all, wall_ns, virtual_ns, total_ops, errors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtpm::Platform;
    use vtpm_ac::SecurePlatform;

    #[test]
    fn concurrent_run_on_baseline() {
        let p = Platform::baseline(b"runner-base").unwrap();
        let guests: Vec<Guest> =
            (0..3).map(|i| p.launch_guest(&format!("g{i}")).unwrap()).collect();
        let result =
            run_concurrent(&p.hv, guests, &CommandMix::light(), 10, b"runner-test");
        assert_eq!(result.total_ops, 30);
        assert_eq!(result.errors, 0);
        assert!(result.throughput_wall() > 0.0);
        assert!(result.virtual_ns > 0);
        assert!(result.throughput_virtual() > 0.0);
        // All three light ops appear.
        assert!(result.per_op.len() >= 2);
    }

    #[test]
    fn concurrent_run_on_improved() {
        let sp = SecurePlatform::full(b"runner-imp").unwrap();
        let guests: Vec<Guest> =
            (0..2).map(|i| sp.launch_guest(&format!("g{i}")).unwrap()).collect();
        let result =
            run_concurrent(&sp.platform.hv, guests, &CommandMix::light(), 8, b"runner-test");
        assert_eq!(result.total_ops, 16);
        assert_eq!(result.errors, 0, "credentialed guests must not be denied");
        assert_eq!(sp.hook.audit.denials(), 0);
    }

    #[test]
    fn samples_cover_requested_ops() {
        let p = Platform::baseline(b"runner-cov").unwrap();
        let guests = vec![p.launch_guest("solo").unwrap()];
        let result =
            run_concurrent(&p.hv, guests, &CommandMix::uniform(), 14, b"runner-test");
        let sampled: usize = result.per_op.values().map(|s| s.len()).sum();
        assert_eq!(sampled as u64, result.total_ops);
        assert!(result.all.summary().unwrap().min_ns > 0);
    }
}
