//! # workload
//!
//! Workload generation for the reproduction's performance experiments:
//!
//! * [`mix`] — weighted TPM command mixes modelling 2010-era vTPM guest
//!   behaviour (attestation services, sealed storage, integrity
//!   measurement);
//! * [`driver`] — a per-guest closed-loop driver that performs the full
//!   multi-command exchanges (auth sessions included) for each operation;
//! * [`runner`] — a multi-VM concurrent runner collecting per-operation
//!   wall-clock samples and virtual-time totals;
//! * [`stats`] — latency sample sets with mean/percentile summaries.

pub mod arrival;
pub mod driver;
pub mod mix;
pub mod oracle;
pub mod runner;
pub mod stats;
pub mod trace;

pub use arrival::{offered_load_model, OfferedLoadResult, PoissonArrivals};
pub use driver::GuestSession;
pub use mix::{CommandMix, Op};
pub use oracle::TpmOracle;
pub use runner::{run_concurrent, RunResult};
pub use stats::{Samples, Summary};
pub use trace::{generate_trace, TraceEvent};
