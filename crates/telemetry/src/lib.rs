//! # vtpm-telemetry
//!
//! Lock-free tracing, metrics, and audit-correlated observability for
//! the vTPM stack. Deliberately dependency-free (std only) so it can
//! sit below every other crate in the workspace.
//!
//! The crate provides four pieces, mirroring the request path:
//!
//! * **Spans** — a [`Span`] is minted at ring ingress with a fresh
//!   [`RequestId`] and carried through
//!   `transport → hook → Tpm::execute → mirror commit`, stamping each
//!   stage boundary with a caller-supplied monotonic timestamp. The
//!   clock is *injected* (plain `u64` nanoseconds), so instrumented
//!   code can feed the xen-sim virtual clock and stay byte-
//!   deterministic under the chaos harness.
//! * **Event pipeline** — finished spans are pushed into a striped,
//!   bounded, allocation-free MPMC [`SpanRing`] (16 stripes, like
//!   `ReplayGuard`), with an *exact* [`Telemetry::dropped_events`]
//!   counter on overflow.
//! * **Metrics registry** — atomic counters plus log-linear
//!   [`Histogram`]s (p50/p90/p99/p99.9) for per-stage latency, mirror
//!   bytes per command, and access-control deny reasons.
//! * **Exporters** — a coherent JSON snapshot ([`MetricsSnapshot`],
//!   single consistent read) and a Chrome trace-event dump
//!   ([`chrome_trace`]) loadable in `chrome://tracing` / Perfetto.
//!
//! The hot path costs a handful of relaxed atomic ops and never
//! allocates; everything heavier (drain, snapshot, export) happens on
//! the observer's thread.

mod attest;
mod export;
mod fleet;
mod histogram;
mod migration;
mod ring;
mod rollup;

pub use attest::{AttestSnapshot, AttestTelemetry, QuoteSpanRecord, QUOTE_STAGE_LABELS};
pub use export::{chrome_trace, cluster_chrome_trace, hist_json, prom_summary};
pub use fleet::{FleetSnapshot, FleetTelemetry, FLEET_STAGE_LABELS};
pub use histogram::{Histogram, HistogramSnapshot};
pub use migration::{
    migration_trace_id, MigrationOutcome, MigrationSnapshot, MigrationSpanRecord,
    MigrationTelemetry, MIGRATION_STAGE_LABELS,
};
pub use ring::{SpanRing, DEFAULT_SPAN_CAPACITY, SPAN_SHARDS};
pub use rollup::{RollupSeries, DEFAULT_ROLLUP_TIERS};

use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one request end-to-end: minted at ring ingress,
/// propagated through the hook into the audit log, so hash-chained
/// audit entries are joinable against span records. Ids start at 1;
/// 0 means "no request" (e.g. administrative audit entries).
pub type RequestId = u64;

/// Cluster-wide causal trace id. For host-local requests the trace *is*
/// the request ([`RequestId`] doubles as the trace id); for live
/// migrations a dedicated id is minted by [`migration_trace_id`] at the
/// source and carried inside every wire frame of the attempt, so the
/// spans and audit records it touches on source, destination, and
/// fabric stitch into one causal trace. Migration trace ids live in a
/// disjoint high band (bit 63 set) and can never collide with the
/// small sequential request ids.
pub type TraceId = u64;

/// Terminal state of a request, mirroring the transport's
/// `ResponseStatus`. `Denied` carries the deny-reason code assigned by
/// the access-control layer (see [`DENY_LABELS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Executed by the TPM and mirrored.
    Ok,
    /// Rejected by the access-control hook; payload is the
    /// `DenyReason` code.
    Denied(u8),
    /// Authorized, but the target instance does not exist (or was
    /// destroyed mid-flight).
    NoInstance,
    /// The envelope failed to decode.
    Malformed,
}

impl Outcome {
    /// Stable lowercase label for exports.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Denied(_) => "denied",
            Outcome::NoInstance => "no-instance",
            Outcome::Malformed => "malformed",
        }
    }
}

/// Deny-reason labels indexed by the code the access-control layer
/// attaches to [`Outcome::Denied`]. Codes 0–6 match
/// `vtpm::hook::DenyReason::code()`; code 7 ([`DENY_REJECTED_STALE`])
/// is reserved for migration-protocol stale/replay refusals recorded
/// via [`Telemetry::note_protocol_deny`]; code 8 ([`DENY_ADMISSION`])
/// for refusals by per-domain admission control at ring ingress;
/// codes 9 ([`DENY_STALE_QUOTE`]) and 10 ([`DENY_QUOTE_REPLAY`]) for
/// the attestation verifier plane's freshness-window and replay-ledger
/// refusals (also `DenyReason::StaleQuote` / `DenyReason::QuoteReplay`);
/// unknown codes map to the final `"other"` slot. Kept here as a table
/// (rather than importing the enum) because `vtpm` depends on this
/// crate, not the reverse.
pub const DENY_LABELS: [&str; 12] = [
    "no-credential",
    "bad-tag",
    "replay",
    "binding-mismatch",
    "ordinal-denied",
    "source-mismatch",
    "locality-denied",
    "rejected-stale",
    "admission",
    "stale-quote",
    "quote-replay",
    "other",
];

/// Deny-reason code for a migration-protocol stale/replayed-epoch
/// refusal (`RejectedStale`). Sits just above the access-control
/// `DenyReason` band (0–6) in [`DENY_LABELS`].
pub const DENY_REJECTED_STALE: u8 = 7;

/// Deny-reason code for a request refused at ring ingress by the
/// manager's per-domain admission control (throttled source domain).
pub const DENY_ADMISSION: u8 = 8;

/// Deny-reason code for a deep quote refused by the verifier plane's
/// freshness-window policy (issued in a nonce-window older than the
/// configured lag).
pub const DENY_STALE_QUOTE: u8 = 9;

/// Deny-reason code for a deep quote re-presented by the same verifier
/// after already being consumed (verifier-plane replay ledger hit).
pub const DENY_QUOTE_REPLAY: u8 = 10;

/// Fixed-size record of one request's journey. All timestamps are
/// caller-supplied monotonic nanoseconds (virtual or wall clock); a
/// stage that never ran keeps the previous stage's stamp so its
/// duration reads as zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// End-to-end request id (also stored in the audit log).
    pub request_id: RequestId,
    /// Source guest domain.
    pub domain: u32,
    /// TPM command ordinal (0 if the envelope never decoded).
    pub ordinal: u32,
    /// Ring ingress / start of handling.
    pub ingress_ns: u64,
    /// Transport decode + signature verification done.
    pub decode_ns: u64,
    /// Access-control decision done.
    pub ac_ns: u64,
    /// `Tpm::execute` returned.
    pub exec_ns: u64,
    /// Mirror commit done.
    pub mirror_ns: u64,
    /// Response encoded; span closed.
    pub end_ns: u64,
    /// Bytes the mirror wrote for this command (data + meta pages).
    pub mirror_bytes: u64,
    /// Terminal state.
    pub outcome: Outcome,
}

impl Default for SpanRecord {
    fn default() -> Self {
        SpanRecord {
            request_id: 0,
            domain: 0,
            ordinal: 0,
            ingress_ns: 0,
            decode_ns: 0,
            ac_ns: 0,
            exec_ns: 0,
            mirror_ns: 0,
            end_ns: 0,
            mirror_bytes: 0,
            outcome: Outcome::Malformed,
        }
    }
}

impl SpanRecord {
    /// Duration of the transport (decode/verify) stage.
    pub fn ingress_stage_ns(&self) -> u64 {
        self.decode_ns.saturating_sub(self.ingress_ns)
    }
    /// Duration of the access-control hook stage.
    pub fn ac_stage_ns(&self) -> u64 {
        self.ac_ns.saturating_sub(self.decode_ns)
    }
    /// Duration of the TPM execute stage.
    pub fn exec_stage_ns(&self) -> u64 {
        self.exec_ns.saturating_sub(self.ac_ns)
    }
    /// Duration of the mirror-commit stage.
    pub fn mirror_stage_ns(&self) -> u64 {
        self.mirror_ns.saturating_sub(self.exec_ns)
    }
    /// End-to-end duration.
    pub fn total_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.ingress_ns)
    }
}

/// A live span: a [`SpanRecord`] under construction, handed out by
/// [`Telemetry::begin`] and consumed by [`Telemetry::finish`]. Plain
/// data on the caller's stack — no allocation, no registry borrow, so
/// holding one across `await`-free hot code costs nothing.
#[derive(Debug)]
pub struct Span {
    record: SpanRecord,
}

impl Span {
    /// The request id minted for this span.
    pub fn request_id(&self) -> RequestId {
        self.record.request_id
    }
    /// Attach the source domain once known.
    pub fn set_domain(&mut self, domain: u32) {
        self.record.domain = domain;
    }
    /// Attach the command ordinal once decoded.
    pub fn set_ordinal(&mut self, ordinal: u32) {
        self.record.ordinal = ordinal;
    }
    /// Bytes the mirror wrote for this command.
    pub fn set_mirror_bytes(&mut self, bytes: u64) {
        self.record.mirror_bytes = bytes;
    }
    /// Stamp the end of transport decode/verify.
    pub fn stamp_decode(&mut self, now_ns: u64) {
        self.record.decode_ns = now_ns;
    }
    /// Stamp the end of the access-control decision.
    pub fn stamp_ac(&mut self, now_ns: u64) {
        self.record.ac_ns = now_ns;
    }
    /// Stamp the end of TPM execution.
    pub fn stamp_exec(&mut self, now_ns: u64) {
        self.record.exec_ns = now_ns;
    }
    /// Stamp the end of the mirror commit.
    pub fn stamp_mirror(&mut self, now_ns: u64) {
        self.record.mirror_ns = now_ns;
    }
    /// Set the terminal outcome.
    pub fn set_outcome(&mut self, outcome: Outcome) {
        self.record.outcome = outcome;
    }
    /// Read access for instrumented code that wants to inspect stamps.
    pub fn record(&self) -> &SpanRecord {
        &self.record
    }
}

/// Monotonically increasing counters the registry maintains. Separate
/// struct so snapshotting can iterate them uniformly.
struct Counters {
    begun: AtomicU64,
    finished: AtomicU64,
    allowed: AtomicU64,
    denied: AtomicU64,
    no_instance: AtomicU64,
    malformed: AtomicU64,
    ring_exchanges: AtomicU64,
    ring_rx_bytes: AtomicU64,
    ring_tx_bytes: AtomicU64,
    deny_reasons: [AtomicU64; DENY_LABELS.len()],
}

impl Counters {
    fn new() -> Self {
        Counters {
            begun: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            allowed: AtomicU64::new(0),
            denied: AtomicU64::new(0),
            no_instance: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
            ring_exchanges: AtomicU64::new(0),
            ring_rx_bytes: AtomicU64::new(0),
            ring_tx_bytes: AtomicU64::new(0),
            deny_reasons: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The telemetry registry: request-id minting, stage histograms,
/// decision counters, and the buffered span ring. One per
/// `VtpmManager`; cheap to share behind an `Arc`.
pub struct Telemetry {
    next_id: AtomicU64,
    counters: Counters,
    stage_ingress: Histogram,
    stage_ac: Histogram,
    stage_exec: Histogram,
    stage_mirror: Histogram,
    total: Histogram,
    mirror_bytes: Histogram,
    spans: SpanRing,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Registry with the default span-ring capacity
    /// ([`DEFAULT_SPAN_CAPACITY`] slots × [`SPAN_SHARDS`] stripes).
    pub fn new() -> Self {
        Self::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// Registry with `per_stripe` span slots per stripe (rounded up to
    /// a power of two). Small capacities are how tests provoke exact,
    /// countable overflow.
    pub fn with_span_capacity(per_stripe: usize) -> Self {
        Telemetry {
            next_id: AtomicU64::new(1),
            counters: Counters::new(),
            stage_ingress: Histogram::new(),
            stage_ac: Histogram::new(),
            stage_exec: Histogram::new(),
            stage_mirror: Histogram::new(),
            total: Histogram::new(),
            mirror_bytes: Histogram::new(),
            spans: SpanRing::with_capacity(per_stripe),
        }
    }

    /// Mint a request id and open a span at ring ingress. Two relaxed
    /// atomic increments; no allocation.
    #[inline]
    pub fn begin(&self, now_ns: u64) -> Span {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.counters.begun.fetch_add(1, Ordering::Relaxed);
        let mut record = SpanRecord::default();
        record.request_id = id;
        record.ingress_ns = now_ns;
        // Unstamped stages read as zero-duration, not as [0, now].
        record.decode_ns = now_ns;
        record.ac_ns = now_ns;
        record.exec_ns = now_ns;
        record.mirror_ns = now_ns;
        Span { record }
    }

    /// Close a span: stamp the end, fold the record into histograms and
    /// decision counters (derived from the outcome, so conservation
    /// invariants hold exactly), and buffer it in the span ring.
    pub fn finish(&self, mut span: Span, end_ns: u64) {
        span.record.end_ns = end_ns;
        let r = &span.record;
        match r.outcome {
            Outcome::Ok => {
                self.counters.allowed.fetch_add(1, Ordering::Relaxed);
                self.stage_ingress.record(r.ingress_stage_ns());
                self.stage_ac.record(r.ac_stage_ns());
                self.stage_exec.record(r.exec_stage_ns());
                self.stage_mirror.record(r.mirror_stage_ns());
                self.mirror_bytes.record(r.mirror_bytes);
            }
            Outcome::NoInstance => {
                // The hook allowed it; the stack just had nowhere to
                // send it. Counts as allowed for conservation.
                self.counters.allowed.fetch_add(1, Ordering::Relaxed);
                self.counters.no_instance.fetch_add(1, Ordering::Relaxed);
                self.stage_ingress.record(r.ingress_stage_ns());
                self.stage_ac.record(r.ac_stage_ns());
            }
            Outcome::Denied(code) => {
                self.counters.denied.fetch_add(1, Ordering::Relaxed);
                let idx = (code as usize).min(DENY_LABELS.len() - 1);
                self.counters.deny_reasons[idx].fetch_add(1, Ordering::Relaxed);
                self.stage_ingress.record(r.ingress_stage_ns());
                self.stage_ac.record(r.ac_stage_ns());
            }
            Outcome::Malformed => {
                self.counters.malformed.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.total.record(r.total_ns());
        self.spans.push(span.record);
        // `finished` is bumped last so a snapshot observing
        // begun == finished has also observed every histogram update.
        self.counters.finished.fetch_add(1, Ordering::Release);
    }

    /// Record a denial that happened *outside* the per-request span
    /// path — e.g. a migration-protocol stale/replayed-epoch refusal
    /// ([`DENY_REJECTED_STALE`]). Only the per-reason counter moves:
    /// no span finished, so the request-conservation invariant
    /// (`allowed + denied + malformed == finished`) is untouched and
    /// `denied` keeps counting guest requests exactly.
    #[inline]
    pub fn note_protocol_deny(&self, code: u8) {
        let idx = (code as usize).min(DENY_LABELS.len() - 1);
        self.counters.deny_reasons[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one ring exchange (request/response pair) at the device
    /// backend, with payload byte counts in each direction.
    #[inline]
    pub fn note_ring_exchange(&self, rx_bytes: u64, tx_bytes: u64) {
        self.counters.ring_exchanges.fetch_add(1, Ordering::Relaxed);
        self.counters.ring_rx_bytes.fetch_add(rx_bytes, Ordering::Relaxed);
        self.counters.ring_tx_bytes.fetch_add(tx_bytes, Ordering::Relaxed);
    }

    /// Exact number of span records dropped on ring overflow.
    pub fn dropped_events(&self) -> u64 {
        self.spans.dropped()
    }

    /// Requests begun but not yet finished (racy between the two loads;
    /// exact at quiescence).
    pub fn in_flight(&self) -> u64 {
        let begun = self.counters.begun.load(Ordering::Acquire);
        let finished = self.counters.finished.load(Ordering::Acquire);
        begun.saturating_sub(finished)
    }

    /// Drain all buffered spans (oldest-first), e.g. for a Chrome trace
    /// dump. Spans drained once are gone; the ring keeps only what has
    /// not been drained and has not overflowed.
    pub fn drain_spans(&self) -> Vec<SpanRecord> {
        self.spans.drain()
    }

    /// Take a coherent snapshot of every counter and histogram.
    ///
    /// Coherence protocol: read `(begun, finished)` before and after
    /// collecting; if both pairs match, no span finished mid-snapshot
    /// and the numbers are mutually consistent. Retries a bounded
    /// number of times, then returns the last (best-effort) read —
    /// callers snapshotting at quiescence (tests, end-of-run reports)
    /// always get the exact fixed point on the first try.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_with_aux(&[])
    }

    /// [`Telemetry::snapshot`] plus caller-supplied auxiliary gauges
    /// (e.g. mirror scrub/replay counters owned by other subsystems)
    /// folded into the same coherent read and JSON export.
    pub fn snapshot_with_aux(&self, aux: &[(&'static str, u64)]) -> MetricsSnapshot {
        const MAX_RETRIES: usize = 16;
        let mut snap = self.collect(aux);
        for _ in 0..MAX_RETRIES {
            let begun = self.counters.begun.load(Ordering::Acquire);
            let finished = self.counters.finished.load(Ordering::Acquire);
            if begun == snap.begun && finished == snap.finished {
                break;
            }
            snap = self.collect(aux);
        }
        snap
    }

    /// Walk every histogram series in the registry under its stable
    /// scrape name. This is the observatory's wire contract: the scrape
    /// path encodes exactly these series (sparse, via
    /// [`Histogram::encode`]) and the fleet controller merges them
    /// cross-host under the same names.
    pub fn visit_histograms(&self, mut f: impl FnMut(&'static str, &Histogram)) {
        f("stage_ingress", &self.stage_ingress);
        f("stage_ac", &self.stage_ac);
        f("stage_exec", &self.stage_exec);
        f("stage_mirror", &self.stage_mirror);
        f("total", &self.total);
        f("mirror_bytes", &self.mirror_bytes);
    }

    /// Walk every monotone counter under its stable scrape name
    /// (companion to [`Telemetry::visit_histograms`]). Per-reason deny
    /// counters export as `deny:<label>`.
    pub fn visit_counters(&self, mut f: impl FnMut(&str, u64)) {
        let c = &self.counters;
        f("begun", c.begun.load(Ordering::Relaxed));
        f("finished", c.finished.load(Ordering::Relaxed));
        f("allowed", c.allowed.load(Ordering::Relaxed));
        f("denied", c.denied.load(Ordering::Relaxed));
        f("no_instance", c.no_instance.load(Ordering::Relaxed));
        f("malformed", c.malformed.load(Ordering::Relaxed));
        f("ring_exchanges", c.ring_exchanges.load(Ordering::Relaxed));
        f("ring_rx_bytes", c.ring_rx_bytes.load(Ordering::Relaxed));
        f("ring_tx_bytes", c.ring_tx_bytes.load(Ordering::Relaxed));
        f("dropped_events", self.spans.dropped());
        for (i, &label) in DENY_LABELS.iter().enumerate() {
            let n = c.deny_reasons[i].load(Ordering::Relaxed);
            if n > 0 {
                let mut name = String::with_capacity(5 + label.len());
                name.push_str("deny:");
                name.push_str(label);
                f(&name, n);
            }
        }
    }

    fn collect(&self, aux: &[(&'static str, u64)]) -> MetricsSnapshot {
        let c = &self.counters;
        let begun = c.begun.load(Ordering::Acquire);
        let finished = c.finished.load(Ordering::Acquire);
        MetricsSnapshot {
            begun,
            finished,
            in_flight: begun.saturating_sub(finished),
            allowed: c.allowed.load(Ordering::Relaxed),
            denied: c.denied.load(Ordering::Relaxed),
            no_instance: c.no_instance.load(Ordering::Relaxed),
            malformed: c.malformed.load(Ordering::Relaxed),
            dropped_events: self.spans.dropped(),
            ring_exchanges: c.ring_exchanges.load(Ordering::Relaxed),
            ring_rx_bytes: c.ring_rx_bytes.load(Ordering::Relaxed),
            ring_tx_bytes: c.ring_tx_bytes.load(Ordering::Relaxed),
            deny_reasons: DENY_LABELS
                .iter()
                .enumerate()
                .map(|(i, &label)| (label, c.deny_reasons[i].load(Ordering::Relaxed)))
                .collect(),
            stage_ingress: self.stage_ingress.snapshot(),
            stage_ac: self.stage_ac.snapshot(),
            stage_exec: self.stage_exec.snapshot(),
            stage_mirror: self.stage_mirror.snapshot(),
            total: self.total.snapshot(),
            mirror_bytes: self.mirror_bytes.snapshot(),
            aux: aux.to_vec(),
        }
    }
}

/// One coherent read of the whole registry. Produced by
/// [`Telemetry::snapshot`]; serialized by
/// [`MetricsSnapshot::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Spans opened.
    pub begun: u64,
    /// Spans closed.
    pub finished: u64,
    /// `begun - finished` at snapshot time.
    pub in_flight: u64,
    /// Requests the hook allowed (includes `no_instance`).
    pub allowed: u64,
    /// Requests the hook denied.
    pub denied: u64,
    /// Allowed requests whose instance was missing/destroyed.
    pub no_instance: u64,
    /// Envelopes that failed to decode.
    pub malformed: u64,
    /// Exact span-ring overflow drops.
    pub dropped_events: u64,
    /// Ring request/response exchanges seen at the device backend.
    pub ring_exchanges: u64,
    /// Request payload bytes received on rings.
    pub ring_rx_bytes: u64,
    /// Response payload bytes written to rings.
    pub ring_tx_bytes: u64,
    /// Per-reason deny counts, labelled per [`DENY_LABELS`].
    pub deny_reasons: Vec<(&'static str, u64)>,
    /// Transport decode/verify stage latency.
    pub stage_ingress: HistogramSnapshot,
    /// Access-control hook stage latency.
    pub stage_ac: HistogramSnapshot,
    /// TPM execute stage latency.
    pub stage_exec: HistogramSnapshot,
    /// Mirror commit stage latency.
    pub stage_mirror: HistogramSnapshot,
    /// End-to-end request latency.
    pub total: HistogramSnapshot,
    /// Mirror bytes written per executed command.
    pub mirror_bytes: HistogramSnapshot,
    /// Caller-supplied gauges from other subsystems (mirror scrubs,
    /// replay hits, …).
    pub aux: Vec<(&'static str, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(t: &Telemetry, outcome: Outcome, base: u64) {
        let mut s = t.begin(base);
        s.set_domain(3);
        s.stamp_decode(base + 10);
        match outcome {
            Outcome::Malformed => {}
            _ => {
                s.stamp_ac(base + 30);
                if outcome == Outcome::Ok {
                    s.set_ordinal(0x17);
                    s.stamp_exec(base + 130);
                    s.stamp_mirror(base + 150);
                    s.set_mirror_bytes(4096);
                }
            }
        }
        s.set_outcome(outcome);
        t.finish(s, base + 160);
    }

    #[test]
    fn outcomes_drive_conservation_counters() {
        let t = Telemetry::new();
        for i in 0..10 {
            run_one(&t, Outcome::Ok, i * 1000);
        }
        for i in 0..4 {
            run_one(&t, Outcome::Denied(2), 100_000 + i * 1000);
        }
        run_one(&t, Outcome::Denied(99), 200_000); // unknown code → "other"
        for i in 0..3 {
            run_one(&t, Outcome::NoInstance, 300_000 + i * 1000);
        }
        run_one(&t, Outcome::Malformed, 400_000);
        let s = t.snapshot();
        assert_eq!(s.begun, 19);
        assert_eq!(s.finished, 19);
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.allowed, 13); // 10 ok + 3 no-instance
        assert_eq!(s.denied, 5);
        assert_eq!(s.no_instance, 3);
        assert_eq!(s.malformed, 1);
        assert_eq!(s.allowed + s.denied + s.malformed, s.finished);
        // Per-reason split: code 2 = "replay", unknown → "other".
        assert_eq!(s.deny_reasons[2], ("replay", 4));
        assert_eq!(s.deny_reasons[DENY_LABELS.len() - 1], ("other", 1));
        // Histogram population rules.
        assert_eq!(s.total.count, 19);
        assert_eq!(s.stage_ingress.count, 18); // all but malformed
        assert_eq!(s.stage_ac.count, 18);
        assert_eq!(s.stage_exec.count, 10); // executed only
        assert_eq!(s.stage_mirror.count, 10);
        assert_eq!(s.mirror_bytes.count, 10);
        assert_eq!(s.mirror_bytes.max, 4096);
    }

    #[test]
    fn stage_durations_come_from_stamps() {
        let t = Telemetry::new();
        run_one(&t, Outcome::Ok, 1_000);
        let s = t.snapshot();
        assert_eq!(s.stage_ingress.max, 10);
        assert_eq!(s.stage_ac.max, 20);
        assert_eq!(s.stage_exec.max, 100);
        assert_eq!(s.stage_mirror.max, 20);
        assert_eq!(s.total.max, 160);
        let spans = t.drain_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].request_id, 1);
        assert_eq!(spans[0].total_ns(), 160);
    }

    #[test]
    fn request_ids_are_unique_and_monotonic() {
        let t = Telemetry::new();
        let a = t.begin(0);
        let b = t.begin(0);
        assert_eq!(a.request_id(), 1);
        assert_eq!(b.request_id(), 2);
        t.finish(a, 1);
        t.finish(b, 1);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn unstamped_stages_read_zero() {
        let t = Telemetry::new();
        let mut s = t.begin(500);
        s.set_outcome(Outcome::Malformed);
        t.finish(s, 510);
        let snap = t.snapshot();
        assert_eq!(snap.total.max, 10);
        let spans = t.drain_spans();
        assert_eq!(spans[0].ingress_stage_ns(), 0);
        assert_eq!(spans[0].ac_stage_ns(), 0);
        assert_eq!(spans[0].exec_stage_ns(), 0);
        assert_eq!(spans[0].mirror_stage_ns(), 0);
    }

    #[test]
    fn dropped_events_exact_under_overflow() {
        let t = Telemetry::with_span_capacity(4);
        // 16 stripes x 4 slots = 64 total, but all spans from one
        // telemetry share ids that spread across stripes; force exact
        // accounting instead by checking kept + dropped == finished.
        for i in 0..500 {
            run_one(&t, Outcome::Ok, i * 10);
        }
        let s = t.snapshot();
        assert_eq!(s.finished, 500);
        let kept = t.drain_spans().len() as u64;
        assert_eq!(kept + s.dropped_events, 500);
        assert!(s.dropped_events > 0, "tiny ring must overflow");
        // Counters and histograms are unaffected by span drops.
        assert_eq!(s.allowed, 500);
        assert_eq!(s.stage_exec.count, 500);
    }

    #[test]
    fn snapshot_is_coherent_under_concurrency() {
        use std::sync::Arc;
        let t = Arc::new(Telemetry::new());
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        run_one(&t, if i % 7 == 0 { Outcome::Denied(1) } else { Outcome::Ok }, w * 1_000_000 + i);
                    }
                })
            })
            .collect();
        // Snapshots taken mid-run must always satisfy the outcome sum
        // (each counter bumped before `finished`).
        for _ in 0..50 {
            let s = t.snapshot();
            assert!(s.allowed + s.denied + s.malformed >= s.finished);
            assert!(s.begun >= s.finished);
        }
        for w in workers {
            w.join().unwrap();
        }
        let s = t.snapshot();
        assert_eq!(s.begun, 20_000);
        assert_eq!(s.finished, 20_000);
        assert_eq!(s.allowed + s.denied, 20_000);
        assert_eq!(s.total.count, 20_000);
    }

    #[test]
    fn protocol_denies_count_without_breaking_conservation() {
        let t = Telemetry::new();
        run_one(&t, Outcome::Ok, 0);
        t.note_protocol_deny(DENY_REJECTED_STALE);
        t.note_protocol_deny(DENY_REJECTED_STALE);
        t.note_protocol_deny(DENY_STALE_QUOTE);
        t.note_protocol_deny(DENY_QUOTE_REPLAY);
        let s = t.snapshot();
        assert_eq!(s.deny_reasons[DENY_REJECTED_STALE as usize], ("rejected-stale", 2));
        assert_eq!(s.deny_reasons[DENY_STALE_QUOTE as usize], ("stale-quote", 1));
        assert_eq!(s.deny_reasons[DENY_QUOTE_REPLAY as usize], ("quote-replay", 1));
        // No span finished for the protocol refusals: request-level
        // conservation still holds exactly.
        assert_eq!(s.allowed + s.denied + s.malformed, s.finished);
        assert_eq!(s.denied, 0);
    }

    #[test]
    fn snapshot_with_aux_carries_gauges() {
        let t = Telemetry::new();
        let s = t.snapshot_with_aux(&[("mirror_scrub_failures", 3), ("replay_hits", 9)]);
        assert_eq!(s.aux, vec![("mirror_scrub_failures", 3), ("replay_hits", 9)]);
    }
}
