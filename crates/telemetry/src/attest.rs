//! Attestation-plane observability: quote-issue stage spans and
//! verification latency histograms.
//!
//! The attestation plane (crate `vtpm-attest`) has two hot paths worth
//! watching: *issuance* — where a signing pass pays two RSA private
//! ops (the instance vTPM quote plus the hardware countersign) unless
//! the issued-quote cache absorbs the request — and *verification* —
//! where a `VerifierPool` grinds through batches of submitted quote
//! chains. Each signing pass is summarized into a [`QuoteSpanRecord`]
//! with per-stage durations; cache hits and coalesced waiters only
//! bump counters (that is the whole point of the cache). Verification
//! records one latency sample per submission plus the batch-size
//! distribution, so the R-A1 experiment can report a meaningful p99.
//!
//! Durations here are caller-supplied nanoseconds. The issuer and pool
//! measure wall time (they do real RSA work, unlike the virtual-cost
//! request path); nothing from this module feeds a chaos transcript,
//! so replay determinism is unaffected.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{Histogram, HistogramSnapshot};

/// Issue-stage labels, in signing-pass order. Indexes into
/// [`QuoteSpanRecord::stage_ns`] and [`AttestSnapshot::stages`].
pub const QUOTE_STAGE_LABELS: [&str; 3] = ["vtpm-quote", "hw-countersign", "assemble"];

/// One deep-quote signing pass, summarized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuoteSpanRecord {
    /// Instance the quote covers.
    pub instance: u32,
    /// Nonce-window the quote was issued against.
    pub window: u64,
    /// Permanent-state generation of the instance at quote time (the
    /// cache key component that invalidates on PCR extends).
    pub generation: u64,
    /// Per-stage durations (ns), indexed per [`QUOTE_STAGE_LABELS`].
    pub stage_ns: [u64; 3],
    /// Whole signing pass (ns).
    pub total_ns: u64,
}

/// Plane-wide attestation metrics: issuance counters + stage
/// histograms, verification latency, batch sizes, and the retained
/// signing-pass spans. Shared by the issuer and the verifier pool.
pub struct AttestTelemetry {
    requested: AtomicU64,
    signing_passes: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    verified: AtomicU64,
    accepted: AtomicU64,
    refused: AtomicU64,
    stages: [Histogram; 3],
    issue_total: Histogram,
    verify_latency: Histogram,
    batch_size: Histogram,
    spans: Mutex<Vec<QuoteSpanRecord>>,
}

impl Default for AttestTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl AttestTelemetry {
    /// Empty registry.
    pub fn new() -> Self {
        AttestTelemetry {
            requested: AtomicU64::new(0),
            signing_passes: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            verified: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            stages: std::array::from_fn(|_| Histogram::new()),
            issue_total: Histogram::new(),
            verify_latency: Histogram::new(),
            batch_size: Histogram::new(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Note one quote request arriving at the issuer (hit or miss).
    pub fn note_requested(&self) {
        self.requested.fetch_add(1, Ordering::Relaxed);
    }

    /// Note a request served straight from the issued-quote cache.
    pub fn note_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Note a request that blocked behind a concurrent signing pass for
    /// the same instance and was then served from the cache it filled.
    pub fn note_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one signing pass into the stage histograms and retain it.
    pub fn record_issue(&self, span: QuoteSpanRecord) {
        self.signing_passes.fetch_add(1, Ordering::Relaxed);
        for (hist, ns) in self.stages.iter().zip(span.stage_ns) {
            if ns > 0 {
                hist.record(ns);
            }
        }
        self.issue_total.record(span.total_ns);
        self.spans.lock().expect("span store poisoned").push(span);
    }

    /// Record one verified submission and its wall latency.
    pub fn note_verify(&self, accepted: bool, latency_ns: u64) {
        self.verified.fetch_add(1, Ordering::Relaxed);
        if accepted {
            self.accepted.fetch_add(1, Ordering::Relaxed);
        } else {
            self.refused.fetch_add(1, Ordering::Relaxed);
        }
        self.verify_latency.record(latency_ns);
    }

    /// Record the size of one verification batch.
    pub fn note_batch(&self, size: u64) {
        self.batch_size.record(size);
    }

    /// Retained signing-pass spans, oldest first.
    pub fn spans(&self) -> Vec<QuoteSpanRecord> {
        self.spans.lock().expect("span store poisoned").clone()
    }

    /// Coherent-at-quiescence snapshot.
    pub fn snapshot(&self) -> AttestSnapshot {
        AttestSnapshot {
            requested: self.requested.load(Ordering::Relaxed),
            signing_passes: self.signing_passes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            verified: self.verified.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            stages: QUOTE_STAGE_LABELS
                .iter()
                .zip(&self.stages)
                .map(|(&label, h)| (label, h.snapshot()))
                .collect(),
            issue_total: self.issue_total.snapshot(),
            verify_latency: self.verify_latency.snapshot(),
            batch_size: self.batch_size.snapshot(),
        }
    }
}

/// One read of [`AttestTelemetry`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttestSnapshot {
    /// Quote requests that reached the issuer.
    pub requested: u64,
    /// Requests that paid a full signing pass (two RSA private ops).
    pub signing_passes: u64,
    /// Requests served from the issued-quote cache.
    pub cache_hits: u64,
    /// Requests coalesced behind a concurrent signing pass.
    pub coalesced: u64,
    /// Submissions the verifier pool processed.
    pub verified: u64,
    /// Submissions accepted.
    pub accepted: u64,
    /// Submissions refused (any reason).
    pub refused: u64,
    /// Per-stage signing-pass histograms, labelled per
    /// [`QUOTE_STAGE_LABELS`].
    pub stages: Vec<(&'static str, HistogramSnapshot)>,
    /// Whole-signing-pass duration.
    pub issue_total: HistogramSnapshot,
    /// Per-submission verification latency.
    pub verify_latency: HistogramSnapshot,
    /// Verification batch sizes.
    pub batch_size: HistogramSnapshot,
}

impl AttestSnapshot {
    /// Cache hit rate over all issuer requests (hits + coalesced count
    /// as absorbed; 0.0 when nothing was requested).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.requested == 0 {
            0.0
        } else {
            (self.cache_hits + self.coalesced) as f64 / self.requested as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(instance: u32) -> QuoteSpanRecord {
        QuoteSpanRecord {
            instance,
            window: 7,
            generation: 3,
            stage_ns: [40_000, 60_000, 1_000],
            total_ns: 101_000,
        }
    }

    #[test]
    fn issuance_counters_and_stages_accumulate() {
        let t = AttestTelemetry::new();
        for _ in 0..10 {
            t.note_requested();
        }
        t.record_issue(span(1));
        t.record_issue(span(2));
        for _ in 0..6 {
            t.note_cache_hit();
        }
        t.note_coalesced();
        t.note_coalesced();
        let s = t.snapshot();
        assert_eq!((s.requested, s.signing_passes, s.cache_hits, s.coalesced), (10, 2, 6, 2));
        assert!((s.cache_hit_rate() - 0.8).abs() < 1e-9);
        assert_eq!(s.stages.len(), QUOTE_STAGE_LABELS.len());
        assert_eq!(s.stages[0].0, "vtpm-quote");
        assert_eq!(s.stages[0].1.count, 2);
        assert_eq!(s.issue_total.count, 2);
        assert_eq!(t.spans().len(), 2);
    }

    #[test]
    fn verification_splits_accepts_and_refusals() {
        let t = AttestTelemetry::new();
        t.note_batch(3);
        t.note_verify(true, 5_000);
        t.note_verify(true, 6_000);
        t.note_verify(false, 700);
        let s = t.snapshot();
        assert_eq!((s.verified, s.accepted, s.refused), (3, 2, 1));
        assert_eq!(s.verify_latency.count, 3);
        assert_eq!(s.batch_size.max, 3);
    }

    #[test]
    fn unreached_stages_stay_out_of_histograms() {
        let t = AttestTelemetry::new();
        let mut sp = span(1);
        sp.stage_ns[2] = 0;
        t.record_issue(sp);
        let s = t.snapshot();
        assert_eq!(s.stages[1].1.count, 1);
        assert_eq!(s.stages[2].1.count, 0);
    }
}
