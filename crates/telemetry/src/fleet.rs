//! Fleet control-plane observability: per-tick stage histograms and
//! cluster-wide drive outcome counters.
//!
//! The fleet controller runs a fixed loop each round — observe
//! heartbeats, evaluate suspicion, plan rebalance moves, drive the
//! in-flight migration pool — and charges virtual time in every phase
//! (fabric latency for heartbeats, protocol steps for drives). Each
//! phase's virtual-clock cost is folded into a per-stage histogram
//! here, alongside counters for every way a drive can end and a
//! cluster-wide downtime histogram over *committed* drives (the
//! concurrent-fleet counterpart of R-M1's single-migration downtime:
//! contention between interleaved drives shows up directly in the tail,
//! which is why R-M2 reports this histogram's p99).
//!
//! Everything takes caller-supplied virtual-clock durations, so chaos
//! replays stay byte-deterministic.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Histogram, HistogramSnapshot};

/// Fleet tick phase labels, in loop order. Indexes into
/// [`FleetSnapshot::stages`].
pub const FLEET_STAGE_LABELS: [&str; 4] = ["observe", "suspect", "plan", "drive"];

/// Counters + histograms for one fleet controller.
#[derive(Default)]
pub struct FleetTelemetry {
    ticks: AtomicU64,
    heartbeats_seen: AtomicU64,
    suspects_raised: AtomicU64,
    false_suspects: AtomicU64,
    drives_submitted: AtomicU64,
    drives_committed: AtomicU64,
    drives_rejected_stale: AtomicU64,
    drives_aborted: AtomicU64,
    drives_abandoned: AtomicU64,
    drives_refused: AtomicU64,
    conflicts: AtomicU64,
    stages: [Histogram; 4],
    downtime: Histogram,
}

impl FleetTelemetry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// One controller tick completed.
    pub fn note_tick(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` heartbeats consumed from the control inbox.
    pub fn note_heartbeats(&self, n: u64) {
        self.heartbeats_seen.fetch_add(n, Ordering::Relaxed);
    }

    /// A host newly crossed the suspicion threshold. `false_positive`
    /// marks a host the simulation knows is actually alive.
    pub fn note_suspect(&self, false_positive: bool) {
        self.suspects_raised.fetch_add(1, Ordering::Relaxed);
        if false_positive {
            self.false_suspects.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A drive entered the pool.
    pub fn note_submitted(&self, conflict: bool) {
        self.drives_submitted.fetch_add(1, Ordering::Relaxed);
        if conflict {
            self.conflicts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A drive committed; `downtime_ns` is its quiesce→commit window.
    pub fn note_committed(&self, downtime_ns: u64) {
        self.drives_committed.fetch_add(1, Ordering::Relaxed);
        self.downtime.record(downtime_ns);
    }

    /// A drive lost an epoch race and was refused stale.
    pub fn note_rejected_stale(&self) {
        self.drives_rejected_stale.fetch_add(1, Ordering::Relaxed);
    }

    /// A drive aborted (fault, lost ack, verification failure).
    pub fn note_aborted(&self) {
        self.drives_aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// A drive was abandoned because a host it touched crashed.
    pub fn note_abandoned(&self) {
        self.drives_abandoned.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission was refused before entering the pool (pool full,
    /// or the VM had no live home).
    pub fn note_refused(&self) {
        self.drives_refused.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold `ns` of virtual time into tick phase `stage`
    /// (index into [`FLEET_STAGE_LABELS`]).
    pub fn record_stage(&self, stage: usize, ns: u64) {
        self.stages[stage].record(ns);
    }

    /// Walk every histogram series under its stable scrape name
    /// (`fleet_<phase>` per [`FLEET_STAGE_LABELS`], plus
    /// `fleet_downtime`, the blackout series the SLO engine watches) —
    /// the observatory's wire contract, mirroring
    /// [`crate::Telemetry::visit_histograms`].
    pub fn visit_histograms(&self, mut f: impl FnMut(&str, &Histogram)) {
        for (&label, hist) in FLEET_STAGE_LABELS.iter().zip(&self.stages) {
            let mut name = String::with_capacity(6 + label.len());
            name.push_str("fleet_");
            name.push_str(label);
            f(&name, hist);
        }
        f("fleet_downtime", &self.downtime);
    }

    /// Walk every monotone counter under its stable scrape name
    /// (companion to [`FleetTelemetry::visit_histograms`]).
    pub fn visit_counters(&self, mut f: impl FnMut(&str, u64)) {
        f("fleet_ticks", self.ticks.load(Ordering::Relaxed));
        f("fleet_heartbeats_seen", self.heartbeats_seen.load(Ordering::Relaxed));
        f("fleet_suspects_raised", self.suspects_raised.load(Ordering::Relaxed));
        f("fleet_false_suspects", self.false_suspects.load(Ordering::Relaxed));
        f("fleet_drives_committed", self.drives_committed.load(Ordering::Relaxed));
        f("fleet_drives_aborted", self.drives_aborted.load(Ordering::Relaxed));
        f("fleet_conflicts", self.conflicts.load(Ordering::Relaxed));
    }

    /// Freeze everything into a summary.
    pub fn snapshot(&self) -> FleetSnapshot {
        FleetSnapshot {
            ticks: self.ticks.load(Ordering::Relaxed),
            heartbeats_seen: self.heartbeats_seen.load(Ordering::Relaxed),
            suspects_raised: self.suspects_raised.load(Ordering::Relaxed),
            false_suspects: self.false_suspects.load(Ordering::Relaxed),
            drives_submitted: self.drives_submitted.load(Ordering::Relaxed),
            drives_committed: self.drives_committed.load(Ordering::Relaxed),
            drives_rejected_stale: self.drives_rejected_stale.load(Ordering::Relaxed),
            drives_aborted: self.drives_aborted.load(Ordering::Relaxed),
            drives_abandoned: self.drives_abandoned.load(Ordering::Relaxed),
            drives_refused: self.drives_refused.load(Ordering::Relaxed),
            conflicts: self.conflicts.load(Ordering::Relaxed),
            stages: [
                self.stages[0].snapshot(),
                self.stages[1].snapshot(),
                self.stages[2].snapshot(),
                self.stages[3].snapshot(),
            ],
            downtime: self.downtime.snapshot(),
        }
    }
}

/// A frozen view of a [`FleetTelemetry`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSnapshot {
    /// Controller ticks run.
    pub ticks: u64,
    /// Heartbeats consumed from the control inbox.
    pub heartbeats_seen: u64,
    /// Hosts that newly crossed the suspicion threshold.
    pub suspects_raised: u64,
    /// Suspicions raised against hosts that were actually alive.
    pub false_suspects: u64,
    /// Drives admitted to the pool.
    pub drives_submitted: u64,
    /// Drives that committed.
    pub drives_committed: u64,
    /// Drives refused stale (lost an epoch race).
    pub drives_rejected_stale: u64,
    /// Drives aborted.
    pub drives_aborted: u64,
    /// Drives abandoned to a host crash.
    pub drives_abandoned: u64,
    /// Submissions refused before entering the pool.
    pub drives_refused: u64,
    /// Submissions that raced another in-flight drive of the same VM.
    pub conflicts: u64,
    /// Virtual time per tick phase ([`FLEET_STAGE_LABELS`]).
    pub stages: [HistogramSnapshot; 4],
    /// Quiesce→commit downtime over committed drives, cluster-wide.
    pub downtime: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_fold_into_the_snapshot() {
        let t = FleetTelemetry::new();
        t.note_tick();
        t.note_heartbeats(5);
        t.note_suspect(false);
        t.note_suspect(true);
        t.note_submitted(false);
        t.note_submitted(true);
        t.note_committed(1_000_000);
        t.note_rejected_stale();
        t.record_stage(3, 42);
        let s = t.snapshot();
        assert_eq!(s.ticks, 1);
        assert_eq!(s.heartbeats_seen, 5);
        assert_eq!((s.suspects_raised, s.false_suspects), (2, 1));
        assert_eq!((s.drives_submitted, s.conflicts), (2, 1));
        assert_eq!((s.drives_committed, s.drives_rejected_stale), (1, 1));
        assert_eq!(s.downtime.count, 1);
        assert!(s.downtime.p99 > 0);
        assert_eq!(s.stages[3].count, 1);
        assert_eq!(s.stages[0].count, 0);
    }
}
