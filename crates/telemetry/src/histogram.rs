//! Log-linear histograms over `u64` values (latencies in ns, byte
//! counts), recordable lock-free from any thread.
//!
//! Bucketing follows the HdrHistogram idea at fixed, coarse resolution:
//! values below [`LINEAR_MAX`] get their own bucket; above that, each
//! power-of-two octave is split into [`SUB_BUCKETS`] linear sub-buckets,
//! bounding the relative quantile error at `1/SUB_BUCKETS` (6.25%) while
//! keeping the whole table a fixed 976-slot array of atomics — no
//! allocation, no locking, three relaxed atomic ops per `record`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this are bucketed exactly.
const LINEAR_MAX: u64 = 16;
/// Linear sub-buckets per octave above `LINEAR_MAX`.
const SUB_BUCKETS: u64 = 16;
/// log2 of `LINEAR_MAX` (== log2 of `SUB_BUCKETS`).
const LINEAR_BITS: u32 = 4;
/// Total bucket count: 16 exact + 60 octaves × 16 sub-buckets.
const NUM_BUCKETS: usize = (LINEAR_MAX + (64 - LINEAR_BITS as u64) * SUB_BUCKETS) as usize;

/// Map a value to its bucket index.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= LINEAR_BITS
        let octave = (msb - LINEAR_BITS) as u64;
        let sub = (v >> (msb - LINEAR_BITS)) & (SUB_BUCKETS - 1);
        (LINEAR_MAX + octave * SUB_BUCKETS + sub) as usize
    }
}

/// Lowest value mapping to bucket `idx` (inverse of [`bucket_index`]).
fn bucket_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR_MAX {
        idx
    } else {
        let octave = (idx - LINEAR_MAX) / SUB_BUCKETS;
        let sub = (idx - LINEAR_MAX) % SUB_BUCKETS;
        (LINEAR_MAX + sub) << octave
    }
}

/// Midpoint of bucket `idx`, the value quantiles report.
fn bucket_mid(idx: usize) -> u64 {
    let low = bucket_low(idx);
    let width = if (idx as u64) < LINEAR_MAX { 1 } else { 1u64 << ((idx as u64 - LINEAR_MAX) / SUB_BUCKETS) };
    low + (width - 1) / 2
}

/// A fixed-size, lock-free log-linear histogram.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the array in place.
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = (0..NUM_BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("length fixed"));
        Histogram { buckets, count: AtomicU64::new(0), sum: AtomicU64::new(0), max: AtomicU64::new(0) }
    }

    /// Record one value. Lock-free: three relaxed adds plus a
    /// `fetch_max`; safe from any number of threads.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Fold `other` into `self` bucket-wise. Because both sides share
    /// the same fixed bucket layout, merging never re-buckets a value:
    /// the merged quantiles carry exactly the same ≤ 1/16 relative
    /// error as if every value had been recorded into one histogram,
    /// and `count`/`sum`/`max` combine losslessly. This is how per-host
    /// (or per-epoch) histograms roll up into a cluster-wide view.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Freeze the histogram into a summary. Quantiles are bucket
    /// midpoints (relative error ≤ 1/16 above the linear range).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let mut snap = HistogramSnapshot {
            count,
            sum,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: 0,
            p90: 0,
            p99: 0,
            p999: 0,
            max,
        };
        if count == 0 {
            return snap;
        }
        // One walk over the buckets resolves every quantile.
        let targets = [
            (0.50, &mut snap.p50 as *mut u64),
            (0.90, &mut snap.p90 as *mut u64),
            (0.99, &mut snap.p99 as *mut u64),
            (0.999, &mut snap.p999 as *mut u64),
        ];
        let mut needed: Vec<(u64, *mut u64)> = targets
            .into_iter()
            .map(|(q, out)| (((q * count as f64).ceil() as u64).max(1), out))
            .collect();
        needed.sort_by_key(|&(rank, _)| rank);
        let mut seen = 0u64;
        let mut next = 0usize;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            while next < needed.len() && seen >= needed[next].0 {
                // The pointers all target fields of `snap` above; no
                // aliasing, each written exactly once.
                unsafe { *needed[next].1 = bucket_mid(idx) };
                next += 1;
            }
            if next == needed.len() {
                break;
            }
        }
        snap
    }
}

/// A frozen view of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket midpoint).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
            assert_eq!(bucket_mid(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_monotonic_and_tight() {
        let mut prev = 0;
        for idx in 1..NUM_BUCKETS {
            let low = bucket_low(idx);
            assert!(low > prev, "bucket {idx} low {low} <= {prev}");
            assert_eq!(bucket_index(low), idx, "low of bucket {idx} maps back");
            prev = low;
        }
        // The top bucket still covers u64::MAX.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_bounded() {
        for v in [17u64, 100, 999, 4096, 1_000_000, 123_456_789, u64::MAX / 3] {
            let mid = bucket_mid(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "v={v} mid={mid} err={err}");
        }
    }

    #[test]
    fn quantiles_of_uniform_range() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max, 10_000);
        let tol = |q: f64, got: u64| {
            let want = q * 10_000.0;
            assert!(
                (got as f64 - want).abs() / want <= 0.08,
                "q{q}: got {got}, want ~{want}"
            );
        };
        tol(0.50, s.p50);
        tol(0.90, s.p90);
        tol(0.99, s.p99);
        tol(0.999, s.p999);
        assert!((s.mean - 5000.5).abs() < 1.0);
    }

    #[test]
    fn merge_conserves_count_sum_and_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=5_000u64 {
            a.record(v);
        }
        for v in 5_001..=10_000u64 {
            b.record(v * 3);
        }
        let (ca, sa) = (a.count(), a.sum());
        let (cb, sb) = (b.count(), b.sum());
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, ca + cb);
        assert_eq!(s.sum, sa + sb);
        assert_eq!(s.max, 30_000);
        // Merging an empty histogram is the identity.
        a.merge(&Histogram::new());
        assert_eq!(a.snapshot(), s);
    }

    #[test]
    fn merged_quantiles_match_single_histogram() {
        // Merge must be indistinguishable from having recorded every
        // value into one histogram: the bucket layout is shared, so
        // the snapshots agree bit-for-bit.
        let split_a = Histogram::new();
        let split_b = Histogram::new();
        let whole = Histogram::new();
        for i in 0..20_000u64 {
            let v = (i * 2_654_435_761) % 1_000_000 + 1; // scattered values
            whole.record(v);
            if i % 2 == 0 { split_a.record(v) } else { split_b.record(v) }
        }
        split_a.merge(&split_b);
        assert_eq!(split_a.snapshot(), whole.snapshot());
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn concurrent_records_conserve_count() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 97);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.snapshot().count, 80_000);
    }
}
