//! Log-linear histograms over `u64` values (latencies in ns, byte
//! counts), recordable lock-free from any thread.
//!
//! Bucketing follows the HdrHistogram idea at fixed, coarse resolution:
//! values below [`LINEAR_MAX`] get their own bucket; above that, each
//! power-of-two octave is split into [`SUB_BUCKETS`] linear sub-buckets,
//! bounding the relative quantile error at `1/SUB_BUCKETS` (6.25%) while
//! keeping the whole table a fixed 976-slot array of atomics — no
//! allocation, no locking, three relaxed atomic ops per `record`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this are bucketed exactly.
const LINEAR_MAX: u64 = 16;
/// Linear sub-buckets per octave above `LINEAR_MAX`.
const SUB_BUCKETS: u64 = 16;
/// log2 of `LINEAR_MAX` (== log2 of `SUB_BUCKETS`).
const LINEAR_BITS: u32 = 4;
/// Total bucket count: 16 exact + 60 octaves × 16 sub-buckets.
const NUM_BUCKETS: usize = (LINEAR_MAX + (64 - LINEAR_BITS as u64) * SUB_BUCKETS) as usize;

/// Map a value to its bucket index.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= LINEAR_BITS
        let octave = (msb - LINEAR_BITS) as u64;
        let sub = (v >> (msb - LINEAR_BITS)) & (SUB_BUCKETS - 1);
        (LINEAR_MAX + octave * SUB_BUCKETS + sub) as usize
    }
}

/// Lowest value mapping to bucket `idx` (inverse of [`bucket_index`]).
fn bucket_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR_MAX {
        idx
    } else {
        let octave = (idx - LINEAR_MAX) / SUB_BUCKETS;
        let sub = (idx - LINEAR_MAX) % SUB_BUCKETS;
        (LINEAR_MAX + sub) << octave
    }
}

/// Midpoint of bucket `idx`, the value quantiles report.
fn bucket_mid(idx: usize) -> u64 {
    let low = bucket_low(idx);
    let width = if (idx as u64) < LINEAR_MAX { 1 } else { 1u64 << ((idx as u64 - LINEAR_MAX) / SUB_BUCKETS) };
    low + (width - 1) / 2
}

/// A fixed-size, lock-free log-linear histogram.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the array in place.
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = (0..NUM_BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("length fixed"));
        Histogram { buckets, count: AtomicU64::new(0), sum: AtomicU64::new(0), max: AtomicU64::new(0) }
    }

    /// Record one value. Lock-free: three relaxed adds plus a
    /// `fetch_max`; safe from any number of threads.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Fold `other` into `self` bucket-wise. Because both sides share
    /// the same fixed bucket layout, merging never re-buckets a value:
    /// the merged quantiles carry exactly the same ≤ 1/16 relative
    /// error as if every value had been recorded into one histogram,
    /// and `count`/`sum`/`max` combine losslessly. This is how per-host
    /// (or per-epoch) histograms roll up into a cluster-wide view.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Recorded values *strictly above* `threshold`, counted at bucket
    /// granularity: every bucket whose entire range lies above the
    /// threshold's own bucket. Values sharing the threshold's bucket
    /// are not counted — the answer under-reports by at most the one
    /// ambiguous bucket, i.e. the same ≤ 1/16 relative blur every
    /// quantile here carries. This is the burn-rate primitive: the SLO
    /// engine divides it by [`Histogram::count`] to get the fraction of
    /// samples that blew a latency objective.
    pub fn count_over(&self, threshold: u64) -> u64 {
        self.buckets[bucket_index(threshold) + 1..]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// [`Histogram::count_over`] as a fraction of everything recorded;
    /// 0.0 when empty.
    pub fn fraction_over(&self, threshold: u64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.count_over(threshold) as f64 / count as f64
    }

    /// Serialize for the fabric: a sparse big-endian layout —
    /// `count, sum, max, n, then n × (bucket index u16, bucket count
    /// u64)` in strictly ascending index order. Registries are mostly
    /// empty (a latency series touches a handful of octaves), so the
    /// wire cost is tens of bytes, not the 976-slot table.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.count().to_be_bytes());
        out.extend_from_slice(&self.sum().to_be_bytes());
        out.extend_from_slice(&self.max.load(Ordering::Relaxed).to_be_bytes());
        let nonzero: Vec<(u16, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u16, n))
            })
            .collect();
        out.extend_from_slice(&(nonzero.len() as u32).to_be_bytes());
        for (idx, n) in nonzero {
            out.extend_from_slice(&idx.to_be_bytes());
            out.extend_from_slice(&n.to_be_bytes());
        }
        out
    }

    /// Parse untrusted fabric bytes back into a histogram. `None` on
    /// anything malformed — truncation, trailing bytes, an index out of
    /// the fixed table, indices out of ascending order, a zero bucket
    /// count, or a `count` header that disagrees with the bucket sum —
    /// the same hardening discipline as the migration wire messages.
    pub fn decode(bytes: &[u8]) -> Option<Histogram> {
        fn take_u64(b: &[u8], at: &mut usize) -> Option<u64> {
            let v = u64::from_be_bytes(b.get(*at..*at + 8)?.try_into().ok()?);
            *at += 8;
            Some(v)
        }
        let mut at = 0usize;
        let count = take_u64(bytes, &mut at)?;
        let sum = take_u64(bytes, &mut at)?;
        let max = take_u64(bytes, &mut at)?;
        let n = u32::from_be_bytes(bytes.get(at..at + 4)?.try_into().ok()?) as usize;
        at += 4;
        if n > NUM_BUCKETS {
            return None;
        }
        let h = Histogram::new();
        let mut total = 0u64;
        let mut prev: Option<u16> = None;
        for _ in 0..n {
            let idx = u16::from_be_bytes(bytes.get(at..at + 2)?.try_into().ok()?);
            at += 2;
            let cnt = take_u64(bytes, &mut at)?;
            if idx as usize >= NUM_BUCKETS || cnt == 0 || prev.is_some_and(|p| idx <= p) {
                return None;
            }
            prev = Some(idx);
            h.buckets[idx as usize].store(cnt, Ordering::Relaxed);
            total = total.checked_add(cnt)?;
        }
        if at != bytes.len() || total != count {
            return None;
        }
        h.count.store(count, Ordering::Relaxed);
        h.sum.store(sum, Ordering::Relaxed);
        h.max.store(max, Ordering::Relaxed);
        Some(h)
    }

    /// The bucket-wise difference `self − prev`, for turning cumulative
    /// scrapes into per-window deltas. `None` if any bucket (or the
    /// count/sum) went backwards — a registry is monotone, so that
    /// means the host restarted and the caller should treat the fresh
    /// scrape as a full delta. The delta's `max` is inherited from
    /// `self` (the epoch max): a histogram cannot say which window its
    /// maximum landed in, only that it happened by now.
    pub fn delta_since(&self, prev: &Histogram) -> Option<Histogram> {
        let out = Histogram::new();
        for (i, (mine, theirs)) in self.buckets.iter().zip(prev.buckets.iter()).enumerate() {
            let (a, b) = (mine.load(Ordering::Relaxed), theirs.load(Ordering::Relaxed));
            out.buckets[i].store(a.checked_sub(b)?, Ordering::Relaxed);
        }
        out.count
            .store(self.count().checked_sub(prev.count())?, Ordering::Relaxed);
        out.sum.store(self.sum().checked_sub(prev.sum())?, Ordering::Relaxed);
        out.max.store(self.max.load(Ordering::Relaxed), Ordering::Relaxed);
        Some(out)
    }

    /// Freeze the histogram into a summary. Quantiles are bucket
    /// midpoints (relative error ≤ 1/16 above the linear range).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let mut snap = HistogramSnapshot {
            count,
            sum,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: 0,
            p90: 0,
            p99: 0,
            p999: 0,
            max,
        };
        if count == 0 {
            return snap;
        }
        // One walk over the buckets resolves every quantile.
        let targets = [
            (0.50, &mut snap.p50 as *mut u64),
            (0.90, &mut snap.p90 as *mut u64),
            (0.99, &mut snap.p99 as *mut u64),
            (0.999, &mut snap.p999 as *mut u64),
        ];
        let mut needed: Vec<(u64, *mut u64)> = targets
            .into_iter()
            .map(|(q, out)| (((q * count as f64).ceil() as u64).max(1), out))
            .collect();
        needed.sort_by_key(|&(rank, _)| rank);
        let mut seen = 0u64;
        let mut next = 0usize;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            while next < needed.len() && seen >= needed[next].0 {
                // The pointers all target fields of `snap` above; no
                // aliasing, each written exactly once.
                unsafe { *needed[next].1 = bucket_mid(idx) };
                next += 1;
            }
            if next == needed.len() {
                break;
            }
        }
        snap
    }
}

/// A frozen view of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket midpoint).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
            assert_eq!(bucket_mid(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_monotonic_and_tight() {
        let mut prev = 0;
        for idx in 1..NUM_BUCKETS {
            let low = bucket_low(idx);
            assert!(low > prev, "bucket {idx} low {low} <= {prev}");
            assert_eq!(bucket_index(low), idx, "low of bucket {idx} maps back");
            prev = low;
        }
        // The top bucket still covers u64::MAX.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_bounded() {
        for v in [17u64, 100, 999, 4096, 1_000_000, 123_456_789, u64::MAX / 3] {
            let mid = bucket_mid(bucket_index(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "v={v} mid={mid} err={err}");
        }
    }

    #[test]
    fn quantiles_of_uniform_range() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max, 10_000);
        let tol = |q: f64, got: u64| {
            let want = q * 10_000.0;
            assert!(
                (got as f64 - want).abs() / want <= 0.08,
                "q{q}: got {got}, want ~{want}"
            );
        };
        tol(0.50, s.p50);
        tol(0.90, s.p90);
        tol(0.99, s.p99);
        tol(0.999, s.p999);
        assert!((s.mean - 5000.5).abs() < 1.0);
    }

    #[test]
    fn merge_conserves_count_sum_and_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=5_000u64 {
            a.record(v);
        }
        for v in 5_001..=10_000u64 {
            b.record(v * 3);
        }
        let (ca, sa) = (a.count(), a.sum());
        let (cb, sb) = (b.count(), b.sum());
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, ca + cb);
        assert_eq!(s.sum, sa + sb);
        assert_eq!(s.max, 30_000);
        // Merging an empty histogram is the identity.
        a.merge(&Histogram::new());
        assert_eq!(a.snapshot(), s);
    }

    #[test]
    fn merged_quantiles_match_single_histogram() {
        // Merge must be indistinguishable from having recorded every
        // value into one histogram: the bucket layout is shared, so
        // the snapshots agree bit-for-bit.
        let split_a = Histogram::new();
        let split_b = Histogram::new();
        let whole = Histogram::new();
        for i in 0..20_000u64 {
            let v = (i * 2_654_435_761) % 1_000_000 + 1; // scattered values
            whole.record(v);
            if i % 2 == 0 { split_a.record(v) } else { split_b.record(v) }
        }
        split_a.merge(&split_b);
        assert_eq!(split_a.snapshot(), whole.snapshot());
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn wire_roundtrip_is_bit_identical() {
        let h = Histogram::new();
        for i in 0..5_000u64 {
            h.record((i * 2_654_435_761) % 3_000_000);
        }
        let bytes = h.encode();
        // Sparse: a few dozen populated buckets, not the whole table.
        assert!(bytes.len() < NUM_BUCKETS * 2, "encoding must be sparse");
        let back = Histogram::decode(&bytes).expect("own encoding decodes");
        assert_eq!(back.snapshot(), h.snapshot());
        assert_eq!(back.encode(), bytes, "re-encoding is stable");
        // Empty histogram round-trips too.
        let empty = Histogram::decode(&Histogram::new().encode()).unwrap();
        assert_eq!(empty.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn decode_rejects_malformed_wire_bytes() {
        let h = Histogram::new();
        for v in [1, 40, 40, 9_000, 1 << 40] {
            h.record(v);
        }
        let good = h.encode();
        assert!(Histogram::decode(&good).is_some());
        // Truncated at every length.
        for cut in 0..good.len() {
            assert!(Histogram::decode(&good[..cut]).is_none(), "cut {cut}");
        }
        // Trailing garbage.
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(Histogram::decode(&trailing).is_none());
        // Count header disagreeing with the bucket sum.
        let mut lying = good.clone();
        lying[7] ^= 1;
        assert!(Histogram::decode(&lying).is_none());
        // Bucket index out of the fixed table: forge a single-entry
        // body with idx = NUM_BUCKETS.
        let mut forged = Vec::new();
        forged.extend_from_slice(&1u64.to_be_bytes());
        forged.extend_from_slice(&5u64.to_be_bytes());
        forged.extend_from_slice(&5u64.to_be_bytes());
        forged.extend_from_slice(&1u32.to_be_bytes());
        forged.extend_from_slice(&(NUM_BUCKETS as u16).to_be_bytes());
        forged.extend_from_slice(&1u64.to_be_bytes());
        assert!(Histogram::decode(&forged).is_none());
        // Out-of-order (duplicate) indices.
        let mut dup = Vec::new();
        dup.extend_from_slice(&2u64.to_be_bytes());
        dup.extend_from_slice(&10u64.to_be_bytes());
        dup.extend_from_slice(&5u64.to_be_bytes());
        dup.extend_from_slice(&2u32.to_be_bytes());
        for _ in 0..2 {
            dup.extend_from_slice(&3u16.to_be_bytes());
            dup.extend_from_slice(&1u64.to_be_bytes());
        }
        assert!(Histogram::decode(&dup).is_none());
    }

    #[test]
    fn delta_since_recovers_the_increment() {
        let prev = Histogram::new();
        for v in [5, 900, 70_000] {
            prev.record(v);
        }
        let now = Histogram::decode(&prev.encode()).unwrap();
        let fresh = Histogram::new();
        for v in [6, 901, 2_000_000] {
            now.record(v);
            fresh.record(v);
        }
        let delta = now.delta_since(&prev).expect("monotone registries diff");
        assert_eq!(delta.count(), 3);
        assert_eq!(delta.sum(), fresh.sum());
        // The delta's max is the epoch max — documented approximation.
        assert_eq!(delta.max(), 2_000_000);
        // Quantile structure matches the true increment bucket-for-bucket.
        assert_eq!(delta.snapshot().p99, fresh.snapshot().p99);
        // A shrunken "current" (host restart) refuses to diff.
        assert!(prev.delta_since(&now).is_none());
    }

    #[test]
    fn count_over_supports_burn_fractions() {
        let h = Histogram::new();
        for _ in 0..990 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(50_000_000);
        }
        // Everything above threshold sits far above its bucket, so the
        // bucket-granular count is exact here.
        assert_eq!(h.count_over(1_000_000), 10);
        let f = h.fraction_over(1_000_000);
        assert!((f - 0.01).abs() < 1e-9, "burn fraction {f}");
        assert_eq!(Histogram::new().fraction_over(5).to_bits(), 0f64.to_bits());
    }

    #[test]
    fn concurrent_records_conserve_count() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 97);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.snapshot().count, 80_000);
    }
}
