//! Bounded, lock-free span rings.
//!
//! Completed [`SpanRecord`](crate::SpanRecord)s are pushed into a set of
//! fixed-capacity ring buffers, striped 16 ways by `RequestId` exactly
//! like `vtpm-ac`'s `ReplayGuard` stripes its replay windows, so
//! concurrent producers on different requests land on different cache
//! lines. Each stripe is a Vyukov-style bounded MPMC queue: every slot
//! carries its own sequence atomic, a push is one CAS plus one store,
//! and a full ring is detected *exactly* (the CAS loop observes
//! `seq == head` only when the consumer lags a full lap), which is what
//! makes the `dropped_events` counter exact rather than heuristic.
//!
//! Nothing allocates after construction; push never blocks and never
//! spins unboundedly (a failed claim means either "full" → counted
//! drop, or "lost the race" → retry with a fresh tail).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::SpanRecord;

/// Stripe count; matches `ReplayGuard`'s 16-way striping.
pub const SPAN_SHARDS: usize = 16;

/// Default per-stripe capacity (slots). Power of two.
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<SpanRecord>,
}

/// One bounded MPMC stripe.
struct Stripe {
    slots: Box<[Slot]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
}

unsafe impl Sync for Stripe {}
unsafe impl Send for Stripe {}

impl Stripe {
    fn new(capacity: usize) -> Self {
        assert!(capacity.is_power_of_two(), "stripe capacity must be a power of two");
        let slots: Box<[Slot]> = (0..capacity)
            .map(|i| Slot { seq: AtomicUsize::new(i), value: UnsafeCell::new(SpanRecord::default()) })
            .collect();
        Stripe { slots, mask: capacity - 1, head: AtomicUsize::new(0), tail: AtomicUsize::new(0) }
    }

    /// Push a record; `false` means the stripe is full and the record
    /// was dropped.
    fn push(&self, record: SpanRecord) -> bool {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == tail {
                // Slot free for this lap; claim it.
                match self.tail.compare_exchange_weak(tail, tail + 1, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => {
                        // Sole owner of the slot until we publish seq.
                        unsafe { *slot.value.get() = record };
                        slot.seq.store(tail + 1, Ordering::Release);
                        return true;
                    }
                    Err(actual) => tail = actual,
                }
            } else if seq < tail {
                // Consumer is a full lap behind: ring is full.
                return false;
            } else {
                // Another producer advanced past us; catch up.
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest record, if any.
    fn pop(&self) -> Option<SpanRecord> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let expected = head + 1;
            if seq == expected {
                match self.head.compare_exchange_weak(head, head + 1, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => {
                        let value = unsafe { (*slot.value.get()).clone() };
                        // Free the slot for the producer's next lap.
                        slot.seq.store(head + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => head = actual,
                }
            } else if seq < expected {
                // Empty.
                return None;
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

/// The striped span ring: 16 bounded MPMC stripes plus an exact
/// dropped-record counter.
pub struct SpanRing {
    stripes: Box<[Stripe]>,
    dropped: AtomicU64,
}

impl SpanRing {
    /// A ring with [`DEFAULT_SPAN_CAPACITY`] slots per stripe.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A ring with `per_stripe` slots in each of the 16 stripes
    /// (rounded up to a power of two, minimum 2).
    pub fn with_capacity(per_stripe: usize) -> Self {
        let cap = per_stripe.max(2).next_power_of_two();
        SpanRing {
            stripes: (0..SPAN_SHARDS).map(|_| Stripe::new(cap)).collect(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Total slots across all stripes.
    pub fn capacity(&self) -> usize {
        self.stripes.iter().map(|s| s.slots.len()).sum()
    }

    #[inline]
    fn stripe_for(&self, request_id: u64) -> &Stripe {
        // Fibonacci multiplicative hash, same idiom as ReplayGuard.
        let h = request_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.stripes[(h >> 60) as usize & (SPAN_SHARDS - 1)]
    }

    /// Push a completed span. On overflow the record is dropped and the
    /// exact drop counter incremented.
    #[inline]
    pub fn push(&self, record: SpanRecord) {
        if !self.stripe_for(record.request_id).push(record) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Exact number of spans dropped on ring overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drain every buffered span, oldest-first per stripe, sorted by
    /// ingress timestamp across stripes (stable for equal stamps).
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            while let Some(r) = stripe.pop() {
                out.push(r);
            }
        }
        out.sort_by_key(|r| (r.ingress_ns, r.request_id));
        out
    }
}

impl Default for SpanRing {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Outcome;

    fn span(id: u64) -> SpanRecord {
        SpanRecord { request_id: id, ingress_ns: id, outcome: Outcome::Ok, ..SpanRecord::default() }
    }

    #[test]
    fn push_pop_roundtrip() {
        let ring = SpanRing::with_capacity(8);
        for i in 0..100 {
            ring.push(span(i));
        }
        let drained = ring.drain();
        assert_eq!(drained.len() as u64 + ring.dropped(), 100);
        // Whatever survived comes back in ingress order.
        for w in drained.windows(2) {
            assert!(w[0].ingress_ns <= w[1].ingress_ns);
        }
    }

    #[test]
    fn exact_drop_count_single_stripe() {
        let ring = SpanRing::with_capacity(4);
        // Same request id → same stripe; capacity 4 → exactly 6 drops.
        for _ in 0..10 {
            ring.push(span(7));
        }
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.drain().len(), 4);
    }

    #[test]
    fn drain_resets_for_reuse() {
        let ring = SpanRing::with_capacity(4);
        for round in 0..5u64 {
            for i in 0..4 {
                ring.push(span(round * 4 + i));
            }
            let got = ring.drain();
            assert!(!got.is_empty());
            assert!(ring.drain().is_empty());
        }
        assert_eq!(ring.dropped(), 0, "drained rings never overflow");
    }

    #[test]
    fn concurrent_push_conserves_records() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::with_capacity(1024));
        let threads = 8;
        let per = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per {
                        ring.push(span(t * per + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let kept = ring.drain().len() as u64;
        assert_eq!(kept + ring.dropped(), threads * per, "every push is kept or counted dropped");
    }

    #[test]
    fn concurrent_push_and_drain() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::with_capacity(64));
        let stop = Arc::new(AtomicBool::new(false));
        let drainer = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut total = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    total += ring.drain().len() as u64;
                }
                total += ring.drain().len() as u64;
                total
            })
        };
        let producers: Vec<_> = (0..4u64)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..20_000 {
                        ring.push(span(t * 20_000 + i));
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let drained = drainer.join().unwrap();
        assert_eq!(drained + ring.dropped(), 80_000);
    }
}
