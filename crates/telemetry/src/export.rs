//! Exporters: JSON metrics snapshot and Chrome trace-event span dump.
//!
//! Both are hand-rolled (the workspace has no serde): the JSON emitted
//! is deliberately simple — objects, arrays, integers, and floats with
//! fixed formatting — and is validated against a tiny recursive
//! checker in the tests.

use std::fmt::Write as _;

use crate::{HistogramSnapshot, MetricsSnapshot, SpanRecord};

impl MetricsSnapshot {
    /// Serialize the snapshot as a single JSON object. Every number in
    /// the document comes from the same coherent read; histograms nest
    /// as `{count, sum, mean, p50, p90, p99, p999, max}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        let _ = write!(
            out,
            "  \"requests\": {{\"begun\": {}, \"finished\": {}, \"in_flight\": {}, \
             \"allowed\": {}, \"denied\": {}, \"no_instance\": {}, \"malformed\": {}}},\n",
            self.begun, self.finished, self.in_flight, self.allowed, self.denied, self.no_instance, self.malformed
        );
        let _ = write!(
            out,
            "  \"events\": {{\"dropped\": {}}},\n  \"ring\": {{\"exchanges\": {}, \"rx_bytes\": {}, \"tx_bytes\": {}}},\n",
            self.dropped_events, self.ring_exchanges, self.ring_rx_bytes, self.ring_tx_bytes
        );
        out.push_str("  \"deny_reasons\": {");
        for (i, (label, count)) in self.deny_reasons.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{label}\": {count}");
        }
        out.push_str("},\n  \"latency_ns\": {\n");
        let stages: [(&str, &HistogramSnapshot); 5] = [
            ("ingress", &self.stage_ingress),
            ("ac_hook", &self.stage_ac),
            ("execute", &self.stage_exec),
            ("mirror", &self.stage_mirror),
            ("total", &self.total),
        ];
        for (i, (name, h)) in stages.iter().enumerate() {
            let _ = write!(out, "    \"{name}\": {}", hist_json(h));
            out.push_str(if i + 1 < stages.len() { ",\n" } else { "\n" });
        }
        let _ = write!(out, "  }},\n  \"mirror_bytes_per_cmd\": {}", hist_json(&self.mirror_bytes));
        if !self.aux.is_empty() {
            out.push_str(",\n  \"aux\": {");
            for (i, (label, value)) in self.aux.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{label}\": {value}");
            }
            out.push('}');
        }
        out.push_str("\n}\n");
        out
    }
}

fn hist_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
        h.count, h.sum, h.mean, h.p50, h.p90, h.p99, h.p999, h.max
    )
}

/// Render drained spans as a Chrome trace-event document (JSON object
/// with a `traceEvents` array of `ph: "X"` complete events), loadable
/// in `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Each request renders as up to five nested events on track
/// `pid = 1, tid = domain`: one `request` spanning end-to-end, plus one
/// per stage that ran. Timestamps are microseconds (fractional) from
/// the span's monotonic clock; `args` carry the request id, ordinal,
/// and outcome so the trace is joinable back to the audit log.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(256 + spans.len() * 512);
    out.push_str("{\"traceEvents\": [\n");
    let mut first = true;
    for s in spans {
        let stages: [(&str, u64, u64); 5] = [
            ("request", s.ingress_ns, s.total_ns()),
            ("ingress", s.ingress_ns, s.ingress_stage_ns()),
            ("ac_hook", s.decode_ns, s.ac_stage_ns()),
            ("execute", s.ac_ns, s.exec_stage_ns()),
            ("mirror", s.exec_ns, s.mirror_stage_ns()),
        ];
        for (name, start_ns, dur_ns) in stages {
            if name != "request" && dur_ns == 0 {
                continue; // stage never ran
            }
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"{name}\", \"cat\": \"vtpm\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
                 \"pid\": 1, \"tid\": {}, \"args\": {{\"request_id\": {}, \"ordinal\": {}, \"outcome\": \"{}\"}}}}",
                start_ns as f64 / 1000.0,
                dur_ns as f64 / 1000.0,
                s.domain,
                s.request_id,
                s.ordinal,
                s.outcome.label()
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Outcome, Telemetry};

    /// Minimal JSON well-formedness checker: consumes one value,
    /// returns the rest of the input. Panics on malformed input.
    fn check_value(s: &str) -> &str {
        let s = s.trim_start();
        let mut chars = s.char_indices();
        match chars.next().map(|(_, c)| c) {
            Some('{') => {
                let mut rest = s[1..].trim_start();
                if let Some(stripped) = rest.strip_prefix('}') {
                    return stripped;
                }
                loop {
                    rest = rest.trim_start();
                    assert!(rest.starts_with('"'), "expected key at: {rest:.40}");
                    let close = rest[1..].find('"').expect("unterminated key") + 1;
                    rest = rest[close + 1..].trim_start();
                    rest = rest.strip_prefix(':').expect("expected ':'");
                    rest = check_value(rest).trim_start();
                    if let Some(stripped) = rest.strip_prefix(',') {
                        rest = stripped;
                    } else {
                        return rest.strip_prefix('}').expect("expected '}'");
                    }
                }
            }
            Some('[') => {
                let mut rest = s[1..].trim_start();
                if let Some(stripped) = rest.strip_prefix(']') {
                    return stripped;
                }
                loop {
                    rest = check_value(rest).trim_start();
                    if let Some(stripped) = rest.strip_prefix(',') {
                        rest = stripped;
                    } else {
                        return rest.strip_prefix(']').expect("expected ']'");
                    }
                }
            }
            Some('"') => {
                let close = s[1..].find('"').expect("unterminated string") + 1;
                &s[close + 1..]
            }
            Some(c) if c == '-' || c.is_ascii_digit() => {
                let end = s
                    .find(|c: char| !(c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E'))
                    .unwrap_or(s.len());
                &s[end..]
            }
            Some(_) => {
                for lit in ["true", "false", "null"] {
                    if let Some(stripped) = s.strip_prefix(lit) {
                        return stripped;
                    }
                }
                panic!("unexpected JSON at: {s:.40}");
            }
            None => panic!("empty JSON"),
        }
    }

    fn assert_valid_json(doc: &str) {
        let rest = check_value(doc);
        assert!(rest.trim().is_empty(), "trailing garbage: {rest:.40}");
    }

    fn populated() -> Telemetry {
        let t = Telemetry::new();
        for i in 0..20u64 {
            let mut s = t.begin(i * 1_000);
            s.set_domain(2 + (i % 3) as u32);
            s.set_ordinal(0x17);
            s.stamp_decode(i * 1_000 + 50);
            s.stamp_ac(i * 1_000 + 80);
            if i % 5 == 0 {
                s.set_outcome(Outcome::Denied(2));
            } else {
                s.stamp_exec(i * 1_000 + 300);
                s.stamp_mirror(i * 1_000 + 350);
                s.set_mirror_bytes(8192);
                s.set_outcome(Outcome::Ok);
            }
            t.finish(s, i * 1_000 + 360);
        }
        t.note_ring_exchange(64, 32);
        t
    }

    #[test]
    fn snapshot_json_is_wellformed_and_complete() {
        let t = populated();
        let json = t.snapshot_with_aux(&[("scrub_failures", 1)]).to_json();
        assert_valid_json(&json);
        for key in [
            "\"requests\"",
            "\"begun\": 20",
            "\"allowed\": 16",
            "\"denied\": 4",
            "\"deny_reasons\"",
            "\"replay\": 4",
            "\"latency_ns\"",
            "\"ingress\"",
            "\"ac_hook\"",
            "\"execute\"",
            "\"mirror\"",
            "\"total\"",
            "\"mirror_bytes_per_cmd\"",
            "\"rx_bytes\": 64",
            "\"scrub_failures\": 1",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }

    #[test]
    fn chrome_trace_is_wellformed_and_joinable() {
        let t = populated();
        let spans = t.drain_spans();
        let trace = chrome_trace(&spans);
        assert_valid_json(&trace);
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"name\": \"request\""));
        assert!(trace.contains("\"name\": \"execute\""));
        // Denied spans have no execute/mirror stage events.
        let denied_events = trace.matches("\"outcome\": \"denied\"").count();
        assert_eq!(denied_events, 4 * 3); // request + ingress + ac_hook
        // Every request id appears.
        for id in 1..=20 {
            assert!(trace.contains(&format!("\"request_id\": {id},")) || trace.contains(&format!("\"request_id\": {id}}}")),
                "request {id} missing from trace");
        }
    }

    #[test]
    fn empty_exports_are_valid() {
        let t = Telemetry::new();
        assert_valid_json(&t.snapshot().to_json());
        assert_valid_json(&chrome_trace(&[]));
    }
}
