//! Exporters: JSON metrics snapshot, Prometheus text exposition, and
//! Chrome trace-event span dumps (single-host and cluster-joined).
//!
//! All are hand-rolled (the workspace has no serde): the JSON emitted
//! is deliberately simple — objects, arrays, integers, and floats with
//! fixed formatting — and is validated against a tiny recursive
//! checker in the tests.

use std::fmt::Write as _;

use crate::{
    HistogramSnapshot, MetricsSnapshot, MigrationSpanRecord, SpanRecord, MIGRATION_STAGE_LABELS,
};

impl MetricsSnapshot {
    /// Serialize the snapshot as a single JSON object. Every number in
    /// the document comes from the same coherent read; histograms nest
    /// as `{count, sum, mean, p50, p90, p99, p999, max}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        let _ = write!(
            out,
            "  \"requests\": {{\"begun\": {}, \"finished\": {}, \"in_flight\": {}, \
             \"allowed\": {}, \"denied\": {}, \"no_instance\": {}, \"malformed\": {}}},\n",
            self.begun, self.finished, self.in_flight, self.allowed, self.denied, self.no_instance, self.malformed
        );
        let _ = write!(
            out,
            "  \"events\": {{\"dropped\": {}}},\n  \"ring\": {{\"exchanges\": {}, \"rx_bytes\": {}, \"tx_bytes\": {}}},\n",
            self.dropped_events, self.ring_exchanges, self.ring_rx_bytes, self.ring_tx_bytes
        );
        out.push_str("  \"deny_reasons\": {");
        for (i, (label, count)) in self.deny_reasons.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{label}\": {count}");
        }
        out.push_str("},\n  \"latency_ns\": {\n");
        let stages: [(&str, &HistogramSnapshot); 5] = [
            ("ingress", &self.stage_ingress),
            ("ac_hook", &self.stage_ac),
            ("execute", &self.stage_exec),
            ("mirror", &self.stage_mirror),
            ("total", &self.total),
        ];
        for (i, (name, h)) in stages.iter().enumerate() {
            let _ = write!(out, "    \"{name}\": {}", hist_json(h));
            out.push_str(if i + 1 < stages.len() { ",\n" } else { "\n" });
        }
        let _ = write!(out, "  }},\n  \"mirror_bytes_per_cmd\": {}", hist_json(&self.mirror_bytes));
        if !self.aux.is_empty() {
            out.push_str(",\n  \"aux\": {");
            for (i, (label, value)) in self.aux.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{label}\": {value}");
            }
            out.push('}');
        }
        out.push_str("\n}\n");
        out
    }
}

impl MetricsSnapshot {
    /// Serialize the snapshot in the Prometheus text exposition format
    /// (`# TYPE` headers, `name{labels} value` samples), scrape-ready
    /// next to the JSON and Chrome exporters. Histograms render as
    /// summaries (`quantile` labels plus `_sum`/`_count`); auxiliary
    /// gauges surface as `vtpm_aux{name="…"}`.
    pub fn prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# TYPE vtpm_requests_total counter\n");
        let _ = writeln!(out, "vtpm_requests_total{{state=\"begun\"}} {}", self.begun);
        let _ = writeln!(out, "vtpm_requests_total{{state=\"finished\"}} {}", self.finished);
        out.push_str("# TYPE vtpm_requests_in_flight gauge\n");
        let _ = writeln!(out, "vtpm_requests_in_flight {}", self.in_flight);
        out.push_str("# TYPE vtpm_request_outcomes_total counter\n");
        for (label, v) in [
            ("allowed", self.allowed),
            ("denied", self.denied),
            ("no_instance", self.no_instance),
            ("malformed", self.malformed),
        ] {
            let _ = writeln!(out, "vtpm_request_outcomes_total{{outcome=\"{label}\"}} {v}");
        }
        out.push_str("# TYPE vtpm_deny_reasons_total counter\n");
        for (label, v) in &self.deny_reasons {
            let _ = writeln!(out, "vtpm_deny_reasons_total{{reason=\"{label}\"}} {v}");
        }
        out.push_str("# TYPE vtpm_span_events_dropped_total counter\n");
        let _ = writeln!(out, "vtpm_span_events_dropped_total {}", self.dropped_events);
        out.push_str("# TYPE vtpm_ring_exchanges_total counter\n");
        let _ = writeln!(out, "vtpm_ring_exchanges_total {}", self.ring_exchanges);
        out.push_str("# TYPE vtpm_ring_bytes_total counter\n");
        let _ = writeln!(out, "vtpm_ring_bytes_total{{direction=\"rx\"}} {}", self.ring_rx_bytes);
        let _ = writeln!(out, "vtpm_ring_bytes_total{{direction=\"tx\"}} {}", self.ring_tx_bytes);
        out.push_str("# TYPE vtpm_stage_latency_ns summary\n");
        for (stage, h) in [
            ("ingress", &self.stage_ingress),
            ("ac_hook", &self.stage_ac),
            ("execute", &self.stage_exec),
            ("mirror", &self.stage_mirror),
            ("total", &self.total),
        ] {
            prom_summary(&mut out, "vtpm_stage_latency_ns", &format!("stage=\"{stage}\""), h);
        }
        out.push_str("# TYPE vtpm_mirror_bytes_per_cmd summary\n");
        prom_summary(&mut out, "vtpm_mirror_bytes_per_cmd", "", &self.mirror_bytes);
        if !self.aux.is_empty() {
            out.push_str("# TYPE vtpm_aux gauge\n");
            for (name, v) in &self.aux {
                let _ = writeln!(out, "vtpm_aux{{name=\"{name}\"}} {v}");
            }
        }
        out
    }
}

/// Append one histogram as a Prometheus summary (`quantile` samples
/// plus `_sum`/`_count`) under `metric{labels}`. This is the single
/// shared encoder behind [`MetricsSnapshot::prometheus`], the
/// observatory's fleet-wide text endpoint, and the quickstart example —
/// anything rendering a histogram to exposition text goes through here
/// so the formats cannot drift apart.
pub fn prom_summary(out: &mut String, metric: &str, labels: &str, h: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99), ("0.999", h.p999)] {
        let _ = writeln!(out, "{metric}{{{labels}{sep}quantile=\"{q}\"}} {v}");
    }
    let braces = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
    let _ = writeln!(out, "{metric}_sum{braces} {}", h.sum);
    let _ = writeln!(out, "{metric}_count{braces} {}", h.count);
}

/// Render one histogram as the canonical JSON object
/// `{count, sum, mean, p50, p90, p99, p999, max}` — the single shared
/// encoder behind [`MetricsSnapshot::to_json`] and the observatory's
/// JSON endpoint (same drift-proofing as [`prom_summary`]).
pub fn hist_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
        h.count, h.sum, h.mean, h.p50, h.p90, h.p99, h.p999, h.max
    )
}

/// Render drained spans as a Chrome trace-event document (JSON object
/// with a `traceEvents` array of `ph: "X"` complete events), loadable
/// in `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Each request renders as up to five nested events on track
/// `pid = 1, tid = domain`: one `request` spanning end-to-end, plus one
/// per stage that ran. Timestamps are microseconds (fractional) from
/// the span's monotonic clock; `args` carry the request id, ordinal,
/// and outcome so the trace is joinable back to the audit log.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(256 + spans.len() * 512);
    out.push_str("{\"traceEvents\": [\n");
    let mut first = true;
    for s in spans {
        span_events(&mut out, &mut first, 1, s);
    }
    out.push_str("\n]}\n");
    out
}

/// Emit the up-to-five trace events of one request span on `pid`.
fn span_events(out: &mut String, first: &mut bool, pid: u32, s: &SpanRecord) {
    let stages: [(&str, u64, u64); 5] = [
        ("request", s.ingress_ns, s.total_ns()),
        ("ingress", s.ingress_ns, s.ingress_stage_ns()),
        ("ac_hook", s.decode_ns, s.ac_stage_ns()),
        ("execute", s.ac_ns, s.exec_stage_ns()),
        ("mirror", s.exec_ns, s.mirror_stage_ns()),
    ];
    for (name, start_ns, dur_ns) in stages {
        if name != "request" && dur_ns == 0 {
            continue; // stage never ran
        }
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        let _ = write!(
            out,
            "  {{\"name\": \"{name}\", \"cat\": \"vtpm\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
             \"pid\": {pid}, \"tid\": {}, \"args\": {{\"request_id\": {}, \"ordinal\": {}, \"outcome\": \"{}\"}}}}",
            start_ns as f64 / 1000.0,
            dur_ns as f64 / 1000.0,
            s.domain,
            s.request_id,
            s.ordinal,
            s.outcome.label()
        );
    }
}

/// Render a *cluster-joined* Chrome trace: every host's request spans
/// plus every migration attempt, stitched into one causal document.
///
/// Track layout: each host renders as a process (`pid = host + 1`,
/// named via process-name metadata); request spans keep their
/// per-domain `tid`, migration events share `tid = 0` (the "migration"
/// track). Each migration attempt lays its stage durations out
/// cumulatively from [`MigrationSpanRecord::start_ns`], with
/// source-driven stages (prepare, quiesce, transfer, release) on the
/// source process and destination-driven stages (verify, commit) on
/// the destination, all carrying the attempt's `trace_id` in `args` —
/// the same value both hosts' audit hash-chains recorded as
/// `request_id`, so the trace joins against the logs and against
/// per-request spans in one key space.
pub fn cluster_chrome_trace(
    host_spans: &[(u32, Vec<SpanRecord>)],
    migrations: &[MigrationSpanRecord],
) -> String {
    let mut out = String::with_capacity(1024 + migrations.len() * 1024);
    out.push_str("{\"traceEvents\": [\n");
    let mut first = true;
    for (host, _) in host_spans {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {}, \"args\": {{\"name\": \"host-{host}\"}}}}",
            host + 1
        );
    }
    for (host, spans) in host_spans {
        for s in spans {
            span_events(&mut out, &mut first, host + 1, s);
        }
    }
    for m in migrations {
        // Which side of the handoff drives each stage.
        let owners = [m.src_host, m.src_host, m.src_host, m.dst_host, m.dst_host, m.src_host];
        let mut events: Vec<(&str, u32, u64, u64)> = Vec::with_capacity(8);
        events.push(("migration", m.src_host, m.start_ns, m.total_ns));
        if m.src_host != m.dst_host {
            events.push(("migration", m.dst_host, m.start_ns, m.total_ns));
        }
        let mut at = m.start_ns;
        for (i, &label) in MIGRATION_STAGE_LABELS.iter().enumerate() {
            if m.stage_ns[i] > 0 {
                events.push((label, owners[i], at, m.stage_ns[i]));
            }
            at += m.stage_ns[i];
        }
        for (name, host, start_ns, dur_ns) in events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"{name}\", \"cat\": \"migration\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
                 \"pid\": {}, \"tid\": 0, \"args\": {{\"trace_id\": {}, \"request_id\": {}, \"vm\": {}, \
                 \"epoch\": {}, \"sealed\": {}, \"outcome\": \"{}\"}}}}",
                start_ns as f64 / 1000.0,
                dur_ns as f64 / 1000.0,
                host + 1,
                m.trace_id,
                m.request_id,
                m.vm,
                m.epoch,
                m.sealed,
                m.outcome.label()
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Outcome, Telemetry};

    /// Minimal JSON well-formedness checker: consumes one value,
    /// returns the rest of the input. Panics on malformed input.
    fn check_value(s: &str) -> &str {
        let s = s.trim_start();
        let mut chars = s.char_indices();
        match chars.next().map(|(_, c)| c) {
            Some('{') => {
                let mut rest = s[1..].trim_start();
                if let Some(stripped) = rest.strip_prefix('}') {
                    return stripped;
                }
                loop {
                    rest = rest.trim_start();
                    assert!(rest.starts_with('"'), "expected key at: {rest:.40}");
                    let close = rest[1..].find('"').expect("unterminated key") + 1;
                    rest = rest[close + 1..].trim_start();
                    rest = rest.strip_prefix(':').expect("expected ':'");
                    rest = check_value(rest).trim_start();
                    if let Some(stripped) = rest.strip_prefix(',') {
                        rest = stripped;
                    } else {
                        return rest.strip_prefix('}').expect("expected '}'");
                    }
                }
            }
            Some('[') => {
                let mut rest = s[1..].trim_start();
                if let Some(stripped) = rest.strip_prefix(']') {
                    return stripped;
                }
                loop {
                    rest = check_value(rest).trim_start();
                    if let Some(stripped) = rest.strip_prefix(',') {
                        rest = stripped;
                    } else {
                        return rest.strip_prefix(']').expect("expected ']'");
                    }
                }
            }
            Some('"') => {
                let close = s[1..].find('"').expect("unterminated string") + 1;
                &s[close + 1..]
            }
            Some(c) if c == '-' || c.is_ascii_digit() => {
                let end = s
                    .find(|c: char| !(c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E'))
                    .unwrap_or(s.len());
                &s[end..]
            }
            Some(_) => {
                for lit in ["true", "false", "null"] {
                    if let Some(stripped) = s.strip_prefix(lit) {
                        return stripped;
                    }
                }
                panic!("unexpected JSON at: {s:.40}");
            }
            None => panic!("empty JSON"),
        }
    }

    fn assert_valid_json(doc: &str) {
        let rest = check_value(doc);
        assert!(rest.trim().is_empty(), "trailing garbage: {rest:.40}");
    }

    fn populated() -> Telemetry {
        let t = Telemetry::new();
        for i in 0..20u64 {
            let mut s = t.begin(i * 1_000);
            s.set_domain(2 + (i % 3) as u32);
            s.set_ordinal(0x17);
            s.stamp_decode(i * 1_000 + 50);
            s.stamp_ac(i * 1_000 + 80);
            if i % 5 == 0 {
                s.set_outcome(Outcome::Denied(2));
            } else {
                s.stamp_exec(i * 1_000 + 300);
                s.stamp_mirror(i * 1_000 + 350);
                s.set_mirror_bytes(8192);
                s.set_outcome(Outcome::Ok);
            }
            t.finish(s, i * 1_000 + 360);
        }
        t.note_ring_exchange(64, 32);
        t
    }

    #[test]
    fn snapshot_json_is_wellformed_and_complete() {
        let t = populated();
        let json = t.snapshot_with_aux(&[("scrub_failures", 1)]).to_json();
        assert_valid_json(&json);
        for key in [
            "\"requests\"",
            "\"begun\": 20",
            "\"allowed\": 16",
            "\"denied\": 4",
            "\"deny_reasons\"",
            "\"replay\": 4",
            "\"latency_ns\"",
            "\"ingress\"",
            "\"ac_hook\"",
            "\"execute\"",
            "\"mirror\"",
            "\"total\"",
            "\"mirror_bytes_per_cmd\"",
            "\"rx_bytes\": 64",
            "\"scrub_failures\": 1",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }

    #[test]
    fn chrome_trace_is_wellformed_and_joinable() {
        let t = populated();
        let spans = t.drain_spans();
        let trace = chrome_trace(&spans);
        assert_valid_json(&trace);
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"name\": \"request\""));
        assert!(trace.contains("\"name\": \"execute\""));
        // Denied spans have no execute/mirror stage events.
        let denied_events = trace.matches("\"outcome\": \"denied\"").count();
        assert_eq!(denied_events, 4 * 3); // request + ingress + ac_hook
        // Every request id appears.
        for id in 1..=20 {
            assert!(trace.contains(&format!("\"request_id\": {id},")) || trace.contains(&format!("\"request_id\": {id}}}")),
                "request {id} missing from trace");
        }
    }

    #[test]
    fn empty_exports_are_valid() {
        let t = Telemetry::new();
        assert_valid_json(&t.snapshot().to_json());
        assert_valid_json(&chrome_trace(&[]));
        assert_valid_json(&cluster_chrome_trace(&[], &[]));
    }

    #[test]
    fn prometheus_exposition_is_wellformed() {
        let t = populated();
        let text = t.snapshot_with_aux(&[("scrub_failures", 1)]).prometheus();
        // Every line is a comment or `name{labels} value` with a
        // numeric value.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "non-numeric sample: {line}");
            let opens = name.matches('{').count();
            assert_eq!(opens, name.matches('}').count(), "unbalanced braces: {line}");
            assert!(opens <= 1);
        }
        for needle in [
            "vtpm_requests_total{state=\"finished\"} 20",
            "vtpm_request_outcomes_total{outcome=\"allowed\"} 16",
            "vtpm_deny_reasons_total{reason=\"replay\"} 4",
            "vtpm_deny_reasons_total{reason=\"rejected-stale\"} 0",
            "vtpm_stage_latency_ns{stage=\"execute\",quantile=\"0.99\"}",
            "vtpm_stage_latency_ns_count{stage=\"total\"} 20",
            "vtpm_mirror_bytes_per_cmd{quantile=\"0.5\"}",
            "vtpm_aux{name=\"scrub_failures\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn cluster_trace_stitches_hosts_and_migrations() {
        use crate::{migration_trace_id, MigrationOutcome};
        let a = populated();
        let b = populated();
        let trace_id = migration_trace_id(7, 3);
        let mig = MigrationSpanRecord {
            trace_id,
            request_id: trace_id,
            vm: 7,
            epoch: 3,
            src_host: 0,
            dst_host: 1,
            sealed: true,
            state_bytes: 9000,
            package_bytes: 9200,
            start_ns: 5_000,
            stage_ns: [100, 50, 4000, 6000, 200, 150],
            downtime_ns: 6_250,
            total_ns: 10_500,
            outcome: MigrationOutcome::Committed,
        };
        let doc = cluster_chrome_trace(
            &[(0, a.drain_spans()), (1, b.drain_spans())],
            std::slice::from_ref(&mig),
        );
        assert_valid_json(&doc);
        // Both hosts are named processes with request spans.
        assert!(doc.contains("\"name\": \"host-0\""));
        assert!(doc.contains("\"name\": \"host-1\""));
        assert!(doc.contains("\"pid\": 1, \"tid\": 2"));
        assert!(doc.contains("\"pid\": 2, \"tid\": 2"));
        // The migration umbrella appears on both ends, every stage
        // carries the trace id, and the stages split across hosts:
        // verify/commit on the destination, the rest on the source.
        assert_eq!(doc.matches("\"name\": \"migration\"").count(), 2);
        assert_eq!(doc.matches(&format!("\"trace_id\": {trace_id}")).count(), 8);
        assert!(doc.contains("\"name\": \"verify\", \"cat\": \"migration\", \"ph\": \"X\", \"ts\": 9.150"));
        assert!(doc.contains("\"name\": \"release\""));
    }
}
