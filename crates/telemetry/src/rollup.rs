//! Downsampling ring buffers over virtual time.
//!
//! A [`RollupSeries`] keeps one latency (or size) series at several
//! resolutions at once: a ring of fine windows for the recent past,
//! coarser rings behind it, and a single `retired` histogram absorbing
//! everything that ages out of the coarsest ring. The tiers are
//! *conservative by construction*: a sample lives in exactly one
//! histogram at any moment — it enters the finest ring that still
//! covers its timestamp and only moves when its window is evicted, at
//! which point the whole window histogram is merged (bucket-wise, and
//! the log-linear merge is exact) into the next coarser tier.
//! Consequently [`RollupSeries::total`] is *bit-identical* to a
//! histogram that recorded every sample directly, no matter how many
//! rollup boundaries were crossed — count, sum, max, and every quantile
//! conserve. That identity is the anchor the conservation proptests
//! pin down.
//!
//! Timestamps are caller-supplied virtual nanoseconds, like everything
//! else in this crate, so the observatory stays byte-deterministic
//! under chaos replay.

use std::collections::VecDeque;

use crate::Histogram;

/// Default tier layout: raw 1 s windows, 10 s rollups, 1 min rollups
/// (virtual time), matching the observatory's scrape cadence story.
pub const DEFAULT_ROLLUP_TIERS: [(u64, usize); 3] = [
    (1_000_000_000, 16),  // raw: 1 s windows, ~16 s retained
    (10_000_000_000, 18), // 10 s rollups, ~3 min retained
    (60_000_000_000, 32), // 1 min rollups, ~32 min retained
];

struct Window {
    start_ns: u64,
    hist: Histogram,
}

struct Tier {
    period_ns: u64,
    cap: usize,
    /// Kept in strictly ascending `start_ns` order.
    windows: VecDeque<Window>,
}

impl Tier {
    fn aligned(&self, at_ns: u64) -> u64 {
        at_ns - at_ns % self.period_ns
    }
}

/// One metric series stored raw → 10 s → 1 m (configurable), with
/// count/sum/max conservation across every rollup boundary.
pub struct RollupSeries {
    tiers: Vec<Tier>,
    retired: Histogram,
}

impl Default for RollupSeries {
    fn default() -> Self {
        Self::new(&DEFAULT_ROLLUP_TIERS)
    }
}

impl RollupSeries {
    /// Build from `(period_ns, window_cap)` pairs, finest first. Each
    /// period must be a positive multiple of the one before it so
    /// evicted fine windows land wholly inside one coarse window.
    pub fn new(tiers: &[(u64, usize)]) -> Self {
        assert!(!tiers.is_empty(), "need at least one tier");
        let mut prev = 0u64;
        for &(period, cap) in tiers {
            assert!(period > 0 && cap > 0, "degenerate tier");
            assert!(
                prev == 0 || (period > prev && period % prev == 0),
                "tier periods must be ascending multiples"
            );
            prev = period;
        }
        RollupSeries {
            tiers: tiers
                .iter()
                .map(|&(period_ns, cap)| Tier {
                    period_ns,
                    cap,
                    windows: VecDeque::new(),
                })
                .collect(),
            retired: Histogram::new(),
        }
    }

    /// Fold a delta histogram (e.g. one scrape interval's worth of
    /// samples) into the window covering `at_ns`. Timestamps older
    /// than the finest ring's retention fall through to whichever
    /// coarser tier still covers them, and past the coarsest ring into
    /// `retired` — never dropped.
    pub fn observe(&mut self, at_ns: u64, delta: &Histogram) {
        if delta.count() == 0 && delta.sum() == 0 && delta.max() == 0 {
            return;
        }
        self.fold(0, at_ns, delta);
    }

    /// Record one value at `at_ns`. Convenience over
    /// [`RollupSeries::observe`] for controller-side series that are
    /// not scraped as deltas.
    pub fn record(&mut self, at_ns: u64, value: u64) {
        let h = Histogram::new();
        h.record(value);
        self.fold(0, at_ns, &h);
    }

    fn fold(&mut self, tier_idx: usize, at_ns: u64, delta: &Histogram) {
        if tier_idx >= self.tiers.len() {
            self.retired.merge(delta);
            return;
        }
        let aligned = self.tiers[tier_idx].aligned(at_ns);
        // Older than this ring retains → try the next coarser tier.
        if let Some(front) = self.tiers[tier_idx].windows.front() {
            if aligned < front.start_ns {
                self.fold(tier_idx + 1, at_ns, delta);
                return;
            }
        }
        let tier = &mut self.tiers[tier_idx];
        // Find (or create, keeping ascending order) the target window.
        let pos = tier.windows.partition_point(|w| w.start_ns < aligned);
        match tier.windows.get(pos) {
            Some(w) if w.start_ns == aligned => tier.windows[pos].hist.merge(delta),
            _ => {
                let hist = Histogram::new();
                hist.merge(delta);
                tier.windows.insert(pos, Window { start_ns: aligned, hist });
            }
        }
        // Evict oldest windows over capacity into the next tier.
        while self.tiers[tier_idx].windows.len() > self.tiers[tier_idx].cap {
            let w = self.tiers[tier_idx].windows.pop_front().expect("non-empty");
            self.fold(tier_idx + 1, w.start_ns, &w.hist);
        }
    }

    /// Everything this series ever absorbed, merged into one histogram.
    /// Bit-identical to recording every sample directly into a single
    /// histogram, regardless of how rollups interleaved — the
    /// conservation guarantee.
    pub fn total(&self) -> Histogram {
        let out = Histogram::new();
        out.merge(&self.retired);
        for tier in &self.tiers {
            for w in &tier.windows {
                out.merge(&w.hist);
            }
        }
        out
    }

    /// Merge of every *live* window whose span intersects
    /// `[now_ns − lookback_ns, now_ns]`. Resolution is window
    /// granularity: a coarse window partially inside the range is
    /// included whole, so the answer may over-include by up to one
    /// period of the coarsest tier it touched (`retired` is never
    /// included). This is the burn-rate read: "the last N seconds of
    /// virtual time" for an SLO window.
    pub fn merged_window(&self, now_ns: u64, lookback_ns: u64) -> Histogram {
        let from = now_ns.saturating_sub(lookback_ns);
        let out = Histogram::new();
        for tier in &self.tiers {
            for w in &tier.windows {
                if w.start_ns + tier.period_ns > from && w.start_ns <= now_ns {
                    out.merge(&w.hist);
                }
            }
        }
        out
    }

    /// Live windows per tier, finest first — exporter fodder.
    pub fn tier_depths(&self) -> Vec<usize> {
        self.tiers.iter().map(|t| t.windows.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift — the proptest driver (no external deps).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn tiny_tiers() -> [(u64, usize); 3] {
        // Small caps so a few hundred samples cross every rollup
        // boundary many times.
        [(100, 3), (500, 2), (2_000, 2)]
    }

    #[test]
    fn conservation_against_direct_recording() {
        // Property: total() is bit-identical to a histogram fed the
        // same stream directly — across random timestamps (including
        // out-of-order and far-past ones) and random values.
        for seed in 1..=20u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut series = RollupSeries::new(&tiny_tiers());
            let direct = Histogram::new();
            let mut now = 0u64;
            for _ in 0..400 {
                now += rng.below(300);
                // Occasionally observe in the past to exercise the
                // fall-through-to-coarser path.
                let at = if rng.below(5) == 0 { now / 2 } else { now };
                let shift = rng.below(30);
                let v = rng.below(1 << shift);
                series.record(at, v);
                direct.record(v);
            }
            let total = series.total();
            assert_eq!(total.snapshot(), direct.snapshot(), "seed {seed}");
            assert_eq!(total.count(), 400);
        }
    }

    #[test]
    fn merged_then_rolled_equals_rolled_then_merged() {
        // Property: rolling two hosts' streams through separate series
        // and merging the totals equals rolling the interleaved stream
        // through one series — bit-identical, because histogram merge
        // is exact and rollups only ever merge.
        for seed in 1..=10u64 {
            let mut rng = Rng(seed.wrapping_mul(0xD134_2543_DE82_EF95) | 1);
            let mut a = RollupSeries::new(&tiny_tiers());
            let mut b = RollupSeries::new(&tiny_tiers());
            let mut both = RollupSeries::new(&tiny_tiers());
            let mut now = 0u64;
            for _ in 0..300 {
                now += rng.below(200);
                let v = rng.below(1 << 20) + 1;
                if rng.below(2) == 0 {
                    a.record(now, v);
                } else {
                    b.record(now, v);
                }
                both.record(now, v);
            }
            let merged = a.total();
            merged.merge(&b.total());
            assert_eq!(merged.snapshot(), both.total().snapshot(), "seed {seed}");
        }
    }

    #[test]
    fn observe_folds_delta_histograms() {
        let mut series = RollupSeries::new(&tiny_tiers());
        let delta = Histogram::new();
        for v in [10, 20, 30, 1_000_000] {
            delta.record(v);
        }
        series.observe(50, &delta);
        series.observe(5_000, &delta);
        let t = series.total();
        assert_eq!(t.count(), 8);
        assert_eq!(t.sum(), 2 * (10 + 20 + 30 + 1_000_000));
        assert_eq!(t.max(), 1_000_000);
    }

    #[test]
    fn eviction_cascades_to_retired_without_loss() {
        let mut series = RollupSeries::new(&[(10, 2), (20, 2)]);
        for i in 0..1_000u64 {
            series.record(i * 7, i);
        }
        let t = series.total();
        assert_eq!(t.count(), 1_000);
        assert_eq!(t.sum(), (0..1_000).sum::<u64>());
        assert_eq!(t.max(), 999);
        // Rings hold only their caps; the bulk must be in retired.
        let depths = series.tier_depths();
        assert!(depths[0] <= 2 && depths[1] <= 2, "caps hold: {depths:?}");
    }

    #[test]
    fn merged_window_sees_recent_not_ancient() {
        let mut series = RollupSeries::new(&[(100, 4), (1_000, 4)]);
        series.record(50, 1); // ancient
        for at in [10_000, 10_050, 10_120] {
            series.record(at, 7);
        }
        let recent = series.merged_window(10_150, 300);
        assert_eq!(recent.count(), 3, "the three recent samples");
        // Lookback spanning everything still finds all live samples.
        let all = series.merged_window(10_150, 10_150);
        assert_eq!(all.count(), 4);
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let mut series = RollupSeries::default();
        series.observe(123, &Histogram::new());
        assert_eq!(series.total().count(), 0);
        assert_eq!(series.tier_depths(), vec![0, 0, 0]);
    }
}
