//! Migration observability: per-attempt spans and cluster-wide stage /
//! downtime histograms.
//!
//! The cluster migration driver runs a staged handoff (prepare →
//! quiesce → transfer → verify → commit → release); each attempt is
//! summarized into a [`MigrationSpanRecord`] with per-stage durations
//! stamped from the injected virtual clock, and folded into
//! [`MigrationTelemetry`]'s histograms. Guest-visible *downtime* — the
//! window from source quiesce to destination commit, during which the
//! instance answers on no host — gets its own histogram: it is the
//! headline number of the R-M1 experiment.
//!
//! Like the request-path registry, everything here takes caller-supplied
//! nanosecond timestamps, so chaos replays stay byte-deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{Histogram, HistogramSnapshot, RequestId, TraceId};

/// Stage labels, in protocol order. Indexes into
/// [`MigrationSpanRecord::stage_ns`] and
/// [`MigrationSnapshot::stages`].
pub const MIGRATION_STAGE_LABELS: [&str; 6] =
    ["prepare", "quiesce", "transfer", "verify", "commit", "release"];

/// Mint the cluster-wide [`TraceId`] for migration attempt `(vm,
/// epoch)`. Deterministic — both a replay of the same seed and the
/// destination's own audit trail agree on it — and disjoint from the
/// per-request id space: bit 63 is always set, while request ids are
/// small sequential integers. The id is minted once at the source and
/// shipped inside every wire frame of the attempt; receivers record
/// the value from the wire rather than re-deriving it, exactly as a
/// real tracing header would behave.
pub fn migration_trace_id(vm: u32, epoch: u64) -> TraceId {
    (1u64 << 63) | ((vm as u64) << 32) | (epoch & 0xFFFF_FFFF)
}

/// Terminal state of one migration attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationOutcome {
    /// Handoff committed; the instance now runs on the destination.
    Committed,
    /// Aborted at some stage; the source copy stayed authoritative.
    Aborted,
    /// The destination refused the attempt outright as a stale or
    /// replayed epoch (anti-rollback).
    RejectedStale,
}

impl MigrationOutcome {
    /// Stable lowercase label for exports.
    pub fn label(self) -> &'static str {
        match self {
            MigrationOutcome::Committed => "committed",
            MigrationOutcome::Aborted => "aborted",
            MigrationOutcome::RejectedStale => "rejected-stale",
        }
    }
}

/// One migration attempt, summarized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationSpanRecord {
    /// Cluster-wide causal trace id of the attempt (see
    /// [`migration_trace_id`]), carried in every wire frame.
    pub trace_id: TraceId,
    /// The request-id key under which both hosts chained this attempt's
    /// audit records (equal to [`MigrationSpanRecord::trace_id`] —
    /// migration audit entries join spans through the same
    /// `request_id` field per-request entries use).
    pub request_id: RequestId,
    /// Cluster-wide vm id being moved.
    pub vm: u32,
    /// Migration epoch of this attempt.
    pub epoch: u64,
    /// Source host index.
    pub src_host: u32,
    /// Destination host index.
    pub dst_host: u32,
    /// Whether the package crossed the fabric sealed (vs cleartext).
    pub sealed: bool,
    /// Serialized vTPM state size (plaintext bytes).
    pub state_bytes: u64,
    /// Encoded package size as shipped on the fabric.
    pub package_bytes: u64,
    /// Virtual timestamp (ns) when the attempt began — lets exporters
    /// lay the stage durations out on the absolute timeline next to
    /// per-request spans.
    pub start_ns: u64,
    /// Per-stage durations (ns), indexed per
    /// [`MIGRATION_STAGE_LABELS`]; stages never reached read zero.
    pub stage_ns: [u64; 6],
    /// Source-quiesce → destination-commit (ns); zero unless committed.
    pub downtime_ns: u64,
    /// Whole-attempt duration (ns).
    pub total_ns: u64,
    /// How the attempt ended.
    pub outcome: MigrationOutcome,
}

/// Cluster-wide migration metrics: attempt counters, per-stage latency
/// histograms, the downtime histogram, and the retained span records.
/// One per cluster; snapshots are exact at quiescence.
pub struct MigrationTelemetry {
    started: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    rejected_stale: AtomicU64,
    stages: [Histogram; 6],
    downtime: Histogram,
    total: Histogram,
    package_bytes: Histogram,
    spans: Mutex<Vec<MigrationSpanRecord>>,
}

impl Default for MigrationTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl MigrationTelemetry {
    /// Empty registry.
    pub fn new() -> Self {
        MigrationTelemetry {
            started: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            rejected_stale: AtomicU64::new(0),
            stages: std::array::from_fn(|_| Histogram::new()),
            downtime: Histogram::new(),
            total: Histogram::new(),
            package_bytes: Histogram::new(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Note that an attempt began (before any stage runs, so a crashed
    /// attempt still counts as started).
    pub fn note_started(&self) {
        self.started.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold a finished attempt into counters and histograms and retain
    /// its span record. Downtime is recorded only for committed
    /// attempts — an abort re-opens the source, so the guest-visible
    /// gap it caused is bounded by the quiesce stage, not by a
    /// quiesce→commit distance that never happened.
    pub fn record(&self, span: MigrationSpanRecord) {
        match span.outcome {
            MigrationOutcome::Committed => {
                self.committed.fetch_add(1, Ordering::Relaxed);
                self.downtime.record(span.downtime_ns);
            }
            MigrationOutcome::Aborted => {
                self.aborted.fetch_add(1, Ordering::Relaxed);
            }
            MigrationOutcome::RejectedStale => {
                self.rejected_stale.fetch_add(1, Ordering::Relaxed);
            }
        }
        for (hist, ns) in self.stages.iter().zip(span.stage_ns) {
            if ns > 0 {
                hist.record(ns);
            }
        }
        self.total.record(span.total_ns);
        self.package_bytes.record(span.package_bytes);
        self.spans.lock().expect("span store poisoned").push(span);
    }

    /// Walk every histogram series under its stable scrape name
    /// (`migration_<stage>`, `migration_downtime`, `migration_total`,
    /// `migration_package_bytes`) — the observatory's wire contract,
    /// mirroring [`crate::Telemetry::visit_histograms`].
    pub fn visit_histograms(&self, mut f: impl FnMut(&str, &Histogram)) {
        for (&label, hist) in MIGRATION_STAGE_LABELS.iter().zip(&self.stages) {
            let mut name = String::with_capacity(10 + label.len());
            name.push_str("migration_");
            name.push_str(label);
            f(&name, hist);
        }
        f("migration_downtime", &self.downtime);
        f("migration_total", &self.total);
        f("migration_package_bytes", &self.package_bytes);
    }

    /// Walk every monotone counter under its stable scrape name
    /// (companion to [`MigrationTelemetry::visit_histograms`]).
    pub fn visit_counters(&self, mut f: impl FnMut(&str, u64)) {
        f("migration_started", self.started.load(Ordering::Relaxed));
        f("migration_committed", self.committed.load(Ordering::Relaxed));
        f("migration_aborted", self.aborted.load(Ordering::Relaxed));
        f(
            "migration_rejected_stale",
            self.rejected_stale.load(Ordering::Relaxed),
        );
    }

    /// Retained span records, oldest first.
    pub fn spans(&self) -> Vec<MigrationSpanRecord> {
        self.spans.lock().expect("span store poisoned").clone()
    }

    /// Coherent-at-quiescence snapshot.
    pub fn snapshot(&self) -> MigrationSnapshot {
        MigrationSnapshot {
            started: self.started.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            rejected_stale: self.rejected_stale.load(Ordering::Relaxed),
            stages: MIGRATION_STAGE_LABELS
                .iter()
                .zip(&self.stages)
                .map(|(&label, h)| (label, h.snapshot()))
                .collect(),
            downtime: self.downtime.snapshot(),
            total: self.total.snapshot(),
            package_bytes: self.package_bytes.snapshot(),
        }
    }
}

/// One read of [`MigrationTelemetry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationSnapshot {
    /// Attempts begun (committed + aborted + rejected + in-flight/crashed).
    pub started: u64,
    /// Attempts that committed.
    pub committed: u64,
    /// Attempts that aborted.
    pub aborted: u64,
    /// Attempts refused as stale/replayed epochs.
    pub rejected_stale: u64,
    /// Per-stage duration histograms, labelled per
    /// [`MIGRATION_STAGE_LABELS`].
    pub stages: Vec<(&'static str, HistogramSnapshot)>,
    /// Guest-visible downtime (source quiesce → destination commit),
    /// committed attempts only.
    pub downtime: HistogramSnapshot,
    /// Whole-attempt duration.
    pub total: HistogramSnapshot,
    /// Encoded package bytes on the fabric.
    pub package_bytes: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(outcome: MigrationOutcome, downtime_ns: u64) -> MigrationSpanRecord {
        MigrationSpanRecord {
            trace_id: migration_trace_id(1, 3),
            request_id: migration_trace_id(1, 3),
            vm: 1,
            epoch: 3,
            src_host: 0,
            dst_host: 2,
            sealed: true,
            state_bytes: 9000,
            package_bytes: 9200,
            start_ns: 1_000,
            stage_ns: [100, 50, 4000, 6000, 200, 150],
            downtime_ns,
            total_ns: 10_500,
            outcome,
        }
    }

    #[test]
    fn trace_ids_are_deterministic_and_disjoint_from_request_ids() {
        let a = migration_trace_id(1, 3);
        assert_eq!(a, migration_trace_id(1, 3), "same attempt, same id");
        assert_ne!(a, migration_trace_id(1, 4), "epochs separate attempts");
        assert_ne!(a, migration_trace_id(2, 3), "vms separate attempts");
        // Request ids are small sequential integers; migration traces
        // live in the high band and can never collide with them.
        assert!(a >= 1 << 63);
    }

    #[test]
    fn outcomes_split_counters_and_downtime_is_commit_only() {
        let t = MigrationTelemetry::new();
        for _ in 0..3 {
            t.note_started();
        }
        t.record(span(MigrationOutcome::Committed, 6_250));
        t.record(span(MigrationOutcome::Aborted, 0));
        t.record(span(MigrationOutcome::RejectedStale, 0));
        let s = t.snapshot();
        assert_eq!((s.started, s.committed, s.aborted, s.rejected_stale), (3, 1, 1, 1));
        assert_eq!(s.downtime.count, 1, "only the commit contributes downtime");
        assert_eq!(s.downtime.max, 6_250);
        assert_eq!(s.total.count, 3);
        assert_eq!(s.package_bytes.max, 9200);
        assert_eq!(s.stages.len(), MIGRATION_STAGE_LABELS.len());
        assert_eq!(s.stages[2].0, "transfer");
        assert_eq!(s.stages[2].1.count, 3);
        assert_eq!(t.spans().len(), 3);
    }

    #[test]
    fn unreached_stages_stay_out_of_histograms() {
        let t = MigrationTelemetry::new();
        t.note_started();
        let mut s = span(MigrationOutcome::Aborted, 0);
        // Abort at verify: commit/release never ran.
        s.stage_ns[4] = 0;
        s.stage_ns[5] = 0;
        t.record(s);
        let snap = t.snapshot();
        assert_eq!(snap.stages[3].1.count, 1);
        assert_eq!(snap.stages[4].1.count, 0);
        assert_eq!(snap.stages[5].1.count, 0);
    }
}
