//! Offline shim for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided, and only the part the worker
//! pool uses: cloneable senders *and receivers* (MPMC consumption) with
//! disconnect-on-last-sender-drop semantics. Built on `std::sync::mpsc`
//! with the receiver behind a mutex — contention on that mutex is the
//! price of the shim, which is fine at the worker counts the benches
//! drive (≤ 16).

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Sending side; cloneable.
    pub struct Sender<T>(Inner<T>);

    enum Inner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                Inner::Unbounded(tx) => Inner::Unbounded(tx.clone()),
                Inner::Bounded(tx) => Inner::Bounded(tx.clone()),
            })
        }
    }

    /// Error: all receivers are gone. Returns the unsent value.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error: channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Send `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Inner::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                Inner::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving side; cloneable (MPMC: clones share one queue).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next value, blocking until one arrives or every
        /// sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .recv()
                .map_err(|_| RecvError)
        }

        /// Receive without blocking; `Err` if empty or disconnected.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .try_recv()
                .map_err(|_| RecvError)
        }
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Inner::Unbounded(tx)), Receiver(Arc::new(Mutex::new(rx))))
    }

    /// Channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Inner::Bounded(tx)), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_fanout() {
            let (tx, rx) = unbounded::<u32>();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = 0u32;
                        while rx.recv().is_ok() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx); // disconnect: workers drain and exit
            let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, 100);
        }

        #[test]
        fn recv_fails_after_senders_gone() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receivers_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }
    }
}
