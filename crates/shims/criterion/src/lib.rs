//! Offline shim for the `criterion` bench harness.
//!
//! Presents the API surface the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, throughput annotation — and
//! runs each benchmark for a short, fixed measurement budget, printing
//! one line of mean wall time (plus derived throughput). No warm-up
//! modelling, outlier rejection, or HTML reports: the point is that
//! `cargo bench` runs and produces comparable numbers offline.

use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Combine a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Work-per-iteration annotation, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Measurement settings shared by a group.
#[derive(Debug, Clone, Copy)]
struct GroupConfig {
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
            throughput: None,
        }
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh harness.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), cfg: GroupConfig::default() }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    cfg: GroupConfig,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.cfg.measurement_time = t;
        self
    }

    /// Annotate work done per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.cfg.throughput = Some(t);
        self
    }

    /// Run one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &id.to_string(), self.cfg, |b| f(b));
        self
    }

    /// Run one benchmark closure with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&self.name, &id.to_string(), self.cfg, |b| f(b, input));
        self
    }

    /// End the group (separator line, matching criterion's API shape).
    pub fn finish(self) {
        eprintln!();
    }
}

/// Passed to benchmark closures; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `iters` executions of `routine`, re-running `setup` before
    /// each one outside the measured window (criterion's
    /// `iter_with_setup` contract).
    pub fn iter_with_setup<I, R, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_benchmark(group: &str, id: &str, cfg: GroupConfig, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: time a single iteration, then size batches so the whole
    // run fits the measurement budget.
    let mut probe = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let budget = cfg.measurement_time;
    let total_iters =
        (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
    let batch = (total_iters / cfg.sample_size as u64).max(1);

    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut b = Bencher { iters: batch, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;

    let mut line = format!(
        "{group}/{id}: mean {} median {} ({} samples of {batch} iters)",
        fmt_ns(mean),
        fmt_ns(median),
        samples.len(),
    );
    if let Some(t) = cfg.throughput {
        let per_sec = |work: u64| work as f64 / (mean / 1e9);
        match t {
            Throughput::Bytes(n) => {
                line.push_str(&format!(", {:.1} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!(", {:.0} elem/s", per_sec(n)));
            }
        }
    }
    eprintln!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Opaque value barrier, re-exported for API compatibility.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into one runner, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(3).measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        group.bench_function("noop", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(2).measurement_time(Duration::from_millis(2));
        group.throughput(Throughput::Bytes(64));
        let data = vec![1u8; 64];
        group.bench_with_input(BenchmarkId::new("sum", 64), &data, |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>())
        });
        group.finish();
    }
}
