//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the few synchronization types it actually uses. Semantics
//! match parking_lot where the workspace depends on them: locks do not
//! poison (a panicking holder leaves the data accessible), guards deref
//! to the protected value, and `Condvar::wait_until` takes the guard by
//! `&mut` and reports timeouts via [`WaitTimeoutResult::timed_out`].

use std::sync::PoisonError;
use std::time::Instant;

/// Mutual exclusion, no poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard for [`Mutex`]. Held entry is `Some` except transiently inside
/// `Condvar::wait_until`.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, blocking. A panic in a previous holder does not poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard holds lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard holds lock")
    }
}

/// Reader-writer lock, no poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable usable with [`Mutex`]/[`MutexGuard`].
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Fresh condvar.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block on the condvar until notified or `deadline` passes. The
    /// guard is released while waiting and re-acquired before return.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard holds lock");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable");
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
        drop(g);
    }

    #[test]
    fn condvar_notify_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                let r = cv.wait_until(&mut g, Instant::now() + Duration::from_secs(5));
                assert!(!r.timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
