//! Offline shim for the `rand` crate (0.9-flavoured API surface).
//!
//! Not cryptographic — the workspace's crypto randomness comes from
//! `tpm_crypto::Drbg`. This crate only feeds simulation workloads
//! (Poisson arrivals and the like), where statistical quality and
//! deterministic seeding are what matter. The generator is xoshiro256**
//! seeded through SplitMix64, the same construction the real `rand`
//! uses for its small RNGs.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range a value can be sampled from.
pub trait SampleRange {
    /// The sampled type.
    type Output;
    /// Draw one value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1), scaled into the range.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (self.start + unit * (self.end - self.start)).max(self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Rejection sampling over a power-of-two envelope to
                // avoid modulo bias.
                let mask = span.next_power_of_two().wrapping_sub(1);
                loop {
                    let draw = rng.next_u64() & mask;
                    if draw < span {
                        return self.start + draw as $t;
                    }
                }
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

/// High-level sampling helpers.
pub trait Rng: RngCore {
    /// Draw a value uniformly from `range`.
    fn random_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into the 256-bit state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_by_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn int_range_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_oddly_sized_buffers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
