//! Offline shim for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`), `any::<T>()`,
//! range strategies, tuple strategies, `prop_map`, `collection::vec`,
//! `collection::btree_set`, and `array::uniform{8,16}`, plus the
//! `prop_assert*` / `prop_assume` macros. Cases are generated from a
//! deterministic per-test seed; there is **no shrinking** — a failing
//! case panics with the standard assert message, and the run being
//! deterministic makes it reproducible.

/// Deterministic case-generation RNG (xorshift64*).
pub mod test_runner {
    /// The generator handed to strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded deterministically from the test's name so every run
        /// (and every failure) is reproducible.
        pub fn for_test(name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: state | 1 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state ^= self.state >> 12;
            self.state ^= self.state << 25;
            self.state ^= self.state >> 27;
            self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform draw from `[0, bound)` (rejection sampled).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            let mask = bound.next_power_of_two().wrapping_sub(1);
            loop {
                let draw = self.next_u64() & mask;
                if draw < bound {
                    return draw;
                }
            }
        }
    }

    /// Runner configuration, set via `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a generated case did not complete.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// Precondition failed (`prop_assume!`); the case is skipped.
        Reject(String),
        /// The property failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A skip outcome.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        /// A failure outcome.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Something that can generate values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Always produces a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Weight edge values: all-zero / all-one patterns find
                    // more parser bugs than uniform noise alone.
                    match rng.next_u64() % 16 {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for an [`Arbitrary`] type; see [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.below((hi - lo) as u64 + 1) as $t
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E));
}

/// Collection strategies (`proptest::collection::*`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Vec` strategy with a length drawn from `range`.
    pub struct VecStrategy<S> {
        elem: S,
        range: std::ops::Range<usize>,
    }

    /// Build a `Vec` strategy: each case has a length in `range` and
    /// elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, range: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, range }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.range.is_empty() {
                self.range.start
            } else {
                self.range.start
                    + rng.below((self.range.end - self.range.start) as u64) as usize
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `BTreeSet` strategy; size lands in `range` when the element
    /// domain is large enough to supply distinct values.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        range: std::ops::Range<usize>,
    }

    /// Build a `BTreeSet` strategy.
    pub fn btree_set<S>(elem: S, range: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, range }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = if self.range.is_empty() {
                self.range.start
            } else {
                self.range.start
                    + rng.below((self.range.end - self.range.start) as u64) as usize
            };
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 8 + 8 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Fixed-size array strategies (`proptest::array::*`).
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    macro_rules! uniform_array {
        ($($fname:ident => $n:literal => $tyname:ident),*) => {$(
            /// Strategy producing arrays whose elements all come from
            /// one element strategy.
            pub struct $tyname<S>(S);

            /// Build the array strategy.
            pub fn $fname<S: Strategy>(elem: S) -> $tyname<S> {
                $tyname(elem)
            }

            impl<S: Strategy> Strategy for $tyname<S> {
                type Value = [S::Value; $n];
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    std::array::from_fn(|_| self.0.generate(rng))
                }
            }
        )*};
    }

    uniform_array!(
        uniform4 => 4 => Uniform4,
        uniform8 => 8 => Uniform8,
        uniform16 => 16 => Uniform16,
        uniform20 => 20 => Uniform20,
        uniform32 => 32 => Uniform32
    );
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case when the precondition fails. Only valid
/// inside a `proptest!` body (expands to an early return from the case
/// closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The property-test entry macro. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_cases!($cfg, $name, ($($arg in $strat),*), $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $( $(#[$meta])* fn $name($($arg in $strat),*) $body )*
        }
    };
}

/// Internal: the per-test case loop. Public only for macro expansion.
#[doc(hidden)]
#[macro_export]
macro_rules! __run_cases {
    ($cfg:expr, $name:ident, ($($arg:ident in $strat:expr),*), $body:block) => {{
        let config: $crate::test_runner::ProptestConfig = $cfg;
        let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
        let mut accepted: u32 = 0;
        let mut attempts: u32 = 0;
        let max_attempts = config.cases.saturating_mul(20).max(20);
        while accepted < config.cases && attempts < max_attempts {
            attempts += 1;
            $(
                let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
            )*
            // Bodies run with proptest's contract: `Err(Reject)` skips
            // the case (`prop_assume!`), `Err(Fail)` fails the test, and
            // assertion failures panic (deterministic, replayable).
            let case = move || -> Result<(), $crate::test_runner::TestCaseError> {
                $body
                Ok(())
            };
            match case() {
                Ok(()) => accepted += 1,
                Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed: {msg}")
                }
            }
        }
        assert!(
            config.cases == 0 || accepted > 0,
            "proptest shim: every generated case was rejected by prop_assume!"
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 3u8..9, m in 10usize..20) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((10..20).contains(&m));
        }

        #[test]
        fn prop_map_applies(n in small_even()) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n < 5);
            prop_assert!(n < 5);
        }

        #[test]
        fn tuples_and_arrays(t in (any::<bool>(), 0u32..4), a in crate::array::uniform8(any::<u8>())) {
            prop_assert!(t.1 < 4);
            prop_assert_eq!(a.len(), 8);
        }

        #[test]
        fn btree_set_size_in_range(s in crate::collection::btree_set(0usize..100, 0..10)) {
            prop_assert!(s.len() < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(any::<u8>(), 0..32);
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
