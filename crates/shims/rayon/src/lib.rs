//! Offline shim for the `rayon` crate.
//!
//! Provides `par_iter()` over slices/Vecs with the adapters the
//! workspace uses, executed genuinely in parallel: the input is split
//! into one contiguous chunk per available core and mapped on scoped
//! std threads. This keeps the dump-scan experiment (R-F5) an actual
//! parallel scan rather than a renamed sequential loop.

/// Everything a `use rayon::prelude::*;` consumer needs.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator};
}

pub mod iter {
    /// `.par_iter()` entry point for shared slices.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type yielded by reference.
        type Item: 'a + Sync;
        /// Borrow `self` as a parallel iterator.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    /// A borrowed parallel iterator over a slice.
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    /// The adapter/terminal surface shared by this shim's iterators.
    pub trait ParallelIterator: Sized {
        /// Item type.
        type Item: Send;

        /// Run the pipeline, returning all produced items in input order.
        fn drive(self) -> Vec<Self::Item>;

        /// Map each item through `f`.
        fn map<U: Send, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Item) -> U + Sync,
        {
            Map { base: self, f }
        }

        /// Map each item to a serial iterator and flatten the results.
        fn flat_map_iter<U, I, F>(self, f: F) -> FlatMapIter<Self, F>
        where
            U: Send,
            I: IntoIterator<Item = U>,
            F: Fn(Self::Item) -> I + Sync,
        {
            FlatMapIter { base: self, f }
        }

        /// Keep items satisfying `pred`.
        fn filter<F>(self, pred: F) -> Filter<Self, F>
        where
            F: Fn(&Self::Item) -> bool + Sync,
        {
            Filter { base: self, pred }
        }

        /// Collect into a container (only `Vec` is supported).
        fn collect<C: FromParallel<Self::Item>>(self) -> C {
            C::from_parallel(self.drive())
        }

        /// Sum the items.
        fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
            self.drive().into_iter().sum()
        }

        /// Number of items produced.
        fn count(self) -> usize {
            self.drive().len()
        }
    }

    /// Collection target for [`ParallelIterator::collect`].
    pub trait FromParallel<T> {
        /// Build the container from the produced items.
        fn from_parallel(items: Vec<T>) -> Self;
    }

    impl<T> FromParallel<T> for Vec<T> {
        fn from_parallel(items: Vec<T>) -> Self {
            items
        }
    }

    /// Run `f` over each item of `items` on one scoped thread per core
    /// chunk, preserving input order in the concatenated output.
    fn parallel_map<'a, T: Sync, U: Send, F>(items: &'a [T], f: F) -> Vec<U>
    where
        F: Fn(&'a T) -> U + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        let chunk = items.len().div_ceil(threads.max(1));
        if threads <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let f = &f;
        let mut out: Vec<Vec<U>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<U>>()))
                .collect();
            out = handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
        });
        out.into_iter().flatten().collect()
    }

    impl<'a, T: Sync + 'a> ParallelIterator for ParIter<'a, T> {
        type Item = &'a T;
        fn drive(self) -> Vec<&'a T> {
            // Identity pipeline: no closure to fan out yet.
            self.items.iter().collect()
        }
    }

    /// `map` adapter.
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<'a, T, U, F> ParallelIterator for Map<ParIter<'a, T>, F>
    where
        T: Sync + 'a,
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        type Item = U;
        fn drive(self) -> Vec<U> {
            parallel_map(self.base.items, |item| (self.f)(item))
        }
    }

    /// `flat_map_iter` adapter.
    pub struct FlatMapIter<B, F> {
        base: B,
        f: F,
    }

    impl<'a, T, U, I, F> ParallelIterator for FlatMapIter<ParIter<'a, T>, F>
    where
        T: Sync + 'a,
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(&'a T) -> I + Sync,
    {
        type Item = U;
        fn drive(self) -> Vec<U> {
            let nested = parallel_map(self.base.items, |item| {
                (self.f)(item).into_iter().collect::<Vec<U>>()
            });
            nested.into_iter().flatten().collect()
        }
    }

    /// `filter` adapter.
    pub struct Filter<B, F> {
        base: B,
        pred: F,
    }

    impl<B, F> ParallelIterator for Filter<B, F>
    where
        B: ParallelIterator,
        F: Fn(&B::Item) -> bool + Sync,
    {
        type Item = B::Item;
        fn drive(self) -> Vec<B::Item> {
            let pred = self.pred;
            self.base.drive().into_iter().filter(|item| pred(item)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let input = vec![1usize, 2, 3];
        let out: Vec<usize> = input.par_iter().flat_map_iter(|&n| vec![n; n]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn sum_and_count() {
        let input: Vec<u64> = (1..=100).collect();
        let total: u64 = input.par_iter().map(|&x| x).sum();
        assert_eq!(total, 5050);
        assert_eq!(input.par_iter().map(|&x| x).count(), 100);
    }

    #[test]
    fn empty_input() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
