//! # vtpm-cluster — multi-host fabric with live vTPM migration
//!
//! The paper's access-control improvements assume the vTPM can follow
//! its guest across hosts; this crate builds that cluster layer on the
//! simulator: N [`vtpm::Platform`] instances as hosts, a deterministic
//! lossy/reordering/duplicating message [`fabric`], an eight-step live
//! migration [`protocol`] (prepare → quiesce → sealed transfer → verify
//! → commit/abort) with an **exactly-once** handoff guarantee, durable
//! per-host [`journal`]s for crash recovery, monotonic migration epochs
//! for anti-rollback, and a placement/rebalance layer that moves VMs
//! under live workload traffic.
//!
//! ```
//! use vtpm_cluster::{Cluster, ClusterConfig, MigrateOutcome};
//! use workload::generate_trace;
//!
//! let mut cluster = Cluster::new(b"doc-seed", ClusterConfig::default()).unwrap();
//! let vm = cluster.create_vm().unwrap();
//! for ev in generate_trace(b"doc-trace", 10) {
//!     cluster.apply_event(vm, &ev);
//! }
//! assert_eq!(cluster.migrate(vm, 2), MigrateOutcome::Committed);
//! assert_eq!(cluster.runnable_hosts(vm), vec![2]);
//! ```

pub mod cluster;
pub mod fabric;
pub mod journal;
pub mod protocol;

pub use cluster::{
    Cluster, ClusterConfig, ClusterError, ClusterHost, ControlFrame, MigrateOutcome, MigrationRun,
    QUIESCE_NS, RSA_OPEN_NS, RSA_SEAL_NS, SYM_BYTE_NS, VM_DOMAIN_BASE,
};
pub use fabric::{Fabric, FabricFault, FabricStats, FABRIC_BYTE_NS, FABRIC_MSG_NS};
pub use journal::{JournalRecord, MigrationJournal};
pub use protocol::{decode_payload, encode_payload, HeartbeatFrame, MetricsFrame, MigMessage};

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{generate_trace, TpmOracle};

    fn small() -> ClusterConfig {
        ClusterConfig { frames_per_host: 1024, ..Default::default() }
    }

    fn capture(cluster: &Cluster, vm: u32) -> TpmOracle {
        cluster.with_vm(vm, |i| TpmOracle::capture(&i.tpm)).unwrap()
    }

    fn assert_matches_oracle(cluster: &Cluster, vm: u32, oracle: &TpmOracle) {
        let diff = cluster.with_vm(vm, |i| oracle.diff(&i.tpm)).unwrap();
        assert!(diff.is_empty(), "state diverged: {diff:?}");
    }

    #[test]
    fn sealed_migration_preserves_state_and_serves_after() {
        let mut cluster = Cluster::new(b"cluster-t1", small()).unwrap();
        let vm = cluster.create_vm().unwrap();
        for ev in generate_trace(b"t1-trace", 40) {
            assert!(cluster.apply_event(vm, &ev));
        }
        let before = capture(&cluster, vm);
        let src = cluster.home_of(vm).unwrap();
        let dst = (src + 1) % cluster.config().hosts;

        assert_eq!(cluster.migrate(vm, dst), MigrateOutcome::Committed);
        assert_eq!(cluster.runnable_hosts(vm), vec![dst]);
        assert_matches_oracle(&cluster, vm, &before);

        // Keeps serving on the new host.
        for ev in generate_trace(b"t1-after", 20) {
            assert!(cluster.apply_event(vm, &ev));
        }
        // Both sides chained the stages into their audit logs.
        for h in [src, dst] {
            let entries = cluster.hosts[h].audit.entries();
            assert!(!entries.is_empty() && vtpm_ac::AuditLog::verify(&entries));
        }
        // Downtime was measured for the committed run.
        let snap = cluster.telemetry().snapshot();
        assert_eq!((snap.started, snap.committed), (1, 1));
        assert!(snap.downtime.count == 1 && snap.downtime.max > 0);
    }

    #[test]
    fn clear_mode_migrates_too() {
        let mut cluster =
            Cluster::new(b"cluster-t2", ClusterConfig { sealed: false, ..small() }).unwrap();
        let vm = cluster.create_vm().unwrap();
        for ev in generate_trace(b"t2-trace", 25) {
            cluster.apply_event(vm, &ev);
        }
        let before = capture(&cluster, vm);
        assert_eq!(cluster.migrate(vm, 1), MigrateOutcome::Committed);
        assert_matches_oracle(&cluster, vm, &before);
    }

    #[test]
    fn replayed_transfer_is_rejected_and_epoch_burned() {
        let mut cluster = Cluster::new(b"cluster-t3", small()).unwrap();
        let vm = cluster.create_vm().unwrap();
        for ev in generate_trace(b"t3-trace", 15) {
            cluster.apply_event(vm, &ev);
        }
        assert_eq!(cluster.migrate(vm, 1), MigrateOutcome::Committed);
        // Replay the captured Transfer frame at the destination: the
        // prepare for that epoch is closed, so it must be refused.
        let transfer = cluster
            .fabric
            .wiretap()
            .iter()
            .find(|f| matches!(MigMessage::decode(&f[1..]), Some(MigMessage::Transfer { .. })))
            .cloned()
            .unwrap();
        let before = capture(&cluster, vm);
        cluster.fabric.requeue(1, transfer);
        cluster.pump_host(1);
        assert_eq!(cluster.runnable_hosts(vm), vec![1]);
        assert_matches_oracle(&cluster, vm, &before);

        // A replayed Prepare for the burned epoch is refused as well.
        let prepare = cluster
            .fabric
            .wiretap()
            .iter()
            .find(|f| matches!(MigMessage::decode(&f[1..]), Some(MigMessage::Prepare { .. })))
            .cloned()
            .unwrap();
        cluster.fabric.requeue(1, prepare);
        cluster.pump_host(1);
        assert_eq!(cluster.hosts[1].journal.open_prepare(vm), None);
        assert_eq!(cluster.runnable_hosts(vm), vec![1]);
    }

    #[test]
    fn lost_prepare_ack_aborts_cleanly_and_retry_succeeds() {
        let mut cluster = Cluster::new(b"cluster-t4", small()).unwrap();
        let vm = cluster.create_vm().unwrap();
        for ev in generate_trace(b"t4-trace", 10) {
            cluster.apply_event(vm, &ev);
        }
        let before = capture(&cluster, vm);
        // Drop send #1 (the PrepareAck).
        cluster.fabric.inject_fault(1, FabricFault::Drop);
        let mut run = cluster.begin_migration(vm, 1).unwrap();
        while cluster.step(&mut run) {}
        assert_eq!(cluster.finish_run(run), MigrateOutcome::Aborted);
        // Source still authoritative, state untouched, VM thawed.
        assert_eq!(cluster.runnable_hosts(vm), vec![0]);
        assert_matches_oracle(&cluster, vm, &before);
        // The dangling destination prepare was closed by resolve().
        assert_eq!(cluster.hosts[1].journal.open_prepare(vm), None);
        // A later attempt (fresh epoch past the burned one) succeeds.
        assert_eq!(cluster.migrate(vm, 1), MigrateOutcome::Committed);
        assert_matches_oracle(&cluster, vm, &before);
    }

    #[test]
    fn duplicated_messages_do_not_break_a_healthy_run() {
        for at in 0..6 {
            let mut cluster = Cluster::new(b"cluster-t5", small()).unwrap();
            let vm = cluster.create_vm().unwrap();
            for ev in generate_trace(b"t5-trace", 10) {
                cluster.apply_event(vm, &ev);
            }
            let before = capture(&cluster, vm);
            cluster.fabric.inject_fault(at, FabricFault::Duplicate);
            let outcome = cluster.migrate(vm, 2);
            assert_eq!(outcome, MigrateOutcome::Committed, "dup at send {at}");
            assert_eq!(cluster.runnable_hosts(vm), vec![2], "dup at send {at}");
            assert_matches_oracle(&cluster, vm, &before);
        }
    }

    #[test]
    fn rebalance_spreads_vms_under_traffic() {
        let mut cluster = Cluster::new(b"cluster-t6", small()).unwrap();
        // create_vm places on the least-loaded host, so force the skew
        // by migrating everything onto host 0 first.
        let vms: Vec<u32> = (0..4).map(|_| cluster.create_vm().unwrap()).collect();
        for &vm in &vms {
            for ev in generate_trace(&[b"t6-trace/", &[vm as u8][..]].concat(), 8) {
                cluster.apply_event(vm, &ev);
            }
            if cluster.home_of(vm) != Some(0) {
                assert_eq!(cluster.migrate(vm, 0), MigrateOutcome::Committed);
            }
        }
        let moves = cluster.rebalance().expect("populated cluster");
        assert!(moves >= 2, "expected at least two moves, got {moves}");
        let counts: Vec<usize> =
            (0..3).map(|h| cluster.hosts[h].journal.mapped_vms().len()).collect();
        assert!(counts.iter().all(|&c| c >= 1), "still skewed: {counts:?}");
        // Every VM runnable on exactly one host and still serving.
        for &vm in &vms {
            assert_eq!(cluster.runnable_hosts(vm).len(), 1);
            for ev in generate_trace(&[b"t6-after/", &[vm as u8][..]].concat(), 4) {
                assert!(cluster.apply_event(vm, &ev));
            }
        }
    }

    #[test]
    fn trace_id_joins_wire_frames_audit_chains_and_span() {
        let mut cluster = Cluster::new(b"cluster-t8", small()).unwrap();
        let vm = cluster.create_vm().unwrap();
        for ev in generate_trace(b"t8-trace", 10) {
            cluster.apply_event(vm, &ev);
        }
        assert_eq!(cluster.migrate(vm, 1), MigrateOutcome::Committed);

        let spans = cluster.telemetry().spans();
        assert_eq!(spans.len(), 1);
        let trace = spans[0].trace_id;
        assert_eq!(spans[0].request_id, trace, "span joins audit chains by the same key");
        assert_eq!(trace, vtpm_telemetry::migration_trace_id(vm, spans[0].epoch));

        // Every wire frame of the attempt carried the trace id.
        for frame in cluster.fabric.wiretap() {
            let msg = MigMessage::decode(&frame[1..]).expect("wiretap frame decodes");
            assert_eq!(msg.trace(), trace, "frame {msg:?} lost the trace header");
        }
        // Both hosts chained the migration stages under that id, so the
        // trace joins source and destination audit logs causally.
        for h in [0usize, 1] {
            let entries = cluster.hosts[h].audit.entries();
            assert!(vtpm_ac::AuditLog::verify(&entries));
            let stages: Vec<_> = entries
                .iter()
                .filter(|e| {
                    matches!(e.outcome, vtpm_ac::AuditOutcome::Migration(_))
                        && e.request_id == trace
                })
                .collect();
            assert!(!stages.is_empty(), "host {h} has no audit entries under trace {trace:#x}");
        }
    }

    #[test]
    fn quiesced_vm_bounces_guest_traffic() {
        let mut cluster = Cluster::new(b"cluster-t7", small()).unwrap();
        let vm = cluster.create_vm().unwrap();
        for ev in generate_trace(b"t7-trace", 5) {
            cluster.apply_event(vm, &ev);
        }
        let mut run = cluster.begin_migration(vm, 1).unwrap();
        // Through quiesce (steps 0..=2), before transfer.
        for _ in 0..3 {
            assert!(cluster.step(&mut run));
        }
        assert!(cluster.runnable_hosts(vm).is_empty(), "quiesced VM must not be runnable");
        assert!(!cluster.apply_event(vm, &generate_trace(b"t7-extra", 1)[0]));
        // Finish the run; the VM serves again on the destination.
        while cluster.step(&mut run) {}
        assert_eq!(cluster.finish_run(run), MigrateOutcome::Committed);
        assert_eq!(cluster.runnable_hosts(vm), vec![1]);
    }
}
