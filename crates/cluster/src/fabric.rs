//! The inter-host message fabric.
//!
//! Hosts exchange migration-protocol messages over a simulated network:
//! per-host FIFO inboxes with modelled latency charged to the shared
//! cluster clock, a wiretap that records every byte on the wire (the
//! attack surface the migration-window dump scenario scans), and
//! one-shot fault hooks in the style of `xen_sim`'s
//! `inject_ring_fault` — armed against the global send counter, so a
//! seeded plan can drop, duplicate, or reorder exactly the k-th message
//! of a run and replays stay byte-identical.
//!
//! A host crash wipes its inbox: queued-but-unprocessed messages model
//! kernel socket buffers, not durable state.
//!
//! Besides the per-host inboxes there is one **control inbox**: the
//! fleet controller's receive queue for periodic host heartbeats. It
//! rides the same wire model (latency, wiretap, one-shot faults against
//! the same global send counter) but no host crash wipes it — the
//! control plane's own box is assumed to stay up, exactly like the
//! journals it reads during `resolve()`. What *does* make heartbeats
//! stop is the sender dying, which is the signal the failure detector
//! feeds on.

use std::collections::VecDeque;
use std::sync::Arc;

use xen_sim::VirtualClock;

/// Per-message fabric latency (ns): connection handling + syscalls.
pub const FABRIC_MSG_NS: u64 = 150_000;
/// Per-byte fabric cost (ns): 8 ns/byte ≈ 1 Gbit/s.
pub const FABRIC_BYTE_NS: u64 = 8;

/// A one-shot fault armed against the global send counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricFault {
    /// The message vanishes on the wire.
    Drop,
    /// The message is delivered twice.
    Duplicate,
    /// The message jumps the destination's queue (delivered before
    /// everything already waiting there).
    Reorder,
}

/// Counters the chaos reports surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Messages handed to [`Fabric::send`].
    pub sent: u64,
    /// Messages consumed via [`Fabric::recv`].
    pub delivered: u64,
    /// Messages a fault dropped.
    pub dropped: u64,
    /// Extra copies a fault injected.
    pub duplicated: u64,
    /// Messages a fault reordered.
    pub reordered: u64,
    /// Queued messages lost to host crashes.
    pub crash_lost: u64,
}

/// The simulated network joining the hosts.
pub struct Fabric {
    inboxes: Vec<VecDeque<Vec<u8>>>,
    control: VecDeque<Vec<u8>>,
    faults: Vec<(u64, FabricFault)>,
    wiretap: Vec<Vec<u8>>,
    clock: Arc<VirtualClock>,
    stats: FabricStats,
}

impl Fabric {
    /// A fabric joining `hosts` hosts, charging latency to `clock`.
    pub fn new(hosts: usize, clock: Arc<VirtualClock>) -> Self {
        Fabric {
            inboxes: (0..hosts).map(|_| VecDeque::new()).collect(),
            control: VecDeque::new(),
            faults: Vec::new(),
            wiretap: Vec::new(),
            clock,
            stats: FabricStats::default(),
        }
    }

    /// Join one more host (host-join churn): a fresh, empty inbox.
    /// Returns the new host's index.
    pub fn add_host(&mut self) -> usize {
        self.inboxes.push(VecDeque::new());
        self.inboxes.len() - 1
    }

    /// Hosts currently joined to the fabric.
    pub fn hosts(&self) -> usize {
        self.inboxes.len()
    }

    /// Arm a one-shot `fault` against send number `at_send` (0-based
    /// over the fabric's lifetime). Multiple faults may be armed;
    /// each fires once.
    pub fn inject_fault(&mut self, at_send: u64, fault: FabricFault) {
        self.faults.push((at_send, fault));
    }

    /// Ship `bytes` to `to`'s inbox, paying the modelled wire cost.
    /// Everything sent lands on the wiretap *before* fault handling —
    /// a dropped message was still on the wire for an eavesdropper.
    pub fn send(&mut self, to: usize, bytes: Vec<u8>) {
        let n = self.stats.sent;
        self.stats.sent += 1;
        self.clock
            .advance_ns(FABRIC_MSG_NS + bytes.len() as u64 * FABRIC_BYTE_NS);
        self.wiretap.push(bytes.clone());
        let fault = self
            .faults
            .iter()
            .position(|&(at, _)| at == n)
            .map(|i| self.faults.swap_remove(i).1);
        match fault {
            Some(FabricFault::Drop) => {
                self.stats.dropped += 1;
            }
            Some(FabricFault::Duplicate) => {
                self.stats.duplicated += 1;
                self.inboxes[to].push_back(bytes.clone());
                self.inboxes[to].push_back(bytes);
            }
            Some(FabricFault::Reorder) => {
                self.stats.reordered += 1;
                self.inboxes[to].push_front(bytes);
            }
            None => self.inboxes[to].push_back(bytes),
        }
    }

    /// Ship `bytes` to the control inbox (heartbeats). Same wire model
    /// as [`Fabric::send`]: latency charged, wiretapped before fault
    /// handling, and the one-shot faults armed against the global send
    /// counter apply — a seeded plan can drop or duplicate exactly the
    /// k-th frame whether it is protocol or heartbeat traffic.
    pub fn send_control(&mut self, bytes: Vec<u8>) {
        let n = self.stats.sent;
        self.stats.sent += 1;
        self.clock
            .advance_ns(FABRIC_MSG_NS + bytes.len() as u64 * FABRIC_BYTE_NS);
        self.wiretap.push(bytes.clone());
        let fault = self
            .faults
            .iter()
            .position(|&(at, _)| at == n)
            .map(|i| self.faults.swap_remove(i).1);
        match fault {
            Some(FabricFault::Drop) => {
                self.stats.dropped += 1;
            }
            Some(FabricFault::Duplicate) => {
                self.stats.duplicated += 1;
                self.control.push_back(bytes.clone());
                self.control.push_back(bytes);
            }
            Some(FabricFault::Reorder) => {
                self.stats.reordered += 1;
                self.control.push_front(bytes);
            }
            None => self.control.push_back(bytes),
        }
    }

    /// Pull the next control-inbox frame, if any.
    pub fn recv_control(&mut self) -> Option<Vec<u8>> {
        let m = self.control.pop_front();
        if m.is_some() {
            self.stats.delivered += 1;
        }
        m
    }

    /// Frames waiting in the control inbox.
    pub fn control_pending(&self) -> usize {
        self.control.len()
    }

    /// Pull the next message waiting at `host`, if any.
    pub fn recv(&mut self, host: usize) -> Option<Vec<u8>> {
        let m = self.inboxes[host].pop_front();
        if m.is_some() {
            self.stats.delivered += 1;
        }
        m
    }

    /// Put a received-but-unconsumed message back at the end of
    /// `host`'s inbox without re-charging wire cost (local handoff
    /// between consumers on the same host, not a re-send).
    pub fn requeue(&mut self, host: usize, bytes: Vec<u8>) {
        self.stats.delivered -= 1;
        self.inboxes[host].push_back(bytes);
    }

    /// Messages waiting at `host`.
    pub fn pending(&self, host: usize) -> usize {
        self.inboxes[host].len()
    }

    /// A host crashed: its socket buffers are gone.
    pub fn crash_host(&mut self, host: usize) {
        self.stats.crash_lost += self.inboxes[host].len() as u64;
        self.inboxes[host].clear();
    }

    /// Everything that ever crossed the wire (the eavesdropper's view).
    pub fn wiretap(&self) -> &[Vec<u8>] {
        &self.wiretap
    }

    /// Counters.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(hosts: usize) -> Fabric {
        Fabric::new(hosts, Arc::new(VirtualClock::new()))
    }

    #[test]
    fn fifo_delivery_and_wire_cost() {
        let clock = Arc::new(VirtualClock::new());
        let mut f = Fabric::new(2, Arc::clone(&clock));
        f.send(1, vec![1; 100]);
        f.send(1, vec![2; 100]);
        assert_eq!(clock.now_ns(), 2 * (FABRIC_MSG_NS + 100 * FABRIC_BYTE_NS));
        assert_eq!(f.recv(1).unwrap()[0], 1);
        assert_eq!(f.recv(1).unwrap()[0], 2);
        assert!(f.recv(1).is_none());
        assert_eq!(f.stats().delivered, 2);
    }

    #[test]
    fn faults_fire_once_at_their_send_offset() {
        let mut f = fabric(2);
        f.inject_fault(0, FabricFault::Drop);
        f.inject_fault(2, FabricFault::Duplicate);
        f.send(1, vec![0]); // dropped
        f.send(1, vec![1]);
        f.send(1, vec![2]); // duplicated
        assert_eq!(f.pending(1), 3);
        assert_eq!(f.recv(1).unwrap(), vec![1]);
        assert_eq!(f.recv(1).unwrap(), vec![2]);
        assert_eq!(f.recv(1).unwrap(), vec![2]);
        let s = f.stats();
        assert_eq!((s.dropped, s.duplicated), (1, 1));
        // The dropped message still hit the wiretap.
        assert_eq!(f.wiretap().len(), 3);
    }

    #[test]
    fn reorder_jumps_the_queue() {
        let mut f = fabric(2);
        f.inject_fault(1, FabricFault::Reorder);
        f.send(1, vec![0]);
        f.send(1, vec![1]); // cuts in line
        assert_eq!(f.recv(1).unwrap(), vec![1]);
        assert_eq!(f.recv(1).unwrap(), vec![0]);
    }

    #[test]
    fn control_inbox_rides_the_same_wire() {
        let clock = Arc::new(VirtualClock::new());
        let mut f = Fabric::new(2, Arc::clone(&clock));
        f.inject_fault(1, FabricFault::Drop);
        f.send_control(vec![1; 10]);
        f.send_control(vec![2; 10]); // dropped
        f.send_control(vec![3; 10]);
        assert_eq!(clock.now_ns(), 3 * (FABRIC_MSG_NS + 10 * FABRIC_BYTE_NS));
        assert_eq!(f.control_pending(), 2);
        assert_eq!(f.recv_control().unwrap()[0], 1);
        assert_eq!(f.recv_control().unwrap()[0], 3);
        assert!(f.recv_control().is_none());
        // A host crash never touches the control inbox.
        f.send_control(vec![4]);
        f.crash_host(0);
        f.crash_host(1);
        assert_eq!(f.control_pending(), 1);
        // Everything hit the wiretap, dropped frame included.
        assert_eq!(f.wiretap().len(), 4);
    }

    #[test]
    fn joined_host_gets_a_working_inbox() {
        let mut f = fabric(2);
        assert_eq!(f.add_host(), 2);
        assert_eq!(f.hosts(), 3);
        f.send(2, vec![5]);
        assert_eq!(f.recv(2).unwrap(), vec![5]);
    }

    #[test]
    fn crash_wipes_the_inbox() {
        let mut f = fabric(3);
        f.send(2, vec![9]);
        f.send(2, vec![8]);
        f.crash_host(2);
        assert!(f.recv(2).is_none());
        assert_eq!(f.stats().crash_lost, 2);
        // Other hosts unaffected.
        f.send(0, vec![7]);
        assert_eq!(f.recv(0).unwrap(), vec![7]);
    }
}
