//! Migration protocol wire messages.
//!
//! The handoff is an eight-step, source-driven exchange:
//!
//! ```text
//!  source                       fabric                    destination
//!  s0 Prepare{vm,e}       ──────────────►
//!                                          s1 journal DstPrepared, or
//!                         ◄────────────── PrepareAck{ek} / PrepareReject
//!  s2 journal SrcQuiesced, freeze guest
//!  s3 Transfer{package}   ──────────────►
//!                                          s4 verify binding/integrity/
//!                         ◄────────────── epoch; VerifyAck{ok}
//!  s5 Commit              ──────────────►
//!                                          s6 journal DstCommitted,
//!                         ◄────────────── adopt; CommitAck
//!  s7 journal SrcReleased, scrub local copy
//! ```
//!
//! Every message carries (`vm`, `epoch`) so each side can match it
//! against its durable journal, plus the attempt's cluster-wide
//! `trace` id (minted once at the source by
//! `vtpm_telemetry::migration_trace_id`), so spans and audit records
//! on source, destination, and fabric stitch into one causal trace;
//! the sealed package additionally binds the (vm, epoch) pair *inside*
//! the encrypted payload (see [`encode_payload`]/[`decode_payload`]),
//! so an attacker cannot re-envelope an old package's ciphertext under
//! a fresh epoch — the digest covers the header.
//!
//! Decoding is hardened the same way as `MigrationPackage::decode`:
//! untrusted bytes yield `None`, never a panic, and trailing garbage is
//! rejected.

use tpm::buffer::{Reader, Writer};

/// A protocol message on the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigMessage {
    /// s0 → destination: propose migrating `vm` at `epoch`.
    Prepare { vm: u32, epoch: u64, trace: u64 },
    /// s1 → source: accepted; seal to this EK (modulus/exponent bytes).
    PrepareAck { vm: u32, epoch: u64, trace: u64, ek_n: Vec<u8>, ek_e: Vec<u8> },
    /// s1 → source: refused (stale/replayed epoch, or vm already here).
    PrepareReject { vm: u32, epoch: u64, trace: u64 },
    /// s3 → destination: the packaged state.
    Transfer { vm: u32, epoch: u64, trace: u64, package: Vec<u8> },
    /// s4 → source: package verified (or not).
    VerifyAck { vm: u32, epoch: u64, trace: u64, ok: bool },
    /// s5 → destination: make it authoritative.
    Commit { vm: u32, epoch: u64, trace: u64 },
    /// s6 → source: adopted; safe to release.
    CommitAck { vm: u32, epoch: u64, trace: u64 },
    /// Either direction: abandon (vm, epoch).
    Abort { vm: u32, epoch: u64, trace: u64 },
}

const TAG_PREPARE: u8 = 1;
const TAG_PREPARE_ACK: u8 = 2;
const TAG_PREPARE_REJECT: u8 = 3;
const TAG_TRANSFER: u8 = 4;
const TAG_VERIFY_ACK: u8 = 5;
const TAG_COMMIT: u8 = 6;
const TAG_COMMIT_ACK: u8 = 7;
const TAG_ABORT: u8 = 8;

fn put_epoch(w: &mut Writer, epoch: u64) {
    w.u32((epoch >> 32) as u32);
    w.u32(epoch as u32);
}

fn get_epoch(r: &mut Reader) -> Option<u64> {
    let hi = r.u32().ok()? as u64;
    let lo = r.u32().ok()? as u64;
    Some(hi << 32 | lo)
}

fn put_u64(w: &mut Writer, v: u64) {
    put_epoch(w, v);
}

fn get_u64(r: &mut Reader) -> Option<u64> {
    get_epoch(r)
}

impl MigMessage {
    /// The (vm, epoch) pair every message carries.
    pub fn key(&self) -> (u32, u64) {
        match *self {
            MigMessage::Prepare { vm, epoch, .. }
            | MigMessage::PrepareAck { vm, epoch, .. }
            | MigMessage::PrepareReject { vm, epoch, .. }
            | MigMessage::Transfer { vm, epoch, .. }
            | MigMessage::VerifyAck { vm, epoch, .. }
            | MigMessage::Commit { vm, epoch, .. }
            | MigMessage::CommitAck { vm, epoch, .. }
            | MigMessage::Abort { vm, epoch, .. } => (vm, epoch),
        }
    }

    /// The causal trace id every message carries (header field, minted
    /// at the source when the attempt began).
    pub fn trace(&self) -> u64 {
        match *self {
            MigMessage::Prepare { trace, .. }
            | MigMessage::PrepareAck { trace, .. }
            | MigMessage::PrepareReject { trace, .. }
            | MigMessage::Transfer { trace, .. }
            | MigMessage::VerifyAck { trace, .. }
            | MigMessage::Commit { trace, .. }
            | MigMessage::CommitAck { trace, .. }
            | MigMessage::Abort { trace, .. } => trace,
        }
    }

    /// Serialize for the fabric.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        let (vm, epoch) = self.key();
        let trace = self.trace();
        let tag = match self {
            MigMessage::Prepare { .. } => TAG_PREPARE,
            MigMessage::PrepareAck { .. } => TAG_PREPARE_ACK,
            MigMessage::PrepareReject { .. } => TAG_PREPARE_REJECT,
            MigMessage::Transfer { .. } => TAG_TRANSFER,
            MigMessage::VerifyAck { .. } => TAG_VERIFY_ACK,
            MigMessage::Commit { .. } => TAG_COMMIT,
            MigMessage::CommitAck { .. } => TAG_COMMIT_ACK,
            MigMessage::Abort { .. } => TAG_ABORT,
        };
        w.u8(tag);
        w.u32(vm);
        put_epoch(&mut w, epoch);
        put_u64(&mut w, trace);
        match self {
            MigMessage::PrepareAck { ek_n, ek_e, .. } => {
                w.sized_u32(ek_n);
                w.sized_u32(ek_e);
            }
            MigMessage::Transfer { package, .. } => {
                w.sized_u32(package);
            }
            MigMessage::VerifyAck { ok, .. } => {
                w.u8(*ok as u8);
            }
            _ => {}
        }
        w.into_vec()
    }

    /// Parse untrusted fabric bytes. `None` on anything malformed,
    /// including trailing bytes.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        let tag = r.u8().ok()?;
        let vm = r.u32().ok()?;
        let epoch = get_epoch(&mut r)?;
        let trace = get_u64(&mut r)?;
        let msg = match tag {
            TAG_PREPARE => MigMessage::Prepare { vm, epoch, trace },
            TAG_PREPARE_ACK => {
                let ek_n = r.sized_u32().ok()?.to_vec();
                let ek_e = r.sized_u32().ok()?.to_vec();
                MigMessage::PrepareAck { vm, epoch, trace, ek_n, ek_e }
            }
            TAG_PREPARE_REJECT => MigMessage::PrepareReject { vm, epoch, trace },
            TAG_TRANSFER => {
                MigMessage::Transfer { vm, epoch, trace, package: r.sized_u32().ok()?.to_vec() }
            }
            TAG_VERIFY_ACK => MigMessage::VerifyAck { vm, epoch, trace, ok: r.u8().ok()? != 0 },
            TAG_COMMIT => MigMessage::Commit { vm, epoch, trace },
            TAG_COMMIT_ACK => MigMessage::CommitAck { vm, epoch, trace },
            TAG_ABORT => MigMessage::Abort { vm, epoch, trace },
            _ => return None,
        };
        if r.remaining() != 0 {
            return None;
        }
        Some(msg)
    }
}

/// Wire tag for [`HeartbeatFrame`] — outside the [`MigMessage`] tag
/// space (1–8), so a heartbeat can never be mistaken for a protocol
/// message and vice versa.
const TAG_HEARTBEAT: u8 = 9;

/// A periodic liveness beacon on the fabric's control inbox.
///
/// Each live host emits one per fleet round; the failure detector feeds
/// on the *inter-arrival gaps*, so the only payload that matters is who
/// sent it and when (virtual clock at send time). `seq` makes rounds
/// distinguishable on the wiretap and lets a consumer spot gaps
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatFrame {
    /// The sending host.
    pub host: u32,
    /// The fleet round that triggered this beacon.
    pub seq: u64,
    /// Virtual-clock timestamp at send time.
    pub at_ns: u64,
}

impl HeartbeatFrame {
    /// Serialize for the fabric.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(TAG_HEARTBEAT);
        w.u32(self.host);
        put_u64(&mut w, self.seq);
        put_u64(&mut w, self.at_ns);
        w.into_vec()
    }

    /// Parse untrusted fabric bytes. `None` on anything malformed,
    /// including trailing bytes — same hardening as
    /// [`MigMessage::decode`].
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        if r.u8().ok()? != TAG_HEARTBEAT {
            return None;
        }
        let host = r.u32().ok()?;
        let seq = get_u64(&mut r)?;
        let at_ns = get_u64(&mut r)?;
        if r.remaining() != 0 {
            return None;
        }
        Some(HeartbeatFrame { host, seq, at_ns })
    }
}

/// Wire tag for [`MetricsFrame`] — outside both the [`MigMessage`]
/// space (1–8) and [`HeartbeatFrame`]'s tag (9).
const TAG_METRICS: u8 = 10;

/// One host's telemetry scrape on the fabric's control inbox.
///
/// Carries the host's registry as named sparse histogram encodings
/// (`vtpm_telemetry::Histogram::encode`) plus monotone counters. The
/// series are *cumulative* — the observatory diffs consecutive scrapes
/// into per-window deltas — so a dropped frame loses resolution, never
/// samples. Series bytes are opaque here: the frame hardens its own
/// framing (names, lengths, trailing bytes) and the observatory
/// hardens the histogram payloads on ingest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsFrame {
    /// The scraped host.
    pub host: u32,
    /// Virtual-clock timestamp at scrape time.
    pub at_ns: u64,
    /// `(series name, sparse histogram bytes)` pairs.
    pub series: Vec<(String, Vec<u8>)>,
    /// `(counter name, cumulative value)` pairs.
    pub counters: Vec<(String, u64)>,
}

impl MetricsFrame {
    /// Serialize for the fabric.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(TAG_METRICS);
        w.u32(self.host);
        put_u64(&mut w, self.at_ns);
        w.u32(self.series.len() as u32);
        for (name, bytes) in &self.series {
            w.sized_u32(name.as_bytes());
            w.sized_u32(bytes);
        }
        w.u32(self.counters.len() as u32);
        for (name, value) in &self.counters {
            w.sized_u32(name.as_bytes());
            put_u64(&mut w, *value);
        }
        w.into_vec()
    }

    /// Parse untrusted fabric bytes. `None` on anything malformed,
    /// including non-UTF-8 names and trailing bytes — same hardening
    /// as [`MigMessage::decode`].
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Reader::new(bytes);
        if r.u8().ok()? != TAG_METRICS {
            return None;
        }
        let host = r.u32().ok()?;
        let at_ns = get_u64(&mut r)?;
        let n_series = r.u32().ok()? as usize;
        // Each series costs ≥ 8 framing bytes; a length claiming more
        // entries than the buffer could hold is rejected up front.
        if n_series > bytes.len() / 8 {
            return None;
        }
        let mut series = Vec::with_capacity(n_series);
        for _ in 0..n_series {
            let name = String::from_utf8(r.sized_u32().ok()?.to_vec()).ok()?;
            let payload = r.sized_u32().ok()?.to_vec();
            series.push((name, payload));
        }
        let n_counters = r.u32().ok()? as usize;
        if n_counters > bytes.len() / 8 {
            return None;
        }
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            let name = String::from_utf8(r.sized_u32().ok()?.to_vec()).ok()?;
            let value = get_u64(&mut r)?;
            counters.push((name, value));
        }
        if r.remaining() != 0 {
            return None;
        }
        Some(MetricsFrame { host, at_ns, series, counters })
    }
}

/// Bind (`vm`, `epoch`) inside the migration payload: the package's
/// integrity digest covers this header, so the pair cannot be swapped
/// without breaking verification — a replayed old ciphertext cannot be
/// dressed up as a newer epoch.
pub fn encode_payload(vm: u32, epoch: u64, state: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_capacity(12 + state.len());
    w.u32(vm);
    put_epoch(&mut w, epoch);
    w.bytes(state);
    w.into_vec()
}

/// Split a payload back into its bound header and the vTPM state.
pub fn decode_payload(payload: &[u8]) -> Option<(u32, u64, Vec<u8>)> {
    let mut r = Reader::new(payload);
    let vm = r.u32().ok()?;
    let epoch = get_epoch(&mut r)?;
    let state = r.bytes(r.remaining()).ok()?.to_vec();
    Some((vm, epoch, state))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: u64 = (1 << 63) | (3 << 32) | 1;

    fn all_messages() -> Vec<MigMessage> {
        vec![
            MigMessage::Prepare { vm: 3, epoch: 1, trace: TRACE },
            MigMessage::PrepareAck {
                vm: 3,
                epoch: 1,
                trace: TRACE,
                ek_n: vec![0xAA; 128],
                ek_e: vec![1, 0, 1],
            },
            MigMessage::PrepareReject { vm: 3, epoch: 1, trace: TRACE },
            MigMessage::Transfer { vm: 3, epoch: u64::MAX - 1, trace: u64::MAX, package: vec![0x55; 300] },
            MigMessage::VerifyAck { vm: 3, epoch: 1, trace: TRACE, ok: true },
            MigMessage::VerifyAck { vm: 3, epoch: 1, trace: TRACE, ok: false },
            MigMessage::Commit { vm: 3, epoch: 1, trace: TRACE },
            MigMessage::CommitAck { vm: 3, epoch: 1, trace: TRACE },
            MigMessage::Abort { vm: 3, epoch: 1, trace: TRACE },
        ]
    }

    #[test]
    fn wire_roundtrip_every_variant() {
        for m in all_messages() {
            let bytes = m.encode();
            assert_eq!(MigMessage::decode(&bytes), Some(m.clone()));
            // The header trace id survives the wire on every variant.
            assert_eq!(MigMessage::decode(&bytes).unwrap().trace(), m.trace());
        }
    }

    #[test]
    fn trailing_and_truncated_bytes_rejected() {
        for m in all_messages() {
            let mut bytes = m.encode();
            bytes.push(0);
            assert_eq!(MigMessage::decode(&bytes), None, "trailing byte accepted");
            bytes.pop();
            for cut in 0..bytes.len() {
                assert!(
                    MigMessage::decode(&bytes[..cut]).is_none(),
                    "truncation to {cut} accepted"
                );
            }
        }
        assert_eq!(MigMessage::decode(&[]), None);
        assert_eq!(MigMessage::decode(&[99, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2]), None);
    }

    #[test]
    fn heartbeat_roundtrip_and_hardening() {
        let hb = HeartbeatFrame { host: 97, seq: u64::MAX - 3, at_ns: 1 << 50 };
        let bytes = hb.encode();
        assert_eq!(HeartbeatFrame::decode(&bytes), Some(hb));
        // Heartbeats and protocol messages live in disjoint tag spaces.
        assert_eq!(MigMessage::decode(&bytes), None);
        for m in all_messages() {
            assert_eq!(HeartbeatFrame::decode(&m.encode()), None);
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(HeartbeatFrame::decode(&trailing), None);
        for cut in 0..bytes.len() {
            assert_eq!(HeartbeatFrame::decode(&bytes[..cut]), None);
        }
    }

    #[test]
    fn metrics_frame_roundtrip_and_hardening() {
        let mf = MetricsFrame {
            host: 42,
            at_ns: 1 << 51,
            series: vec![
                ("total".into(), vec![0u8; 28]),
                ("stage_exec".into(), vec![7u8; 40]),
            ],
            counters: vec![("allowed".into(), u64::MAX - 9), ("denied".into(), 0)],
        };
        let bytes = mf.encode();
        assert_eq!(MetricsFrame::decode(&bytes), Some(mf.clone()));
        // Disjoint from both other control-plane tag spaces.
        assert_eq!(MigMessage::decode(&bytes), None);
        assert_eq!(HeartbeatFrame::decode(&bytes), None);
        assert_eq!(MetricsFrame::decode(&HeartbeatFrame { host: 1, seq: 2, at_ns: 3 }.encode()), None);
        for m in all_messages() {
            assert_eq!(MetricsFrame::decode(&m.encode()), None);
        }
        // Trailing and truncated bytes rejected at every length.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(MetricsFrame::decode(&trailing), None);
        for cut in 0..bytes.len() {
            assert_eq!(MetricsFrame::decode(&bytes[..cut]), None, "cut {cut}");
        }
        // Non-UTF-8 series names rejected: corrupt the first name byte
        // ("total" starts right after its u32 length field).
        let name_at = 1 + 4 + 8 + 4 + 4;
        let mut bad = bytes.clone();
        bad[name_at] = 0xFF;
        assert_eq!(MetricsFrame::decode(&bad), None);
        // An absurd series count cannot allocate.
        let mut huge = MetricsFrame { host: 1, at_ns: 2, series: vec![], counters: vec![] }.encode();
        huge[13..17].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(MetricsFrame::decode(&huge), None);
    }

    #[test]
    fn payload_binds_vm_and_epoch() {
        let p = encode_payload(9, 1 << 40, b"state bytes");
        let (vm, epoch, state) = decode_payload(&p).unwrap();
        assert_eq!((vm, epoch), (9, 1 << 40));
        assert_eq!(state, b"state bytes");
        // Header is part of the bytes the package digest will cover.
        let p2 = encode_payload(9, (1 << 40) + 1, b"state bytes");
        assert_ne!(p, p2);
    }
}
