//! The per-host durable migration journal.
//!
//! Real toolstacks write migration progress to disk *before* acting, so
//! a host that crashes mid-handoff can tell, on restart, which side of
//! each step it was on. This module models that disk: a
//! [`MigrationJournal`] survives the simulated crash of its host
//! (`Cluster::crash_host` rebuilds the manager from mirror frames but
//! keeps the journal), and every protocol decision is journalled before
//! the in-memory action it describes.
//!
//! The journal is also the anti-rollback ground truth: an epoch that
//! appears in *any* record is burned forever on that host —
//! [`MigrationJournal::seen_epoch`] makes replayed prepares and stale
//! packages refusable even after the in-memory protocol state was lost
//! to a crash.

use vtpm::InstanceId;

/// One durable record. `vm` is the cluster-wide VM id; `epoch` the
/// migration epoch the record belongs to (0 = initial placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalRecord {
    /// This host hosts `vm` as local instance `local` (initial
    /// placement at `epoch` 0, or re-created state).
    VmCreated { vm: u32, local: InstanceId, epoch: u64 },
    /// Source side: `vm` frozen for outgoing migration `epoch`.
    SrcQuiesced { vm: u32, epoch: u64 },
    /// Source side: handoff `epoch` committed remotely; local copy
    /// released (scrubbed).
    SrcReleased { vm: u32, epoch: u64 },
    /// Source side: outgoing migration `epoch` abandoned; local copy
    /// stays authoritative. Burns the epoch.
    SrcAborted { vm: u32, epoch: u64 },
    /// Destination side: accepted a prepare for (`vm`, `epoch`).
    DstPrepared { vm: u32, epoch: u64 },
    /// Destination side: incoming migration `epoch` abandoned.
    DstAborted { vm: u32, epoch: u64 },
    /// Destination side: adopted `vm` at `epoch` as local instance
    /// `local`. From here on this host is the authoritative home.
    DstCommitted { vm: u32, epoch: u64, local: InstanceId },
}

impl JournalRecord {
    fn vm(&self) -> u32 {
        match *self {
            JournalRecord::VmCreated { vm, .. }
            | JournalRecord::SrcQuiesced { vm, .. }
            | JournalRecord::SrcReleased { vm, .. }
            | JournalRecord::SrcAborted { vm, .. }
            | JournalRecord::DstPrepared { vm, .. }
            | JournalRecord::DstAborted { vm, .. }
            | JournalRecord::DstCommitted { vm, .. } => vm,
        }
    }

    fn epoch(&self) -> u64 {
        match *self {
            JournalRecord::VmCreated { epoch, .. }
            | JournalRecord::SrcQuiesced { epoch, .. }
            | JournalRecord::SrcReleased { epoch, .. }
            | JournalRecord::SrcAborted { epoch, .. }
            | JournalRecord::DstPrepared { epoch, .. }
            | JournalRecord::DstAborted { epoch, .. }
            | JournalRecord::DstCommitted { epoch, .. } => epoch,
        }
    }
}

/// The durable record list plus the derived views the protocol driver
/// and crash recovery read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationJournal {
    records: Vec<JournalRecord>,
}

impl MigrationJournal {
    /// Empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Durably append `r` (write-ahead: callers journal before acting).
    pub fn append(&mut self, r: JournalRecord) {
        self.records.push(r);
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// The local instance currently hosting `vm` on this host, per the
    /// journal: set by `VmCreated`/`DstCommitted`, cleared by
    /// `SrcReleased`. (`SrcAborted` does not clear it — an abort keeps
    /// the source authoritative.)
    pub fn local_of(&self, vm: u32) -> Option<InstanceId> {
        let mut local = None;
        for r in &self.records {
            match *r {
                JournalRecord::VmCreated { vm: v, local: l, .. }
                | JournalRecord::DstCommitted { vm: v, local: l, .. }
                    if v == vm =>
                {
                    local = Some(l)
                }
                JournalRecord::SrcReleased { vm: v, .. } if v == vm => local = None,
                _ => {}
            }
        }
        local
    }

    /// VMs this journal currently maps to a local instance.
    pub fn mapped_vms(&self) -> Vec<(u32, InstanceId)> {
        let mut vms: Vec<u32> = self.records.iter().map(|r| r.vm()).collect();
        vms.sort_unstable();
        vms.dedup();
        vms.into_iter()
            .filter_map(|vm| self.local_of(vm).map(|l| (vm, l)))
            .collect()
    }

    /// The epoch of an outgoing migration of `vm` that quiesced but has
    /// neither released nor aborted — the state crash recovery must
    /// resolve (and re-freeze, since the quiesce flag itself is
    /// volatile).
    pub fn open_quiesce(&self, vm: u32) -> Option<u64> {
        let mut open = None;
        for r in &self.records {
            match *r {
                JournalRecord::SrcQuiesced { vm: v, epoch } if v == vm => open = Some(epoch),
                JournalRecord::SrcReleased { vm: v, epoch }
                | JournalRecord::SrcAborted { vm: v, epoch }
                    if v == vm && open == Some(epoch) =>
                {
                    open = None
                }
                _ => {}
            }
        }
        open
    }

    /// The epoch of an incoming migration of `vm` that prepared but has
    /// neither committed nor aborted.
    pub fn open_prepare(&self, vm: u32) -> Option<u64> {
        let mut open = None;
        for r in &self.records {
            match *r {
                JournalRecord::DstPrepared { vm: v, epoch } if v == vm => open = Some(epoch),
                JournalRecord::DstCommitted { vm: v, epoch, .. }
                | JournalRecord::DstAborted { vm: v, epoch }
                    if v == vm && open == Some(epoch) =>
                {
                    open = None
                }
                _ => {}
            }
        }
        open
    }

    /// Highest epoch at which this host adopted (or created) `vm`.
    pub fn last_committed_epoch(&self, vm: u32) -> Option<u64> {
        self.records
            .iter()
            .filter_map(|r| match *r {
                JournalRecord::VmCreated { vm: v, epoch, .. }
                | JournalRecord::DstCommitted { vm: v, epoch, .. }
                    if v == vm =>
                {
                    Some(epoch)
                }
                _ => None,
            })
            .max()
    }

    /// Whether any record mentions (`vm`, `epoch`) — the burned-epoch
    /// check behind anti-rollback.
    pub fn seen_epoch(&self, vm: u32, epoch: u64) -> bool {
        self.records
            .iter()
            .any(|r| r.vm() == vm && r.epoch() == epoch)
    }

    /// The lowest epoch strictly above every epoch this host has seen
    /// for `vm` — what the source proposes for its next outgoing
    /// migration.
    pub fn next_epoch(&self, vm: u32) -> u64 {
        self.records
            .iter()
            .filter(|r| r.vm() == vm)
            .map(|r| r.epoch())
            .max()
            .map_or(1, |e| e + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_follows_create_commit_release() {
        let mut j = MigrationJournal::new();
        j.append(JournalRecord::VmCreated { vm: 7, local: 3, epoch: 0 });
        assert_eq!(j.local_of(7), Some(3));
        assert_eq!(j.mapped_vms(), vec![(7, 3)]);
        j.append(JournalRecord::SrcQuiesced { vm: 7, epoch: 1 });
        assert_eq!(j.open_quiesce(7), Some(1));
        j.append(JournalRecord::SrcReleased { vm: 7, epoch: 1 });
        assert_eq!(j.local_of(7), None);
        assert_eq!(j.open_quiesce(7), None);
        assert!(j.mapped_vms().is_empty());
        // Coming back later (epoch 4, new local id).
        j.append(JournalRecord::DstCommitted { vm: 7, epoch: 4, local: 9 });
        assert_eq!(j.local_of(7), Some(9));
        assert_eq!(j.last_committed_epoch(7), Some(4));
    }

    #[test]
    fn abort_keeps_source_authoritative_but_burns_epoch() {
        let mut j = MigrationJournal::new();
        j.append(JournalRecord::VmCreated { vm: 1, local: 2, epoch: 0 });
        j.append(JournalRecord::SrcQuiesced { vm: 1, epoch: 1 });
        j.append(JournalRecord::SrcAborted { vm: 1, epoch: 1 });
        assert_eq!(j.local_of(1), Some(2));
        assert_eq!(j.open_quiesce(1), None);
        assert!(j.seen_epoch(1, 1));
        assert_eq!(j.next_epoch(1), 2);
    }

    #[test]
    fn prepare_views_mirror_quiesce_views() {
        let mut j = MigrationJournal::new();
        assert_eq!(j.next_epoch(5), 1, "fresh vm starts at epoch 1");
        j.append(JournalRecord::DstPrepared { vm: 5, epoch: 3 });
        assert_eq!(j.open_prepare(5), Some(3));
        j.append(JournalRecord::DstAborted { vm: 5, epoch: 3 });
        assert_eq!(j.open_prepare(5), None);
        assert!(j.seen_epoch(5, 3));
        assert_eq!(j.last_committed_epoch(5), None, "an aborted prepare never adopted");
        j.append(JournalRecord::DstPrepared { vm: 5, epoch: 4 });
        j.append(JournalRecord::DstCommitted { vm: 5, epoch: 4, local: 1 });
        assert_eq!(j.open_prepare(5), None);
        assert_eq!(j.last_committed_epoch(5), Some(4));
        assert_eq!(j.next_epoch(5), 5);
    }
}
