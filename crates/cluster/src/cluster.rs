//! N simulated hosts, the migration protocol driver, and the
//! placement/rebalance layer.
//!
//! ## Exactly-once
//!
//! The invariant the whole module is built around: **at every point, a
//! VM's vTPM is runnable on at most one host, and at rest on exactly
//! one**. "Runnable" means a host's durable journal maps the VM to a
//! local instance, the instance is live in its manager, and it is not
//! quiesced. The protocol enforces it with:
//!
//! * **quiesce before transfer** — the source freezes the instance
//!   (journalled, then flagged) before the state leaves the host, so
//!   the shipped snapshot can never diverge from a still-serving copy;
//! * **commit before release** — the destination adopts (mirror-backed)
//!   and journals `DstCommitted` before the source journals
//!   `SrcReleased` and scrubs, so the moment of handoff is the commit
//!   record, and a crash on either side leaves the journals able to
//!   prove which side owns the VM;
//! * **epoch anti-rollback** — every attempt carries a migration epoch
//!   above everything either journal has seen for that VM; a replayed
//!   prepare or package re-presents a burned epoch and is refused.
//!
//! Crash recovery ([`Cluster::recover_host`]) rebuilds a host's manager
//! from its mirror frames, then replays the journal over it: re-freeze
//! VMs with an open outgoing quiesce (the flag itself is volatile —
//! skipping this is the classic two-hosts bug: a recovered source would
//! silently serve a VM whose state is mid-flight), and scrub orphan
//! instances the journal does not map (an adopt that crashed before its
//! commit record). [`Cluster::resolve`] then settles any in-doubt
//! attempt by reading both journals — the model's stand-in for the
//! toolstack control plane, which (unlike the lossy fabric) is assumed
//! reliable.

use std::collections::HashMap;
use std::sync::Arc;

use tpm_crypto::bignum::BigUint;
use tpm_crypto::drbg::Drbg;
use tpm_crypto::rsa::RsaPublicKey;
use vtpm::migration::{self, MigrationPackage};
use vtpm::{Envelope, InstanceId, ManagerConfig, MirrorMode, Platform, ResponseEnvelope, VtpmInstance};
use vtpm_ac::{AuditLog, AuditOutcome, MigrationStage};
use vtpm_telemetry::{
    migration_trace_id, MigrationOutcome, MigrationSpanRecord, MigrationTelemetry,
    DENY_REJECTED_STALE,
};
use workload::trace::{apply_to_tpm, TraceEvent};
use xen_sim::{DomainId, Result as XenResult, VirtualClock};

use crate::fabric::Fabric;
use crate::journal::{JournalRecord, MigrationJournal};
use crate::protocol::{decode_payload, encode_payload, HeartbeatFrame, MetricsFrame, MigMessage};

/// One decoded frame off the fabric's control inbox — the union the
/// fleet controller drains so heartbeats and telemetry scrapes share
/// one ordered channel without eating each other.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlFrame {
    /// A liveness beacon for the failure detector.
    Heartbeat(HeartbeatFrame),
    /// A telemetry scrape for the observatory.
    Metrics(MetricsFrame),
}

/// Modelled cost of OAEP-encrypting the session key to the destination
/// EK (public-key op, done in Dom0 software).
///
/// Calibrated against the optimized `tpm-crypto` floor (see EXPERIMENTS.md
/// R-C1): an RSA-1024 public op measures ~13 µs, so 250 µs keeps the
/// same ~20x safety margin over measured software cost that the pre-PR-7
/// constants carried over the unoptimized code.
pub const RSA_SEAL_NS: u64 = 250_000;
/// Modelled cost of unwrapping the session key inside the destination's
/// hardware TPM (private-key op on a slow discrete chip). Recalibrated
/// with the R-C1 floor the same way: the optimized CRT private op
/// measures ~120–300 µs in Dom0 software; a discrete chip is slower but
/// no longer plausibly 6 ms against this floor, so the model charges
/// 2.5 ms.
pub const RSA_OPEN_NS: u64 = 2_500_000;
/// Modelled AES-CTR cost per byte (each direction). The pipelined
/// T-table CTR measures ~3.5 ns/byte software; 2 ns/byte models the
/// destination's bulk-decrypt engine and is unchanged from PR 4.
pub const SYM_BYTE_NS: u64 = 2;
/// Modelled cost of pausing the guest's vTPM device (quiesce).
pub const QUIESCE_NS: u64 = 50_000;

/// Guest domains are mapped as `VM_DOMAIN_BASE + vm` on every host.
pub const VM_DOMAIN_BASE: u32 = 100;

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated hosts.
    pub hosts: usize,
    /// Ship sealed (destination-bound) packages; `false` is the
    /// baseline cleartext protocol.
    pub sealed: bool,
    /// Mirror mode for every host's manager.
    pub mirror_mode: MirrorMode,
    /// Dom0 frame budget per host.
    pub frames_per_host: usize,
    /// NV budget per vTPM (the knob benchmarks use to grow state size).
    pub nv_budget: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            hosts: 3,
            sealed: true,
            mirror_mode: MirrorMode::Encrypted,
            frames_per_host: 4096,
            nv_budget: 32 * 1024,
        }
    }
}

/// Volatile destination-side state of one incoming migration. Lives in
/// host memory only — a crash wipes it, and recovery must re-derive
/// everything it needs from the journal.
struct Inbound {
    /// Verified plaintext payload, held between verify and commit.
    verified: Option<Vec<u8>>,
}

/// One simulated host: a full [`Platform`] plus its durable migration
/// journal and hash-chained audit log.
pub struct ClusterHost {
    /// The platform (hypervisor, hardware TPM, vTPM manager).
    pub platform: Platform,
    /// Durable migration journal (survives crashes).
    pub journal: MigrationJournal,
    /// This host's AC4 audit log; migration stages are chained into it.
    pub audit: AuditLog,
    inbound: HashMap<(u32, u64), Inbound>,
}

impl ClusterHost {
    fn committed_at(&self, vm: u32, epoch: u64) -> bool {
        self.journal
            .records()
            .iter()
            .any(|r| matches!(*r, JournalRecord::DstCommitted { vm: v, epoch: e, .. } if v == vm && e == epoch))
    }
}

/// How a completed migration attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateOutcome {
    /// The VM now runs on the destination.
    Committed,
    /// The attempt aborted; the source still runs the VM.
    Aborted,
    /// The destination refused the epoch (burned by an earlier attempt);
    /// retry with a fresh epoch.
    RejectedStale,
}

/// Typed failures of cluster-level placement operations. Fleet-scale
/// callers (the rebalancer in particular) hit these programmatically —
/// a zero-host fleet is an input, not a bug — so they must not panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// The operation needs at least one joined host.
    NoHosts,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoHosts => write!(f, "cluster has no hosts"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Source-side protocol phase of a [`MigrationRun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Proposed,
    Quiesced,
    TransferSent,
    CommitSent,
    Released,
    Rejected,
    Aborted,
}

/// One in-flight migration attempt, driven step by step so the chaos
/// matrix can crash either side after any step. The run holds the
/// *source's volatile* protocol state — abandoning it (source crash)
/// models exactly the loss a real toolstack daemon suffers; the
/// journals keep what matters.
pub struct MigrationRun {
    /// Cluster-wide VM id being moved.
    pub vm: u32,
    /// Source host index.
    pub src: usize,
    /// Destination host index.
    pub dst: usize,
    /// The attempt's migration epoch.
    pub epoch: u64,
    /// Cluster-wide causal trace id (minted from `(vm, epoch)` at
    /// `begin_migration`, carried in every wire frame, and recorded as
    /// the `request_id` of both hosts' migration audit entries).
    pub trace: u64,
    local: InstanceId,
    phase: Phase,
    step: usize,
    dst_ek: Option<RsaPublicKey>,
    start_ns: u64,
    step_ns: [u64; 8],
    quiesce_at_ns: Option<u64>,
    state_bytes: u64,
    package_bytes: u64,
}

impl MigrationRun {
    /// Steps completed so far (0..=8).
    pub fn steps_done(&self) -> usize {
        self.step
    }

    /// Virtual-clock instant the guest froze, if the run got that far.
    /// Concurrent drivers use it together with
    /// [`Cluster::commit_time`] to attribute per-attempt downtime.
    pub fn quiesced_at_ns(&self) -> Option<u64> {
        self.quiesce_at_ns
    }

    /// Total protocol steps.
    pub const STEPS: usize = 8;
}

/// The cluster: hosts + fabric + shared clock + placement.
pub struct Cluster {
    /// The simulated hosts.
    pub hosts: Vec<ClusterHost>,
    /// The message fabric joining them.
    pub fabric: Fabric,
    /// Cluster-wide virtual clock (fabric latency, crypto costs,
    /// downtime measurement all charge here).
    pub clock: Arc<VirtualClock>,
    telemetry: MigrationTelemetry,
    cfg: ClusterConfig,
    seed: Vec<u8>,
    next_vm: u32,
    seqs: HashMap<u32, u64>,
    commit_ns: HashMap<(u32, u64), u64>,
}

impl Cluster {
    /// Boot `cfg.hosts` platforms from `seed` and join them.
    pub fn new(seed: &[u8], cfg: ClusterConfig) -> XenResult<Self> {
        let clock = Arc::new(VirtualClock::new());
        let mut hosts = Vec::with_capacity(cfg.hosts);
        for h in 0..cfg.hosts {
            hosts.push(Self::boot_host(seed, &cfg, h)?);
        }
        Ok(Cluster {
            fabric: Fabric::new(cfg.hosts, Arc::clone(&clock)),
            clock,
            hosts,
            telemetry: MigrationTelemetry::new(),
            cfg,
            seed: seed.to_vec(),
            next_vm: 0,
            seqs: HashMap::new(),
            commit_ns: HashMap::new(),
        })
    }

    fn boot_host(seed: &[u8], cfg: &ClusterConfig, h: usize) -> XenResult<ClusterHost> {
        let host_seed = [seed, b"/host/", &(h as u32).to_be_bytes()].concat();
        let platform = Platform::with_config(
            &host_seed,
            cfg.frames_per_host,
            ManagerConfig {
                mirror_mode: cfg.mirror_mode,
                vtpm_config: tpm::TpmConfig { nv_budget: cfg.nv_budget, ..Default::default() },
                ..Default::default()
            },
            true,
        )?;
        Ok(ClusterHost {
            platform,
            journal: MigrationJournal::new(),
            audit: AuditLog::new(),
            inbound: HashMap::new(),
        })
    }

    /// Join a freshly-booted host to the running cluster (host-join
    /// churn). The platform seed is derived exactly as in
    /// [`Cluster::new`], so a cluster grown to N hosts is
    /// byte-identical to one born with N. Returns the new host index.
    pub fn add_host(&mut self) -> XenResult<usize> {
        let h = self.hosts.len();
        // Wire frames carry the sender index in one byte.
        assert!(h < 256, "fabric framing caps the fleet at 256 hosts");
        let host = Self::boot_host(&self.seed, &self.cfg, h)?;
        self.hosts.push(host);
        let joined = self.fabric.add_host();
        debug_assert_eq!(joined, h);
        Ok(h)
    }

    /// Cluster-wide migration metrics.
    pub fn telemetry(&self) -> &MigrationTelemetry {
        &self.telemetry
    }

    /// The construction parameters.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Create a VM on the least-loaded host; returns its cluster-wide id.
    pub fn create_vm(&mut self) -> XenResult<u32> {
        let host = (0..self.hosts.len())
            .min_by_key(|&h| self.hosts[h].journal.mapped_vms().len())
            .expect("cluster has hosts");
        let vm = self.next_vm;
        self.next_vm += 1;
        let local = self.hosts[host].platform.manager.create_instance()?;
        self.hosts[host]
            .journal
            .append(JournalRecord::VmCreated { vm, local, epoch: 0 });
        self.seqs.insert(vm, 0);
        Ok(vm)
    }

    /// VM ids created so far.
    pub fn vms(&self) -> Vec<u32> {
        (0..self.next_vm).collect()
    }

    /// Hosts on which `vm` is *runnable*: journal-mapped, instance live,
    /// not quiesced. The exactly-once invariant says this has length 1
    /// at rest and never exceeds 1.
    pub fn runnable_hosts(&self, vm: u32) -> Vec<usize> {
        (0..self.hosts.len())
            .filter(|&h| {
                let host = &self.hosts[h];
                match host.journal.local_of(vm) {
                    Some(local) => {
                        host.platform.manager.instance_ids().contains(&local)
                            && host.platform.manager.is_quiesced(local) != Some(true)
                    }
                    None => false,
                }
            })
            .collect()
    }

    /// The host whose journal currently maps `vm` (runnable or frozen).
    pub fn home_of(&self, vm: u32) -> Option<usize> {
        (0..self.hosts.len()).find(|&h| self.hosts[h].journal.local_of(vm).is_some())
    }

    /// Run `f` against `vm`'s live instance, wherever it is. Prefers the
    /// runnable copy: while a migration is in doubt (destination committed,
    /// source quiesced but not yet released) two hosts map the VM, and the
    /// copy that serves guest traffic is the runnable one — reading the
    /// frozen source there would observe stale state.
    pub fn with_vm<R>(&self, vm: u32, f: impl FnOnce(&mut VtpmInstance) -> R) -> Option<R> {
        let h = match self.runnable_hosts(vm).first() {
            Some(&h) => h,
            None => self.home_of(vm)?,
        };
        let local = self.hosts[h].journal.local_of(vm)?;
        self.hosts[h].platform.manager.with_instance(local, f)
    }

    /// Drive one workload event at `vm`. Wire events go through the
    /// manager's guest request path (and bounce with `NoInstance` while
    /// the VM is quiesced — the migration blackout the downtime
    /// histogram measures); toolstack events use `with_instance`.
    /// Returns `false` if the VM was not runnable anywhere.
    pub fn apply_event(&mut self, vm: u32, event: &TraceEvent) -> bool {
        let hosts = self.runnable_hosts(vm);
        assert!(hosts.len() <= 1, "vm {vm} runnable on {hosts:?} — exactly-once violated");
        let Some(&h) = hosts.first() else { return false };
        let local = self.hosts[h].journal.local_of(vm).expect("runnable implies mapped");
        if event.is_toolstack() {
            self.hosts[h]
                .platform
                .manager
                .with_instance(local, |i| apply_to_tpm(&mut i.tpm, event))
                .is_some()
        } else {
            let seq = self.seqs.entry(vm).or_insert(0);
            *seq += 1;
            let env = Envelope {
                domain: VM_DOMAIN_BASE + vm,
                instance: local,
                seq: *seq,
                locality: 0,
                tag: None,
                command: event.wire_command().expect("wire event"),
            };
            let resp = self.hosts[h]
                .platform
                .manager
                .handle(DomainId(VM_DOMAIN_BASE + vm), &env.encode());
            ResponseEnvelope::decode(&resp).is_ok()
        }
    }

    fn frame(from: usize, msg: &MigMessage) -> Vec<u8> {
        let mut f = vec![from as u8];
        f.extend_from_slice(&msg.encode());
        f
    }

    fn unframe(bytes: &[u8]) -> Option<(usize, MigMessage)> {
        let (&from, rest) = bytes.split_first()?;
        Some((from as usize, MigMessage::decode(rest)?))
    }

    /// Chain a migration stage into `host`'s audit log under the
    /// attempt's causal trace id — the hash chain covers `trace`, so
    /// both hosts' logs join the cluster-wide trace through the same
    /// `request_id` field per-request entries use.
    fn audit_stage(
        &self,
        host: usize,
        peer: usize,
        vm: u32,
        epoch: u64,
        trace: u64,
        stage: MigrationStage,
    ) {
        self.hosts[host].audit.record(
            self.clock.now_ns(),
            trace,
            peer as u32,
            vm,
            epoch as u32,
            AuditOutcome::Migration(stage),
        );
    }

    /// Surface a stale/replayed-epoch refusal on `host`'s per-reason
    /// deny counters (`rejected-stale` slot) without touching the
    /// request-conservation counters — no guest span exists for a
    /// protocol refusal.
    fn note_stale_deny(&self, host: usize) {
        if let Some(t) = self.hosts[host].platform.manager.telemetry() {
            t.note_protocol_deny(DENY_REJECTED_STALE);
        }
    }

    /// Emit `host`'s periodic liveness beacon onto the fabric's control
    /// inbox (same wire model and fault hooks as protocol traffic).
    /// The failure detector feeds on the arrival gaps of these frames.
    pub fn send_heartbeat(&mut self, host: usize, seq: u64) {
        let hb =
            HeartbeatFrame { host: host as u32, seq, at_ns: self.clock.now_ns() };
        let mut f = vec![host as u8];
        f.extend_from_slice(&hb.encode());
        self.fabric.send_control(f);
    }

    /// Drain the control inbox into decoded heartbeats, in arrival
    /// order. Garbage frames are dropped (hardened decode, no panic).
    ///
    /// Heartbeat-only view of [`Cluster::recv_control_frames`]: any
    /// metrics frames in the inbox are *discarded*. Callers running the
    /// observatory must use `recv_control_frames` so scrapes are not
    /// eaten.
    pub fn recv_heartbeats(&mut self) -> Vec<HeartbeatFrame> {
        self.recv_control_frames()
            .into_iter()
            .filter_map(|f| match f {
                ControlFrame::Heartbeat(hb) => Some(hb),
                ControlFrame::Metrics(_) => None,
            })
            .collect()
    }

    /// Drain the control inbox into decoded control-plane frames
    /// (heartbeats and telemetry scrapes), in arrival order. Garbage
    /// frames are dropped (hardened decode, no panic).
    pub fn recv_control_frames(&mut self) -> Vec<ControlFrame> {
        let mut out = Vec::new();
        while let Some(bytes) = self.fabric.recv_control() {
            let Some((_, rest)) = bytes.split_first() else { continue };
            if let Some(hb) = HeartbeatFrame::decode(rest) {
                out.push(ControlFrame::Heartbeat(hb));
            } else if let Some(mf) = MetricsFrame::decode(rest) {
                out.push(ControlFrame::Metrics(mf));
            }
        }
        out
    }

    /// Snapshot `host`'s telemetry registry into a [`MetricsFrame`]:
    /// every histogram series as its sparse wire encoding plus the
    /// monotone counters, stamped with the virtual clock. Series are
    /// cumulative; the observatory diffs consecutive frames. Returns
    /// `None` if the host's manager runs without a registry.
    pub fn metrics_frame(&self, host: usize) -> Option<MetricsFrame> {
        let t = self.hosts[host].platform.manager.telemetry()?;
        let mut series = Vec::new();
        t.visit_histograms(|name, h| series.push((name.to_string(), h.encode())));
        let mut counters = Vec::new();
        t.visit_counters(|name, v| counters.push((name.to_string(), v)));
        Some(MetricsFrame { host: host as u32, at_ns: self.clock.now_ns(), series, counters })
    }

    /// Emit `host`'s telemetry scrape onto the fabric's control inbox
    /// (same wire model, virtual-time charges, and fault hooks as all
    /// other control traffic). No-op for hosts without a registry.
    pub fn send_metrics(&mut self, host: usize) {
        if let Some(mf) = self.metrics_frame(host) {
            let mut f = vec![host as u8];
            f.extend_from_slice(&mf.encode());
            self.fabric.send_control(f);
        }
    }

    /// When the destination journalled `DstCommitted` for this attempt
    /// (virtual clock), if it did — the downtime endpoint concurrent
    /// drivers pair with [`MigrationRun::quiesced_at_ns`].
    pub fn commit_time(&self, vm: u32, epoch: u64) -> Option<u64> {
        self.commit_ns.get(&(vm, epoch)).copied()
    }

    /// Begin migrating `vm` to `dst`. `None` if the VM has no live home
    /// or is already on `dst`.
    pub fn begin_migration(&mut self, vm: u32, dst: usize) -> Option<MigrationRun> {
        self.begin_migration_from(vm, dst, 0)
    }

    /// [`Cluster::begin_migration`] with an epoch floor: the attempt's
    /// epoch is at least `epoch_floor`. Concurrent drivers pass the
    /// highest epoch they already have in flight for this VM plus one,
    /// so a double-drive never mints the same epoch twice — the
    /// journals only learn an epoch once it quiesces or prepares, which
    /// is too late to keep two *simultaneous* proposals apart.
    pub fn begin_migration_from(
        &mut self,
        vm: u32,
        dst: usize,
        epoch_floor: u64,
    ) -> Option<MigrationRun> {
        let src = self.home_of(vm)?;
        if src == dst {
            return None;
        }
        let local = self.hosts[src].journal.local_of(vm)?;
        if !self.hosts[src].platform.manager.instance_ids().contains(&local) {
            return None;
        }
        let epoch = self.hosts[src].journal.next_epoch(vm).max(epoch_floor);
        self.telemetry.note_started();
        Some(MigrationRun {
            vm,
            src,
            dst,
            epoch,
            trace: migration_trace_id(vm, epoch),
            local,
            phase: Phase::Proposed,
            step: 0,
            dst_ek: None,
            start_ns: self.clock.now_ns(),
            step_ns: [0; 8],
            quiesce_at_ns: None,
            state_bytes: 0,
            package_bytes: 0,
        })
    }

    /// Execute the next protocol step. Returns `true` while the run has
    /// more steps. The step layout (source-driven; destination work is
    /// message-driven inside [`Cluster::pump_host`]):
    ///
    /// 0. source sends `Prepare`
    /// 1. destination pumps (journal `DstPrepared`, ack with its EK)
    /// 2. source pumps (journal `SrcQuiesced`, freeze the instance)
    /// 3. source packages + sends `Transfer`
    /// 4. destination pumps (open, verify binding/integrity/epoch)
    /// 5. source pumps (`VerifyAck` → send `Commit`)
    /// 6. destination pumps (adopt, journal `DstCommitted`, ack)
    /// 7. source pumps (`CommitAck` → journal `SrcReleased`, scrub)
    pub fn step(&mut self, run: &mut MigrationRun) -> bool {
        if run.step >= MigrationRun::STEPS || matches!(run.phase, Phase::Rejected | Phase::Aborted)
        {
            return false;
        }
        let t0 = self.clock.now_ns();
        match run.step {
            0 => {
                self.fabric.send(
                    run.dst,
                    Self::frame(
                        run.src,
                        &MigMessage::Prepare { vm: run.vm, epoch: run.epoch, trace: run.trace },
                    ),
                );
            }
            1 | 4 | 6 => self.pump_host(run.dst),
            2 => self.src_pump_prepare(run),
            3 => self.src_transfer(run),
            5 => self.src_pump_verify(run),
            7 => self.src_pump_commit_ack(run),
            _ => unreachable!(),
        }
        run.step_ns[run.step] = self.clock.now_ns() - t0;
        run.step += 1;
        run.step < MigrationRun::STEPS && !matches!(run.phase, Phase::Rejected | Phase::Aborted)
    }

    /// Drain `host`'s inbox, handling destination-side protocol
    /// messages. Source-side messages (acks) are left for the run
    /// driving them; unknown or stale frames are discarded.
    pub fn pump_host(&mut self, host: usize) {
        let mut acks: Vec<Vec<u8>> = Vec::new();
        while let Some(bytes) = self.fabric.recv(host) {
            let Some((from, msg)) = Self::unframe(&bytes) else { continue };
            // The destination records the trace id it saw on the wire,
            // not a locally re-derived one — exactly as a real tracing
            // header propagates.
            match msg {
                MigMessage::Prepare { vm, epoch, trace } => {
                    self.dst_prepare(host, from, vm, epoch, trace)
                }
                MigMessage::Transfer { vm, epoch, trace, package } => {
                    self.dst_transfer(host, from, vm, epoch, trace, &package)
                }
                MigMessage::Commit { vm, epoch, trace } => {
                    self.dst_commit(host, from, vm, epoch, trace)
                }
                MigMessage::Abort { vm, epoch, trace } => self.dst_abort(host, vm, epoch, trace),
                // Source-side ack: not ours to consume.
                _ => acks.push(bytes),
            }
        }
        // Re-queue acks in arrival order for the run's own pump.
        for bytes in acks {
            self.requeue(host, bytes);
        }
    }

    fn requeue(&mut self, host: usize, bytes: Vec<u8>) {
        // Direct inbox append without re-charging wire cost.
        self.fabric.requeue(host, bytes);
    }

    fn dst_prepare(&mut self, host: usize, from: usize, vm: u32, epoch: u64, trace: u64) {
        let stale = {
            let h = &self.hosts[host];
            if h.journal.open_prepare(vm) == Some(epoch) {
                // Duplicate of an accepted prepare: idempotent re-ack.
                let ek = h.platform.hw_ek_public();
                self.fabric.send(
                    from,
                    Self::frame(
                        host,
                        &MigMessage::PrepareAck {
                            vm,
                            epoch,
                            trace,
                            ek_n: ek.n.to_bytes_be(),
                            ek_e: ek.e.to_bytes_be(),
                        },
                    ),
                );
                return;
            }
            h.journal.seen_epoch(vm, epoch)
                || h.journal.local_of(vm).is_some()
                || h.journal.last_committed_epoch(vm).is_some_and(|c| epoch <= c)
        };
        if stale {
            self.audit_stage(host, from, vm, epoch, trace, MigrationStage::RejectedStale);
            self.note_stale_deny(host);
            self.fabric
                .send(from, Self::frame(host, &MigMessage::PrepareReject { vm, epoch, trace }));
            return;
        }
        self.hosts[host].journal.append(JournalRecord::DstPrepared { vm, epoch });
        self.hosts[host].inbound.insert((vm, epoch), Inbound { verified: None });
        self.audit_stage(host, from, vm, epoch, trace, MigrationStage::Prepared);
        let ek = self.hosts[host].platform.hw_ek_public();
        self.fabric.send(
            from,
            Self::frame(
                host,
                &MigMessage::PrepareAck {
                    vm,
                    epoch,
                    trace,
                    ek_n: ek.n.to_bytes_be(),
                    ek_e: ek.e.to_bytes_be(),
                },
            ),
        );
    }

    fn dst_transfer(
        &mut self,
        host: usize,
        from: usize,
        vm: u32,
        epoch: u64,
        trace: u64,
        package: &[u8],
    ) {
        // Duplicate after a successful verify: idempotent re-ack.
        if self.hosts[host]
            .inbound
            .get(&(vm, epoch))
            .is_some_and(|i| i.verified.is_some())
        {
            self.fabric.send(
                from,
                Self::frame(host, &MigMessage::VerifyAck { vm, epoch, trace, ok: true }),
            );
            return;
        }
        if self.hosts[host].journal.open_prepare(vm) != Some(epoch) {
            // Replayed package for a closed or never-opened prepare —
            // the anti-rollback refusal.
            self.audit_stage(host, from, vm, epoch, trace, MigrationStage::RejectedStale);
            self.note_stale_deny(host);
            self.fabric.send(
                from,
                Self::frame(host, &MigMessage::VerifyAck { vm, epoch, trace, ok: false }),
            );
            return;
        }
        let verdict = MigrationPackage::decode(package).ok().and_then(|pkg| {
            // The private-key unwrap happens inside the destination's
            // hardware TPM; the CTR+digest pass covers the payload.
            // Clear packages pay neither.
            if matches!(pkg, MigrationPackage::Sealed { .. }) {
                self.clock.advance_ns(RSA_OPEN_NS + package.len() as u64 * SYM_BYTE_NS);
            }
            self.hosts[host].platform.open_migration_package(&pkg).ok()
        });
        let ok = match verdict.and_then(|payload| decode_payload(&payload)) {
            // The sealed header must match the wire claim — an old
            // payload cannot be re-dressed as this epoch.
            Some((pvm, pepoch, state)) if pvm == vm && pepoch == epoch => {
                self.hosts[host].inbound.insert((vm, epoch), Inbound { verified: Some(state) });
                self.audit_stage(host, from, vm, epoch, trace, MigrationStage::Verified);
                true
            }
            _ => {
                self.audit_stage(host, from, vm, epoch, trace, MigrationStage::Aborted);
                false
            }
        };
        self.fabric
            .send(from, Self::frame(host, &MigMessage::VerifyAck { vm, epoch, trace, ok }));
    }

    fn dst_commit(&mut self, host: usize, from: usize, vm: u32, epoch: u64, trace: u64) {
        if self.hosts[host].committed_at(vm, epoch) {
            // Duplicate commit: idempotent re-ack.
            self.fabric
                .send(from, Self::frame(host, &MigMessage::CommitAck { vm, epoch, trace }));
            return;
        }
        let plaintext = self.hosts[host]
            .inbound
            .get_mut(&(vm, epoch))
            .and_then(|i| i.verified.take());
        let open = self.hosts[host].journal.open_prepare(vm) == Some(epoch);
        match plaintext {
            Some(state) if open => {
                let reseed =
                    [self.seed.as_slice(), b"/adopt/", &vm.to_be_bytes(), &epoch.to_be_bytes()]
                        .concat();
                let cfg = self.hosts[host].platform.manager.config().vtpm_config.clone();
                // Adopt (durably mirrored) *before* the commit record:
                // a crash in between leaves an orphan the journal does
                // not map, which recovery scrubs — never a committed
                // record with no state behind it.
                let adopted = VtpmInstance::from_state(0, &state, &reseed, cfg)
                    .ok()
                    .and_then(|inst| self.hosts[host].platform.manager.adopt_instance(inst).ok());
                match adopted {
                    Some(local) => {
                        self.hosts[host]
                            .journal
                            .append(JournalRecord::DstCommitted { vm, epoch, local });
                        self.hosts[host].inbound.remove(&(vm, epoch));
                        self.audit_stage(host, from, vm, epoch, trace, MigrationStage::Committed);
                        self.commit_ns.insert((vm, epoch), self.clock.now_ns());
                        self.fabric.send(
                            from,
                            Self::frame(host, &MigMessage::CommitAck { vm, epoch, trace }),
                        );
                    }
                    None => {
                        self.dst_abort(host, vm, epoch, trace);
                        self.fabric
                            .send(from, Self::frame(host, &MigMessage::Abort { vm, epoch, trace }));
                    }
                }
            }
            _ => {
                // No verified plaintext (crash wiped it, or the verify
                // never happened): refuse, close the prepare.
                self.dst_abort(host, vm, epoch, trace);
                self.fabric
                    .send(from, Self::frame(host, &MigMessage::Abort { vm, epoch, trace }));
            }
        }
    }

    fn dst_abort(&mut self, host: usize, vm: u32, epoch: u64, trace: u64) {
        if self.hosts[host].journal.open_prepare(vm) == Some(epoch) {
            self.hosts[host].journal.append(JournalRecord::DstAborted { vm, epoch });
            self.hosts[host].inbound.remove(&(vm, epoch));
            self.audit_stage(host, host, vm, epoch, trace, MigrationStage::Aborted);
        }
    }

    /// Source step 2: consume the prepare response; quiesce on ack.
    fn src_pump_prepare(&mut self, run: &mut MigrationRun) {
        let mut rejected = false;
        self.drain_src(run, |msg, _| match msg {
            MigMessage::PrepareAck { ek_n, ek_e, .. } => Some(RsaPublicKey {
                n: BigUint::from_bytes_be(&ek_n),
                e: BigUint::from_bytes_be(&ek_e),
            }),
            MigMessage::PrepareReject { .. } => {
                rejected = true;
                None
            }
            _ => None,
        })
        .into_iter()
        .for_each(|ek| run.dst_ek = Some(ek));

        if rejected {
            // The destination burned this epoch before we froze
            // anything; journal the abort (burning it here too) so the
            // retry proposes a strictly higher one.
            self.hosts[run.src]
                .journal
                .append(JournalRecord::SrcAborted { vm: run.vm, epoch: run.epoch });
            self.audit_stage(run.src, run.dst, run.vm, run.epoch, run.trace, MigrationStage::Aborted);
            run.phase = Phase::Rejected;
            return;
        }
        if run.dst_ek.is_some() && run.phase == Phase::Proposed {
            // Concurrent-driver arbitration. Quiescing is the source's
            // commit point: whichever attempt journals `SrcQuiesced`
            // first owns the handoff. A later attempt that finds the
            // freeze already held (open quiesce at another epoch), or
            // finds the VM moved away while it was proposing, has lost
            // the race — refuse it down the stale path instead of
            // double-freezing (which would let two transfers export and
            // commit the same VM on two destinations).
            let j = &self.hosts[run.src].journal;
            if j.open_quiesce(run.vm).is_some() || j.local_of(run.vm) != Some(run.local) {
                self.reject_run(run);
                return;
            }
            // Write-ahead: journal the freeze, then flip the flag.
            self.hosts[run.src]
                .journal
                .append(JournalRecord::SrcQuiesced { vm: run.vm, epoch: run.epoch });
            self.hosts[run.src].platform.manager.set_quiesced(run.local, true);
            self.clock.advance_ns(QUIESCE_NS);
            self.audit_stage(run.src, run.dst, run.vm, run.epoch, run.trace, MigrationStage::Quiesced);
            run.quiesce_at_ns = Some(self.clock.now_ns());
            run.phase = Phase::Quiesced;
        } else if run.phase == Phase::Proposed {
            // PrepareAck lost on the fabric: give up before freezing.
            self.abort_run(run);
        }
    }

    /// Source step 3: package the frozen state and ship it.
    fn src_transfer(&mut self, run: &mut MigrationRun) {
        if run.phase != Phase::Quiesced {
            return;
        }
        let Some(state) = self.hosts[run.src].platform.manager.export_instance_state(run.local)
        else {
            self.abort_run(run);
            return;
        };
        run.state_bytes = state.len() as u64;
        let payload = encode_payload(run.vm, run.epoch, &state);
        let package = if self.cfg.sealed {
            let ek = run.dst_ek.as_ref().expect("quiesced implies acked");
            let mut rng = Drbg::new(
                &[
                    self.seed.as_slice(),
                    b"/mig/",
                    &run.vm.to_be_bytes(),
                    &run.epoch.to_be_bytes(),
                ]
                .concat(),
            );
            self.clock.advance_ns(RSA_SEAL_NS + payload.len() as u64 * SYM_BYTE_NS);
            migration::package_sealed(&payload, ek, &mut rng)
        } else {
            migration::package_clear(&payload)
        };
        let encoded = package.encode();
        run.package_bytes = encoded.len() as u64;
        self.audit_stage(run.src, run.dst, run.vm, run.epoch, run.trace, MigrationStage::Transferred);
        self.fabric.send(
            run.dst,
            Self::frame(
                run.src,
                &MigMessage::Transfer {
                    vm: run.vm,
                    epoch: run.epoch,
                    trace: run.trace,
                    package: encoded,
                },
            ),
        );
        run.phase = Phase::TransferSent;
    }

    /// Source step 5: consume the verify response; commit on ok.
    fn src_pump_verify(&mut self, run: &mut MigrationRun) {
        if run.phase != Phase::TransferSent {
            return;
        }
        let mut verdict = None;
        self.drain_src(run, |msg, _| {
            if let MigMessage::VerifyAck { ok, .. } = msg {
                verdict = Some(ok);
            }
            None::<()>
        });
        match verdict {
            Some(true) => {
                self.fabric.send(
                    run.dst,
                    Self::frame(
                        run.src,
                        &MigMessage::Commit { vm: run.vm, epoch: run.epoch, trace: run.trace },
                    ),
                );
                run.phase = Phase::CommitSent;
            }
            // Verification failed, or the ack/transfer was lost: the
            // commit was never sent, so a unilateral abort is safe.
            _ => self.abort_run(run),
        }
    }

    /// Source step 7: consume the commit ack; release on success.
    fn src_pump_commit_ack(&mut self, run: &mut MigrationRun) {
        if run.phase != Phase::CommitSent {
            return;
        }
        let mut acked = false;
        self.drain_src(run, |msg, _| {
            if matches!(msg, MigMessage::CommitAck { .. }) {
                acked = true;
            }
            None::<()>
        });
        if acked {
            self.release_src(run.src, run.dst, run.vm, run.epoch, run.trace);
            run.phase = Phase::Released;
        }
        // No ack: in doubt — the commit may or may not have landed.
        // The run ends undecided and resolve() settles it from the
        // journals; aborting unilaterally here could put the VM on two
        // hosts at once.
    }

    fn release_src(&mut self, src: usize, dst: usize, vm: u32, epoch: u64, trace: u64) {
        // Write-ahead: the release record first, then the scrub — a
        // crash in between leaves an orphan instance recovery scrubs.
        let local = self.hosts[src].journal.local_of(vm);
        self.hosts[src].journal.append(JournalRecord::SrcReleased { vm, epoch });
        if let Some(local) = local {
            let _ = self.hosts[src].platform.manager.destroy_instance(local);
        }
        self.audit_stage(src, dst, vm, epoch, trace, MigrationStage::Released);
    }

    /// Refuse a losing concurrent attempt through the stale path: burn
    /// its epoch on the source (the retry proposes strictly higher),
    /// chain a `RejectedStale` audit stage, bump the per-reason deny
    /// counter, and close the destination's dangling prepare.
    fn reject_run(&mut self, run: &mut MigrationRun) {
        self.hosts[run.src]
            .journal
            .append(JournalRecord::SrcAborted { vm: run.vm, epoch: run.epoch });
        self.audit_stage(
            run.src,
            run.dst,
            run.vm,
            run.epoch,
            run.trace,
            MigrationStage::RejectedStale,
        );
        self.note_stale_deny(run.src);
        self.fabric.send(
            run.dst,
            Self::frame(
                run.src,
                &MigMessage::Abort { vm: run.vm, epoch: run.epoch, trace: run.trace },
            ),
        );
        run.phase = Phase::Rejected;
    }

    fn abort_run(&mut self, run: &mut MigrationRun) {
        self.hosts[run.src]
            .journal
            .append(JournalRecord::SrcAborted { vm: run.vm, epoch: run.epoch });
        if run.quiesce_at_ns.is_some() {
            self.hosts[run.src].platform.manager.set_quiesced(run.local, false);
        }
        self.audit_stage(run.src, run.dst, run.vm, run.epoch, run.trace, MigrationStage::Aborted);
        self.fabric.send(
            run.dst,
            Self::frame(
                run.src,
                &MigMessage::Abort { vm: run.vm, epoch: run.epoch, trace: run.trace },
            ),
        );
        run.phase = Phase::Aborted;
    }

    /// Drain the source inbox, mapping messages that belong to `run`
    /// through `f`. Frames keyed to *other* (vm, epoch) attempts are
    /// put back in arrival order — concurrent drivers share a source's
    /// inbox, so another run's acks may be interleaved with ours and
    /// must survive the pass. Only frames that fail to decode are
    /// discarded. (Epochs are never reused, so a frame matching this
    /// run's key can only belong to this attempt.)
    fn drain_src<R>(
        &mut self,
        run: &MigrationRun,
        mut f: impl FnMut(MigMessage, usize) -> Option<R>,
    ) -> Vec<R> {
        let mut out = Vec::new();
        let mut keep: Vec<Vec<u8>> = Vec::new();
        // Bound the pass by what is queued now: requeued frames must
        // not be re-examined within the same drain.
        for _ in 0..self.fabric.pending(run.src) {
            let Some(bytes) = self.fabric.recv(run.src) else { break };
            match Self::unframe(&bytes) {
                Some((from, msg)) if msg.key() == (run.vm, run.epoch) => {
                    if let Some(r) = f(msg, from) {
                        out.push(r);
                    }
                }
                Some(_) => keep.push(bytes),
                None => {}
            }
        }
        for bytes in keep {
            self.requeue(run.src, bytes);
        }
        out
    }

    /// Settle `vm` after a run ended (normally, in doubt, or by crash):
    /// read every journal — the reliable control plane — and drive both
    /// sides to a consistent rest state. Idempotent.
    pub fn resolve(&mut self, vm: u32) {
        // An open outgoing quiesce: committed remotely → finish the
        // release; otherwise abort and thaw.
        for s in 0..self.hosts.len() {
            let Some(epoch) = self.hosts[s].journal.open_quiesce(vm) else { continue };
            // No run survives to here (recovery path); the trace id is a
            // pure function of (vm, epoch), so re-deriving it yields the
            // exact value the original attempt's wire frames carried.
            let trace = migration_trace_id(vm, epoch);
            let committed_on =
                (0..self.hosts.len()).find(|&d| d != s && self.hosts[d].committed_at(vm, epoch));
            match committed_on {
                Some(d) => self.release_src(s, d, vm, epoch, trace),
                None => {
                    self.hosts[s].journal.append(JournalRecord::SrcAborted { vm, epoch });
                    if let Some(local) = self.hosts[s].journal.local_of(vm) {
                        self.hosts[s].platform.manager.set_quiesced(local, false);
                    }
                    self.audit_stage(s, s, vm, epoch, trace, MigrationStage::Aborted);
                }
            }
        }
        // Dangling incoming prepares (source crashed or its abort was
        // lost): close them so the epochs stay burned but inactive.
        for d in 0..self.hosts.len() {
            if let Some(epoch) = self.hosts[d].journal.open_prepare(vm) {
                self.dst_abort(d, vm, epoch, migration_trace_id(vm, epoch));
            }
        }
    }

    /// Finish a stepped-out run: settle global state and fold the
    /// attempt into telemetry. Returns how it ended.
    pub fn finish_run(&mut self, run: MigrationRun) -> MigrateOutcome {
        self.resolve(run.vm);
        let committed = self.hosts[run.dst].committed_at(run.vm, run.epoch);
        let outcome = if committed {
            MigrateOutcome::Committed
        } else if run.phase == Phase::Rejected {
            MigrateOutcome::RejectedStale
        } else {
            MigrateOutcome::Aborted
        };
        let downtime_ns = if committed {
            let commit = self
                .commit_ns
                .get(&(run.vm, run.epoch))
                .copied()
                .unwrap_or_else(|| self.clock.now_ns());
            commit.saturating_sub(run.quiesce_at_ns.unwrap_or(commit))
        } else {
            0
        };
        let s = &run.step_ns;
        self.telemetry.record(MigrationSpanRecord {
            trace_id: run.trace,
            request_id: run.trace,
            vm: run.vm,
            epoch: run.epoch,
            src_host: run.src as u32,
            dst_host: run.dst as u32,
            sealed: self.cfg.sealed,
            state_bytes: run.state_bytes,
            package_bytes: run.package_bytes,
            start_ns: run.start_ns,
            // prepare, quiesce, transfer, verify, commit, release.
            stage_ns: [s[0] + s[1], s[2], s[3], s[4], s[5] + s[6], s[7]],
            downtime_ns,
            total_ns: self.clock.now_ns().saturating_sub(run.start_ns),
            outcome: match outcome {
                MigrateOutcome::Committed => MigrationOutcome::Committed,
                MigrateOutcome::Aborted => MigrationOutcome::Aborted,
                MigrateOutcome::RejectedStale => MigrationOutcome::RejectedStale,
            },
        });
        outcome
    }

    /// Migrate `vm` to `dst` end to end, retrying (with a fresh epoch)
    /// if the destination rejects a burned epoch left by an earlier
    /// crashed attempt.
    pub fn migrate(&mut self, vm: u32, dst: usize) -> MigrateOutcome {
        let mut last = MigrateOutcome::Aborted;
        for _ in 0..3 {
            let Some(mut run) = self.begin_migration(vm, dst) else { return last };
            while self.step(&mut run) {}
            last = self.finish_run(run);
            if last != MigrateOutcome::RejectedStale {
                return last;
            }
        }
        last
    }

    /// Crash host `h`: its manager, quiesce flags, inbound migration
    /// buffers, and socket inboxes are gone; mirror frames and the
    /// journal (disk) survive. Then recover: rebuild the manager from
    /// the mirror, replay the journal over it (re-freeze open outgoing
    /// quiesces, scrub orphans), ready to serve again.
    pub fn recover_host(&mut self, h: usize) -> XenResult<vtpm::RecoveryReport> {
        self.fabric.crash_host(h);
        self.hosts[h].inbound.clear();
        let report = self.hosts[h].platform.recover_manager()?;
        // Re-assert volatile state the journal proves. A recovered
        // instance comes back *thawed*; skipping the re-freeze would
        // let the source serve a VM whose state is mid-handoff — the
        // two-runnable-copies bug.
        let mapped = self.hosts[h].journal.mapped_vms();
        for &(vm, local) in &mapped {
            if self.hosts[h].journal.open_quiesce(vm).is_some() {
                self.hosts[h].platform.manager.set_quiesced(local, true);
            }
        }
        // Scrub orphans: instances the mirror resurrected but the
        // journal does not map (adopt or release interrupted between
        // state write and record).
        let mapped_locals: Vec<_> = mapped.iter().map(|&(_, l)| l).collect();
        for id in self.hosts[h].platform.manager.instance_ids() {
            if !mapped_locals.contains(&id) {
                let _ = self.hosts[h].platform.manager.destroy_instance(id);
            }
        }
        Ok(report)
    }

    /// One rebalance pass: move VMs from the most- to the least-loaded
    /// host until the spread is ≤ 1. Returns the committed moves, or
    /// [`ClusterError::NoHosts`] on an empty fleet — a reachable input
    /// once hosts join and leave at runtime, so it must not panic.
    pub fn rebalance(&mut self) -> Result<usize, ClusterError> {
        if self.hosts.is_empty() {
            return Err(ClusterError::NoHosts);
        }
        let mut moves = 0;
        for _ in 0..self.next_vm {
            let counts: Vec<usize> = (0..self.hosts.len())
                .map(|h| self.hosts[h].journal.mapped_vms().len())
                .collect();
            let Some((max_h, &max)) =
                counts.iter().enumerate().max_by_key(|&(h, &c)| (c, usize::MAX - h))
            else {
                return Err(ClusterError::NoHosts);
            };
            let Some((min_h, &min)) = counts.iter().enumerate().min_by_key(|&(h, &c)| (c, h))
            else {
                return Err(ClusterError::NoHosts);
            };
            if max - min <= 1 {
                break;
            }
            let Some(&(vm, _)) = self.hosts[max_h].journal.mapped_vms().first() else { break };
            if self.migrate(vm, min_h) == MigrateOutcome::Committed {
                moves += 1;
            } else {
                break;
            }
        }
        Ok(moves)
    }
}
