//! Property tests for the heartbeat wire format: encode∘decode must be
//! the identity, and the decoder must never panic (and must reject
//! truncations and trailing garbage) on hostile bytes.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::proptest;
use vtpm_cluster::HeartbeatFrame;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode ∘ decode == identity for every (host, seq, at_ns).
    #[test]
    fn roundtrip(host in any::<u32>(), seq in any::<u64>(), at_ns in any::<u64>()) {
        let hb = HeartbeatFrame { host, seq, at_ns };
        prop_assert_eq!(HeartbeatFrame::decode(&hb.encode()), Some(hb));
    }

    /// Every strict prefix of a valid frame is rejected, as is the
    /// frame with any trailing byte.
    #[test]
    fn truncation_and_trailing_rejected(
        host in any::<u32>(),
        seq in any::<u64>(),
        at_ns in any::<u64>(),
        tail in any::<u8>(),
    ) {
        let bytes = HeartbeatFrame { host, seq, at_ns }.encode();
        for cut in 0..bytes.len() {
            prop_assert_eq!(HeartbeatFrame::decode(&bytes[..cut]), None);
        }
        let mut trailing = bytes.clone();
        trailing.push(tail);
        prop_assert_eq!(HeartbeatFrame::decode(&trailing), None);
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn decode_never_panics(bytes in vec(any::<u8>(), 0..64)) {
        let _ = HeartbeatFrame::decode(&bytes);
    }
}
