//! # attacks
//!
//! The attacker toolkit for the reproduction's security evaluation
//! (R-T2, R-F5). The abstract's attack — "attackers can retrieve data by
//! CPU and memory dump software" — becomes [`dump::MemoryDump`]; the
//! surrounding scenarios cover the rest of the 2010 Xen vTPM attack
//! surface:
//!
//! | scenario | weakness exercised |
//! |---|---|
//! | [`scenarios::dump_instance_state`] | W3: cleartext resident state |
//! | [`scenarios::ring_sniffing`] | W3: unscrubbed transport pages |
//! | [`scenarios::replay`] | W1: unauthenticated, repeatable envelopes |
//! | [`scenarios::envelope_forgery`] | W1: manager trusts envelope identity |
//! | [`scenarios::xenstore_rebinding`] | W1: mutable XenStore binding |
//! | [`scenarios::privileged_ordinal`] | W2: no command filtering |
//!
//! Every scenario runs unchanged against `vtpm::Platform::baseline()`
//! (all succeed) and `vtpm_ac::SecurePlatform` (all are blocked) — the
//! paper's security claim, reproduced as tests and as the `repro t2`
//! table.

pub mod dump;
pub mod migration_window;
pub mod report;
pub mod scenarios;
pub mod sniff;

pub use dump::{high_entropy_fragments, Hit, MemoryDump, ScanStats};
pub use migration_window::{migration_window_dump, probe_sanity};
pub use report::AttackMatrix;
pub use scenarios::{
    bare_command, dump_instance_state, envelope_forgery, extend_command, privileged_ordinal,
    replay, ring_sniffing, xenstore_rebinding, AttackOutcome,
};
pub use sniff::sniff_envelopes;
