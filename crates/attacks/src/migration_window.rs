//! **A7 — migration-window dump.** The live-migration variant of the
//! memory-dump attack: while a vTPM's state is in flight between hosts,
//! the attacker dumps Dom0-visible RAM on *both* hosts **and** records
//! every byte on the inter-host fabric (the wiretap). The window is the
//! worst moment in the instance's life — its entire state crosses a
//! boundary neither host's runtime protections cover.
//!
//! With clear transfer (the baseline protocol) the wiretapped
//! `Transfer` package *is* the serialized state: the attack succeeds
//! from the fabric alone, hypervisor protections on both ends
//! notwithstanding. With sealed transfer the package is AES-CTR
//! ciphertext under a session key only the destination's hardware TPM
//! can unwrap ([`MigrationPackage::exposes`] finds nothing), so the
//! attacker is left with the host dumps — where the encrypted mirror
//! keeps the state out of Dom0 frames as usual.

use vtpm::migration::MigrationPackage;
use vtpm::InstanceId;
use vtpm_cluster::{Cluster, MigMessage};
use xen_sim::DomainId;

use crate::dump::{high_entropy_fragments, MemoryDump};
use crate::scenarios::AttackOutcome;

/// Run the migration-window dump against `cluster`, moving `vm` to
/// `dst`. The migration is driven to mid-transfer (the packaged state
/// on the wire, not yet verified), the dumps and the wiretap are
/// scanned, and the migration is then completed so the cluster stays
/// usable. Success = any high-entropy fragment of the instance's state
/// recovered from either host's RAM or from the fabric.
pub fn migration_window_dump(cluster: &mut Cluster, vm: u32, dst: usize) -> AttackOutcome {
    let Some(mut run) = cluster.begin_migration(vm, dst) else {
        return AttackOutcome {
            name: "migration-window-dump",
            succeeded: false,
            detail: "vm not migratable".into(),
        };
    };
    // Steps 0..=3: prepare, ack, quiesce, transfer — the package is now
    // in flight (sent, unverified). Freeze the world and attack.
    for _ in 0..4 {
        cluster.step(&mut run);
    }
    let (src, dst) = (run.src, run.dst);
    let local: InstanceId = cluster.hosts[src]
        .journal
        .local_of(vm)
        .expect("mid-migration source still maps the vm");
    let state = cluster.hosts[src]
        .platform
        .manager
        .export_instance_state(local)
        .expect("quiesced instance still exports");
    let probes = high_entropy_fragments(&state, 2);
    let needles: Vec<&[u8]> = probes.iter().map(|p| &state[p.0..p.1]).collect();
    assert!(!needles.is_empty(), "instance state has key material");

    // Surface 1+2: Dom0-visible RAM on both ends of the transfer.
    let mut ram_hits = 0usize;
    for h in [src, dst] {
        let dump = MemoryDump::capture(&cluster.hosts[h].platform.hv, DomainId::DOM0)
            .expect("dom0 can dump");
        ram_hits += dump.scan(&needles).len();
    }

    // Surface 3: everything that crossed the fabric, with the transfer
    // package additionally probed through its own exposure check.
    let mut wire_hits = 0usize;
    for frame in cluster.fabric.wiretap() {
        let Some((_, rest)) = frame.split_first() else { continue };
        if let Some(MigMessage::Transfer { package, .. }) = MigMessage::decode(rest) {
            if let Ok(pkg) = MigrationPackage::decode(&package) {
                wire_hits += needles.iter().filter(|n| pkg.exposes(n)).count();
            }
        }
        wire_hits += needles
            .iter()
            .filter(|n| frame.windows(n.len()).any(|w| w == **n))
            .count();
    }

    // Let the handoff finish; the attack must not be what breaks it.
    while cluster.step(&mut run) {}
    cluster.finish_run(run);

    AttackOutcome {
        name: "migration-window-dump",
        succeeded: ram_hits + wire_hits > 0,
        detail: format!(
            "{ram_hits} hits in host RAM, {wire_hits} on the fabric ({} probes)",
            needles.len()
        ),
    }
}

/// Sanity-check the probe machinery: a clear package must expose every
/// high-entropy fragment of the state it wraps. Keeps the "sealed
/// leaks nothing" result honest — a probe set that matches nothing by
/// construction would pass that test vacuously.
pub fn probe_sanity(state: &[u8]) -> bool {
    let probes = high_entropy_fragments(state, 1);
    let clear = vtpm::migration::package_clear(state);
    !probes.is_empty() && probes.iter().all(|p| clear.exposes(&state[p.0..p.1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtpm::MirrorMode;
    use vtpm_cluster::{ClusterConfig, MigrateOutcome};
    use workload::generate_trace;

    fn cluster(seed: &[u8], sealed: bool, mirror: MirrorMode) -> (Cluster, u32) {
        let mut c = Cluster::new(
            seed,
            ClusterConfig { hosts: 2, sealed, mirror_mode: mirror, frames_per_host: 1024, ..Default::default() },
        )
        .unwrap();
        let vm = c.create_vm().unwrap();
        for ev in generate_trace(&[seed, b"/warm"].concat(), 12) {
            c.apply_event(vm, &ev);
        }
        (c, vm)
    }

    #[test]
    fn baseline_clear_transfer_leaks_state_on_the_wire() {
        let (mut c, vm) = cluster(b"mig-window-base", false, MirrorMode::Cleartext);
        let out = migration_window_dump(&mut c, vm, 1);
        assert!(out.succeeded, "clear transfer must leak: {}", out.detail);
        // The attack window closed with the migration still correct.
        assert_eq!(c.runnable_hosts(vm), vec![1]);
    }

    #[test]
    fn clear_transfer_leaks_from_the_wire_alone() {
        // Even with the encrypted mirror keeping state out of Dom0
        // frames, the cleartext package on the fabric is enough.
        let (mut c, vm) = cluster(b"mig-window-wire", false, MirrorMode::Encrypted);
        let out = migration_window_dump(&mut c, vm, 1);
        assert!(out.succeeded, "wire leak missed: {}", out.detail);
    }

    #[test]
    fn sealed_transfer_and_encrypted_mirror_leak_nothing() {
        let (mut c, vm) = cluster(b"mig-window-improved", true, MirrorMode::Encrypted);
        let out = migration_window_dump(&mut c, vm, 1);
        assert!(!out.succeeded, "sealed transfer leaked: {}", out.detail);
        assert_eq!(c.runnable_hosts(vm), vec![1]);
        // The sealed migration still works end to end afterwards.
        assert_eq!(c.migrate(vm, 0), MigrateOutcome::Committed);
    }

    #[test]
    fn migration_window_attack_leaves_a_trail_on_both_hosts() {
        let (mut c, vm) = cluster(b"mig-window-trail", true, MirrorMode::Encrypted);
        for h in 0..2 {
            assert!(c.hosts[h].platform.hv.dump_events().is_empty());
        }
        let out = migration_window_dump(&mut c, vm, 1);
        assert!(!out.succeeded, "sealed+encrypted blocks A7, but...");
        // ...both ends of the window carry a Dom0 dump-trail entry with
        // no crash-recovery anywhere near it — exactly what the
        // sentinel's dump-signature detector fires on. (The cluster
        // model keeps vTPM state in Dom0-owned mirror frames, so the
        // fingerprint is the unexplained dump itself, not foreign
        // frames.)
        for h in 0..2 {
            let trail = c.hosts[h].platform.hv.dump_events();
            assert!(
                trail.iter().any(|d| d.caller == DomainId::DOM0 && d.frames > 0),
                "host {h} trail: {trail:?}"
            );
        }
    }

    #[test]
    fn probe_machinery_detects_cleartext() {
        let state = {
            let (c, vm) = cluster(b"mig-window-probe", true, MirrorMode::Encrypted);
            let h = c.home_of(vm).unwrap();
            let local = c.hosts[h].journal.local_of(vm).unwrap();
            c.hosts[h].platform.manager.export_instance_state(local).unwrap()
        };
        assert!(probe_sanity(&state));
    }
}
