//! The full attack matrix (reproduces Table 2 / R-T2).

use vtpm::{Guest, Platform};

use crate::scenarios::{
    dump_instance_state, envelope_forgery, privileged_ordinal, replay, ring_sniffing,
    xenstore_rebinding, AttackOutcome,
};

/// Outcomes of the whole suite against one platform.
#[derive(Debug, Clone)]
pub struct AttackMatrix {
    /// Label of the configuration attacked ("baseline" / "improved").
    pub configuration: String,
    /// One outcome per attack, in suite order.
    pub outcomes: Vec<AttackOutcome>,
}

impl AttackMatrix {
    /// Run every attack. `victim` must have exchanged some traffic
    /// already (warm rings/mirror); `attacker` is a co-resident guest.
    pub fn run(
        configuration: &str,
        platform: &Platform,
        victim: &Guest,
        attacker: &mut Guest,
    ) -> Self {
        let original_instance = attacker.front.instance;
        let rebinding = xenstore_rebinding(platform, attacker, victim.instance);
        // Undo the rebinding so later attacks run from a clean attacker.
        attacker.front.instance = original_instance;
        let outcomes = vec![
            dump_instance_state(platform, victim),
            ring_sniffing(platform, victim),
            replay(platform, victim),
            envelope_forgery(platform, victim),
            rebinding,
            privileged_ordinal(platform, attacker),
        ];
        AttackMatrix { configuration: configuration.to_string(), outcomes }
    }

    /// Number of successful attacks.
    pub fn successes(&self) -> usize {
        self.outcomes.iter().filter(|o| o.succeeded).count()
    }

    /// Render as fixed-width table rows (the `repro t2` output).
    pub fn rows(&self) -> Vec<String> {
        self.outcomes
            .iter()
            .map(|o| {
                format!(
                    "{:<22} {:<10} {}",
                    o.name,
                    if o.succeeded { "SUCCESS" } else { "blocked" },
                    o.detail
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtpm_ac::SecurePlatform;

    fn warm(guest: &mut Guest) {
        let mut c = guest.client(b"w");
        c.startup_clear().unwrap();
        c.extend(0, &[1; 20]).unwrap();
    }

    #[test]
    fn matrix_baseline_all_succeed() {
        let p = Platform::baseline(b"matrix-base").unwrap();
        let mut victim = p.launch_guest("victim").unwrap();
        let mut attacker = p.launch_guest("attacker").unwrap();
        warm(&mut victim);
        warm(&mut attacker);
        let m = AttackMatrix::run("baseline", &p, &victim, &mut attacker);
        assert_eq!(m.successes(), 6, "{:#?}", m.outcomes);
        assert_eq!(m.rows().len(), 6);
    }

    #[test]
    fn matrix_improved_all_blocked() {
        let sp = SecurePlatform::full(b"matrix-improved").unwrap();
        let mut victim = sp.launch_guest("victim").unwrap();
        let mut attacker = sp.launch_guest("attacker").unwrap();
        warm(&mut victim);
        warm(&mut attacker);
        let m = AttackMatrix::run("improved", &sp.platform, &victim, &mut attacker);
        assert_eq!(m.successes(), 0, "{:#?}", m.outcomes);
    }
}
