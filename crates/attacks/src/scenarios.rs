//! The attack scenarios of the evaluation (R-T2), each runnable against
//! the baseline and the improved platform.
//!
//! Attacker model (matching the abstract and the 2010 Xen vTPM threat
//! analyses): the hypervisor, the vTPM manager process, and the domain
//! builder are the TCB; the attacker controls (a) co-resident guest
//! domains and (b) Dom0 *userspace tooling* — memory-dump software,
//! XenStore clients, and injection into the manager's request queue (a
//! compromised tpmback). The attacker does not patch the manager itself.

use tpm::buffer::Writer;
use tpm::{ordinal, parse_response, rc, tag};
use xen_sim::{DomainId, Hypervisor};

use vtpm::{Envelope, Guest, Platform, ResponseEnvelope, ResponseStatus};

use crate::dump::{high_entropy_fragments, MemoryDump};
use crate::sniff::sniff_envelopes;

/// Result of one attack run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Attack name (stable identifier for the report tables).
    pub name: &'static str,
    /// Whether the attacker achieved the goal.
    pub succeeded: bool,
    /// Human-readable evidence.
    pub detail: String,
}

impl AttackOutcome {
    fn new(name: &'static str, succeeded: bool, detail: impl Into<String>) -> Self {
        AttackOutcome { name, succeeded, detail: detail.into() }
    }
}

/// Build a bare TPM command with just a header (enough for routing and
/// the ordinal-policy check; the vTPM will reject the body, but the
/// attack is judged on whether the *access path* let it through).
pub fn bare_command(ord: u32) -> Vec<u8> {
    let mut w = Writer::new();
    w.u16(tag::RQU_COMMAND).u32(10).u32(ord);
    w.into_vec()
}

/// A TPM_Extend command (fully valid; useful when the attack needs a
/// state-changing success signal).
pub fn extend_command(pcr: u32, value: [u8; 20]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u16(tag::RQU_COMMAND).u32(0).u32(ordinal::EXTEND).u32(pcr).bytes(&value);
    let total = w.len() as u32;
    w.patch_u32(2, total);
    w.into_vec()
}

fn injected_ok(platform: &Platform, source: DomainId, envelope: &Envelope) -> (bool, ResponseStatus) {
    let resp = platform.manager.handle(source, &envelope.encode());
    let renv = ResponseEnvelope::decode(&resp).expect("manager responds");
    (renv.status == ResponseStatus::Ok, renv.status)
}

/// **A1 — memory-dump state theft.** Dump Dom0-visible RAM and look for
/// the victim instance's state bytes (ground truth fetched from the
/// manager). Success = any fragment of the resident image found.
pub fn dump_instance_state(platform: &Platform, victim: &Guest) -> AttackOutcome {
    let state = platform
        .manager
        .export_instance_state(victim.instance)
        .expect("victim instance exists");
    // Probe with high-entropy fragments of the state — key material, not
    // zero-filled PCR banks. (A low-entropy probe would "match" zero
    // pages everywhere and prove nothing.)
    let probes = high_entropy_fragments(&state, 2);
    let needles: Vec<&[u8]> = probes.iter().map(|p| &state[p.0..p.1]).collect();
    assert!(!needles.is_empty(), "instance state has key material");
    let dump = MemoryDump::capture(platform.manager.hypervisor(), DomainId::DOM0)
        .expect("dom0 can dump");
    let hits = dump.scan(&needles);
    AttackOutcome::new(
        "dump-state",
        !hits.is_empty(),
        format!("{} hits over {} pages", hits.len(), dump.pages.len()),
    )
}

/// **A2 — XenStore rebinding.** The attacker rewrites the *victim's*
/// backend binding so the victim's frontend, on (re)connect, attaches to
/// an attacker-chosen instance — and symmetrically points its own
/// frontend at the victim's instance. We model the post-rebinding state
/// directly: the attacker's frontend now targets the victim's instance.
/// Success = a command executes on the victim's instance.
pub fn xenstore_rebinding(
    platform: &Platform,
    attacker: &mut Guest,
    victim_instance: u32,
) -> AttackOutcome {
    let hv: &Hypervisor = platform.manager.hypervisor();
    // The Dom0-level attacker rewrites the store (permitted: Dom0
    // overrides node permissions — see xen-sim::xenstore).
    let path = format!("/local/domain/0/backend/vtpm/{}/0/instance", attacker.domain.0);
    hv.xs_write(DomainId::DOM0, &path, victim_instance.to_string().as_bytes())
        .expect("dom0 writes xenstore");
    // The attacker's frontend re-reads its binding (reconnect).
    attacker.front.instance = victim_instance;
    let env = attacker.front.build_envelope(&extend_command(10, [0xEE; 20]));
    let ok = match attacker.front.transact_envelope(&env) {
        Ok(resp) if resp.status == ResponseStatus::Ok => {
            parse_response(&resp.body).map(|(_, code, _)| code == rc::SUCCESS).unwrap_or(false)
        }
        _ => false,
    };
    AttackOutcome::new(
        "xenstore-rebinding",
        ok,
        if ok { "attacker command executed on victim instance" } else { "denied" },
    )
}

/// **A3 — envelope forgery.** A compromised Dom0 component injects an
/// envelope claiming the victim's (domain, instance) into the manager.
/// Success = it executes.
pub fn envelope_forgery(platform: &Platform, victim: &Guest) -> AttackOutcome {
    let forged = Envelope {
        domain: victim.domain.0,
        instance: victim.instance,
        // A high sequence number so replay protection isn't what stops it.
        seq: victim.front.seq() + 1_000,
        locality: 0,
        tag: None, // the attacker has no credential to tag with
        command: extend_command(11, [0xAA; 20]),
    };
    let (ok, status) = injected_ok(platform, victim.domain, &forged);
    AttackOutcome::new("envelope-forgery", ok, format!("manager said {status:?}"))
}

/// **A4 — replay.** The attacker sniffs a legitimate (possibly tagged)
/// envelope out of ring memory via the dump, then injects it verbatim.
/// Success = the duplicate executes. If no envelope can be sniffed
/// (scrubbed rings), the attack fails at the capture stage.
pub fn replay(platform: &Platform, victim: &Guest) -> AttackOutcome {
    let dump = MemoryDump::capture(platform.manager.hypervisor(), DomainId::DOM0)
        .expect("dom0 can dump");
    let captured = sniff_envelopes(&dump);
    let candidate = captured
        .into_iter()
        .filter(|e| e.domain == victim.domain.0 && e.instance == victim.instance)
        .max_by_key(|e| e.seq);
    match candidate {
        Some(env) => {
            let (ok, status) = injected_ok(platform, victim.domain, &env);
            AttackOutcome::new(
                "replay",
                ok,
                format!("replayed seq {} -> {status:?}", env.seq),
            )
        }
        None => AttackOutcome::new("replay", false, "no envelope could be sniffed (rings scrubbed)"),
    }
}

/// **A5 — privileged-ordinal escalation.** A guest issues an
/// administratively denied ordinal (NV_DefineSpace) to its *own* vTPM.
/// Success = the command reaches the TPM (i.e. the response is a TPM
/// response rather than an access-control denial).
pub fn privileged_ordinal(_platform: &Platform, guest: &mut Guest) -> AttackOutcome {
    let env = guest.front.build_envelope(&bare_command(ordinal::NV_DEFINE_SPACE));
    let reached_tpm = match guest.front.transact_envelope(&env) {
        Ok(resp) => resp.status == ResponseStatus::Ok,
        Err(_) => false,
    };
    AttackOutcome::new(
        "privileged-ordinal",
        reached_tpm,
        if reached_tpm { "denied ordinal reached the vTPM" } else { "filtered" },
    )
}

/// **A6 — ring sniffing.** After the victim has exchanged traffic, dump
/// memory and look for any parseable vTPM envelope of the victim's.
/// Success = at least one captured.
pub fn ring_sniffing(platform: &Platform, victim: &Guest) -> AttackOutcome {
    let dump = MemoryDump::capture(platform.manager.hypervisor(), DomainId::DOM0)
        .expect("dom0 can dump");
    let captured: Vec<Envelope> = sniff_envelopes(&dump)
        .into_iter()
        .filter(|e| e.domain == victim.domain.0)
        .collect();
    AttackOutcome::new(
        "ring-sniffing",
        !captured.is_empty(),
        format!("captured {} envelopes", captured.len()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtpm_ac::SecurePlatform;

    /// Drive some victim traffic so rings and mirrors are warm.
    fn warm_up(guest: &mut Guest) {
        let mut c = guest.client(b"victim");
        c.startup_clear().unwrap();
        c.extend(0, &[1; 20]).unwrap();
        c.get_random(16).unwrap();
    }

    #[test]
    fn all_attacks_succeed_against_baseline() {
        let p = Platform::baseline(b"attack-base").unwrap();
        let mut victim = p.launch_guest("victim").unwrap();
        let mut attacker = p.launch_guest("attacker").unwrap();
        warm_up(&mut victim);
        {
            let mut c = attacker.client(b"attacker");
            c.startup_clear().unwrap();
        }

        assert!(dump_instance_state(&p, &victim).succeeded, "A1 baseline");
        assert!(ring_sniffing(&p, &victim).succeeded, "A6 baseline");
        assert!(replay(&p, &victim).succeeded, "A4 baseline");
        assert!(envelope_forgery(&p, &victim).succeeded, "A3 baseline");
        assert!(
            xenstore_rebinding(&p, &mut attacker, victim.instance).succeeded,
            "A2 baseline"
        );
        assert!(privileged_ordinal(&p, &mut attacker).succeeded, "A5 baseline");
    }

    #[test]
    fn all_attacks_blocked_by_improved() {
        let sp = SecurePlatform::full(b"attack-improved").unwrap();
        let mut victim = sp.launch_guest("victim").unwrap();
        let mut attacker = sp.launch_guest("attacker").unwrap();
        warm_up(&mut victim);
        {
            let mut c = attacker.client(b"attacker");
            c.startup_clear().unwrap();
        }

        let p = &sp.platform;
        assert!(!dump_instance_state(p, &victim).succeeded, "A1 improved");
        assert!(!ring_sniffing(p, &victim).succeeded, "A6 improved");
        assert!(!replay(p, &victim).succeeded, "A4 improved");
        assert!(!envelope_forgery(p, &victim).succeeded, "A3 improved");
        assert!(
            !xenstore_rebinding(p, &mut attacker, victim.instance).succeeded,
            "A2 improved"
        );
        assert!(!privileged_ordinal(p, &mut attacker).succeeded, "A5 improved");
        // Each denial is in the audit log.
        assert!(sp.hook.audit.denials() >= 3);
    }

    #[test]
    fn dump_attack_leaves_an_introspectable_trail() {
        // Even when the improved platform defeats A1, the *attempt* is
        // visible after the fact: the hypervisor's dump trail records a
        // Dom0 dump touching foreign frames — the exact fingerprint the
        // sentinel's dump-signature detector keys on.
        let sp = SecurePlatform::full(b"attack-trail").unwrap();
        let mut victim = sp.launch_guest("victim").unwrap();
        warm_up(&mut victim);
        let hv = sp.platform.manager.hypervisor();
        assert!(hv.dump_events().is_empty(), "clean operation never dumps");
        let out = dump_instance_state(&sp.platform, &victim);
        assert!(!out.succeeded, "A1 is blocked, but...");
        assert!(
            hv.dump_events()
                .iter()
                .any(|d| d.caller == DomainId::DOM0 && d.foreign_frames > 0),
            "...the failed attempt still leaves the dump fingerprint"
        );
    }

    #[test]
    fn bare_command_carries_ordinal() {
        let cmd = bare_command(ordinal::NV_DEFINE_SPACE);
        assert_eq!(tpm::ordinal_of(&cmd), Some(ordinal::NV_DEFINE_SPACE));
    }
}
