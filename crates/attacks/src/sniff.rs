//! Ring sniffing: recover vTPM envelopes from a memory dump.
//!
//! Split-driver rings live in guest pages mapped into Dom0, so the dump
//! contains every message that has not been scrubbed. The sniffer scans
//! for the envelope magic and attempts a parse at each candidate offset —
//! exactly what attack tooling does with protocol signatures.

use vtpm::Envelope;
use xen_sim::PAGE_SIZE;

use crate::dump::MemoryDump;

/// Envelope wire magic: 0x5650 big-endian, then version 1.
const MAGIC: [u8; 3] = [0x56, 0x50, 0x01];

/// Recover every parseable envelope from the dump. Pages that are
/// machine-adjacent are stitched so messages crossing a page boundary
/// parse too.
pub fn sniff_envelopes(dump: &MemoryDump) -> Vec<Envelope> {
    // Group pages into maximal runs of adjacent mfns, preserving order.
    let mut pages: Vec<(usize, &[u8])> =
        dump.pages.iter().map(|(mfn, _, page)| (*mfn, &page[..])).collect();
    pages.sort_by_key(|(mfn, _)| *mfn);

    let mut envelopes = Vec::new();
    let mut run: Vec<u8> = Vec::new();
    let mut prev_mfn: Option<usize> = None;
    let mut flush = |run: &mut Vec<u8>| {
        scan_buffer(run, &mut envelopes);
        run.clear();
    };
    for (mfn, page) in pages {
        if let Some(p) = prev_mfn {
            if mfn != p + 1 {
                flush(&mut run);
            }
        }
        run.extend_from_slice(page);
        prev_mfn = Some(mfn);
        // Bound memory: cap runs at 64 pages (rings are tiny).
        if run.len() >= 64 * PAGE_SIZE {
            flush(&mut run);
            prev_mfn = None;
        }
    }
    flush(&mut run);
    envelopes
}

fn scan_buffer(buf: &[u8], out: &mut Vec<Envelope>) {
    let mut i = 0;
    while i + MAGIC.len() <= buf.len() {
        if buf[i..i + MAGIC.len()] == MAGIC {
            if let Ok(env) = Envelope::decode(&buf[i..]) {
                out.push(env);
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtpm::Platform;
    use xen_sim::DomainId;

    #[test]
    fn sniffs_live_traffic_from_baseline_rings() {
        let p = Platform::baseline(b"sniff-test").unwrap();
        let mut g = p.launch_guest("victim").unwrap();
        let mut c = g.client(b"c");
        c.startup_clear().unwrap();
        c.extend(3, &[0x77; 20]).unwrap();

        let dump =
            MemoryDump::capture(p.manager.hypervisor(), DomainId::DOM0).unwrap();
        let envs = sniff_envelopes(&dump);
        assert!(!envs.is_empty(), "baseline rings leak envelopes");
        assert!(envs.iter().all(|e| e.domain == g.domain.0));
        // The extend command's ordinal is visible in a captured envelope.
        let extend_seen = envs
            .iter()
            .any(|e| tpm::ordinal_of(&e.command) == Some(tpm::ordinal::EXTEND));
        assert!(extend_seen);
    }

    #[test]
    fn scrubbed_rings_yield_nothing() {
        let p = Platform::improved(b"sniff-test-2").unwrap();
        let mut g = p.launch_guest("victim").unwrap();
        let mut c = g.client(b"c");
        c.startup_clear().unwrap();
        c.extend(3, &[0x77; 20]).unwrap();

        let dump =
            MemoryDump::capture(p.manager.hypervisor(), DomainId::DOM0).unwrap();
        assert!(sniff_envelopes(&dump).is_empty(), "scrubbed rings leak nothing");
    }

    #[test]
    fn scan_buffer_rejects_lookalike_garbage() {
        // Magic followed by 0xFF noise: the flag byte demands a tag and
        // the length field is absurd, so the parse fails.
        let mut buf = vec![0xFFu8; 100];
        buf[10..13].copy_from_slice(&MAGIC);
        let mut out = Vec::new();
        scan_buffer(&buf, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn scan_buffer_finds_embedded_envelope() {
        let env = Envelope {
            domain: 4,
            instance: 2,
            seq: 9,
            locality: 0,
            tag: None,
            command: vec![1, 2, 3],
        };
        let mut buf = vec![0xFFu8; 50];
        buf.extend_from_slice(&env.encode());
        buf.extend_from_slice(&[0xEE; 30]);
        let mut out = Vec::new();
        scan_buffer(&buf, &mut out);
        assert_eq!(out, vec![env]);
    }
}
