//! The memory-dump attacker: the abstract's "CPU and memory dump
//! software" running with Dom0 privileges.
//!
//! [`MemoryDump::capture`] takes everything the hypervisor will map for
//! Dom0 (all normal frames machine-wide); [`MemoryDump::scan`] then
//! searches it for needles — in the experiments, ground-truth secrets the
//! harness planted (instance state bytes, SRK primes, sealed plaintext,
//! command traffic). The scan is rayon-parallel across pages: a real
//! attacker scans gigabytes, and the R-F5 experiment measures exactly
//! this scaling.

use rayon::prelude::*;

use xen_sim::{DomainId, Hypervisor, PAGE_SIZE};

/// One captured dump.
pub struct MemoryDump {
    /// (mfn, owner, page contents) triples.
    pub pages: Vec<(usize, DomainId, Box<[u8; PAGE_SIZE]>)>,
}

/// One needle hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// Index of the needle in the scan set.
    pub needle: usize,
    /// Frame it was found in.
    pub mfn: usize,
    /// Owner of that frame.
    pub owner: DomainId,
    /// Byte offset within the frame (start of the match, which may
    /// continue into the next frame for straddling needles — see
    /// [`MemoryDump::scan`]).
    pub offset: usize,
}

/// Scan statistics for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanStats {
    /// Frames captured.
    pub pages: usize,
    /// Total bytes scanned.
    pub bytes: usize,
    /// Number of hits.
    pub hits: usize,
}

impl MemoryDump {
    /// Capture as `attacker` (Dom0 sees everything unprotected; a guest
    /// sees only itself).
    pub fn capture(hv: &Hypervisor, attacker: DomainId) -> xen_sim::Result<Self> {
        Ok(MemoryDump { pages: hv.dump_memory(attacker)? })
    }

    /// Bytes captured.
    pub fn len(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Search for every needle in parallel across pages. Matches that
    /// straddle a page boundary are found when the pages are
    /// machine-adjacent (mfn, mfn+1), which covers contiguous buffers.
    pub fn scan(&self, needles: &[&[u8]]) -> Vec<Hit> {
        let max_needle = needles.iter().map(|n| n.len()).max().unwrap_or(0);
        if max_needle == 0 {
            return Vec::new();
        }
        // Index by mfn for adjacency stitching.
        let by_mfn: std::collections::HashMap<usize, usize> =
            self.pages.iter().enumerate().map(|(i, (mfn, _, _))| (*mfn, i)).collect();

        let mut hits: Vec<Hit> = self
            .pages
            .par_iter()
            .flat_map_iter(|(mfn, owner, page)| {
                // Build a window of this page plus the head of the next
                // adjacent page so straddling matches are seen once.
                let mut buf = Vec::with_capacity(PAGE_SIZE + max_needle);
                buf.extend_from_slice(&page[..]);
                if let Some(&ni) = by_mfn.get(&(mfn + 1)) {
                    let (_, _, next) = &self.pages[ni];
                    buf.extend_from_slice(&next[..max_needle.min(PAGE_SIZE)]);
                }
                let mut local = Vec::new();
                for (ni, needle) in needles.iter().enumerate() {
                    if needle.is_empty() {
                        continue;
                    }
                    let limit = PAGE_SIZE.min(buf.len());
                    let mut start = 0;
                    while start < limit {
                        let window_end = (start + needle.len()).min(buf.len());
                        if window_end - start < needle.len() {
                            break;
                        }
                        match find(&buf[start..], needle) {
                            Some(pos) if start + pos < PAGE_SIZE => {
                                local.push(Hit {
                                    needle: ni,
                                    mfn: *mfn,
                                    owner: *owner,
                                    offset: start + pos,
                                });
                                start += pos + 1;
                            }
                            _ => break,
                        }
                    }
                }
                local
            })
            .collect();
        hits.sort_by_key(|h| (h.needle, h.mfn, h.offset));
        hits
    }

    /// Convenience: does any needle appear at all?
    pub fn contains_any(&self, needles: &[&[u8]]) -> bool {
        !self.scan(needles).is_empty()
    }

    /// Scan statistics for a needle set.
    pub fn stats(&self, needles: &[&[u8]]) -> ScanStats {
        ScanStats { pages: self.pages.len(), bytes: self.len(), hits: self.scan(needles).len() }
    }
}

/// Pick up to `n` 64-byte windows of `data` with high byte diversity
/// (>= 30 distinct values) — the signature of key material rather than
/// padding or zeroed registers. This is how dump tooling chooses probes:
/// low-entropy fragments would "match" zero pages everywhere and prove
/// nothing. Returns `(start, end)` ranges.
pub fn high_entropy_fragments(data: &[u8], n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0;
    while start + 64 <= data.len() && out.len() < n {
        let window = &data[start..start + 64];
        let mut seen = [false; 256];
        let mut distinct = 0;
        for &b in window {
            if !seen[b as usize] {
                seen[b as usize] = true;
                distinct += 1;
            }
        }
        if distinct >= 30 {
            out.push((start, start + 64));
            start += 64;
        } else {
            start += 32;
        }
    }
    out
}

/// Naive subslice search (memmem). Needles are short (tens of bytes);
/// the two-loop form optimizes fine.
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xen_sim::DomainConfig;

    fn hv() -> Hypervisor {
        Hypervisor::boot(128, 8).unwrap()
    }

    #[test]
    fn finds_planted_secret() {
        let hv = hv();
        let g = hv.create_domain(DomainId::DOM0, DomainConfig::small("g")).unwrap();
        let f = hv.domain_info(g).unwrap().frames[0];
        hv.page_write(g, f, 1000, b"NEEDLE-IN-HAYSTACK").unwrap();
        let dump = MemoryDump::capture(&hv, DomainId::DOM0).unwrap();
        let hits = dump.scan(&[b"NEEDLE-IN-HAYSTACK"]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].mfn, f);
        assert_eq!(hits[0].owner, g);
        assert_eq!(hits[0].offset, 1000);
    }

    #[test]
    fn finds_straddling_secret() {
        let hv = hv();
        let g = hv.create_domain(
            DomainId::DOM0,
            DomainConfig { memory_pages: 4, ..DomainConfig::small("g") },
        )
        .unwrap();
        let frames = hv.domain_info(g).unwrap().frames;
        // Find two machine-adjacent frames.
        let mut sorted = frames.clone();
        sorted.sort_unstable();
        let pair = sorted.windows(2).find(|w| w[1] == w[0] + 1).expect("adjacent frames");
        let needle = b"STRADDLING-SECRET";
        let split = 8; // 8 bytes at the end of page 0, rest in page 1
        hv.page_write(g, pair[0], PAGE_SIZE - split, &needle[..split]).unwrap();
        hv.page_write(g, pair[1], 0, &needle[split..]).unwrap();
        let dump = MemoryDump::capture(&hv, DomainId::DOM0).unwrap();
        let hits = dump.scan(&[needle]);
        assert_eq!(hits.len(), 1, "straddling match must be found");
        assert_eq!(hits[0].mfn, pair[0]);
        assert_eq!(hits[0].offset, PAGE_SIZE - split);
    }

    #[test]
    fn guest_attacker_sees_only_itself() {
        let hv = hv();
        let victim = hv.create_domain(DomainId::DOM0, DomainConfig::small("v")).unwrap();
        let attacker = hv.create_domain(DomainId::DOM0, DomainConfig::small("a")).unwrap();
        let vf = hv.domain_info(victim).unwrap().frames[0];
        hv.page_write(victim, vf, 0, b"VICTIM-ONLY").unwrap();
        let dump = MemoryDump::capture(&hv, attacker).unwrap();
        assert!(!dump.contains_any(&[b"VICTIM-ONLY"]));
        // But Dom0 sees it.
        let dump0 = MemoryDump::capture(&hv, DomainId::DOM0).unwrap();
        assert!(dump0.contains_any(&[b"VICTIM-ONLY"]));
    }

    #[test]
    fn multiple_needles_and_occurrences() {
        let hv = hv();
        let g = hv.create_domain(DomainId::DOM0, DomainConfig::small("g")).unwrap();
        let frames = hv.domain_info(g).unwrap().frames;
        hv.page_write(g, frames[0], 0, b"AAAA-SECRET").unwrap();
        hv.page_write(g, frames[1], 50, b"AAAA-SECRET").unwrap();
        hv.page_write(g, frames[2], 99, b"BBBB-SECRET").unwrap();
        let dump = MemoryDump::capture(&hv, DomainId::DOM0).unwrap();
        let hits = dump.scan(&[b"AAAA-SECRET", b"BBBB-SECRET", b"CCCC-ABSENT"]);
        assert_eq!(hits.iter().filter(|h| h.needle == 0).count(), 2);
        assert_eq!(hits.iter().filter(|h| h.needle == 1).count(), 1);
        assert_eq!(hits.iter().filter(|h| h.needle == 2).count(), 0);
    }

    #[test]
    fn overlapping_occurrences_in_one_page() {
        let hv = hv();
        let g = hv.create_domain(DomainId::DOM0, DomainConfig::small("g")).unwrap();
        let f = hv.domain_info(g).unwrap().frames[0];
        hv.page_write(g, f, 0, b"XYXYXY").unwrap();
        let dump = MemoryDump::capture(&hv, DomainId::DOM0).unwrap();
        let hits = dump.scan(&[b"XYXY"]);
        assert_eq!(hits.len(), 2, "overlapping matches at 0 and 2");
    }

    #[test]
    fn stats_shape() {
        let hv = hv();
        let dump = MemoryDump::capture(&hv, DomainId::DOM0).unwrap();
        let stats = dump.stats(&[b"nothing-here"]);
        assert_eq!(stats.bytes, stats.pages * PAGE_SIZE);
        assert_eq!(stats.hits, 0);
        assert!(!dump.is_empty());
    }

    #[test]
    fn empty_needles_no_hits() {
        let hv = hv();
        let dump = MemoryDump::capture(&hv, DomainId::DOM0).unwrap();
        assert!(dump.scan(&[]).is_empty());
        assert!(dump.scan(&[b""]).is_empty());
    }
}
