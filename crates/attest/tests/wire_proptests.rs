//! Property tests for the evidence wire format: the decoder must never
//! panic on hostile bytes, and encode∘decode must be the identity on
//! well-formed evidence.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::proptest;
use vtpm::deep_quote::DeepQuote;
use vtpm_attest::{Evidence, WireError};

/// Build a structurally valid evidence blob from fuzzable scalars. The
/// selection is derived as a strictly ascending subset of 0..24.
fn build_evidence(
    instance: u32,
    window: u64,
    sel_mask: u32,
    fill: u8,
    sig_len: usize,
    key_len: usize,
    log_len: usize,
) -> Evidence {
    let mut selection: Vec<usize> = (0..24usize).filter(|i| sel_mask & (1 << i) != 0).collect();
    if selection.is_empty() {
        selection.push(0);
    }
    let values = selection.iter().map(|&i| [fill.wrapping_add(i as u8); 20]).collect();
    Evidence {
        instance,
        window,
        quote: DeepQuote {
            vtpm_pcr_values: values,
            vtpm_selection: selection,
            vtpm_signature: vec![fill; sig_len],
            vtpm_aik_modulus: vec![fill.wrapping_add(1); key_len],
            vtpm_ek_modulus: vec![fill.wrapping_add(2); key_len],
            hw_binding_pcr: [fill.wrapping_add(3); 20],
            hw_signature: vec![fill.wrapping_add(4); sig_len],
            hw_aik_modulus: vec![fill.wrapping_add(5); key_len],
            registration_log: (0..log_len).map(|i| [fill.wrapping_add(i as u8); 20]).collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode ∘ decode == identity for arbitrary well-formed evidence.
    #[test]
    fn roundtrip(
        instance in any::<u32>(),
        window in any::<u64>(),
        sel_mask in any::<u32>(),
        fill in any::<u8>(),
        sig_len in 1usize..200,
        key_len in 1usize..200,
        log_len in 1usize..20,
    ) {
        let e = build_evidence(instance, window, sel_mask, fill, sig_len, key_len, log_len);
        let decoded = Evidence::decode(&e.encode()).expect("well-formed must parse");
        prop_assert_eq!(decoded, e);
    }

    /// The decoder never panics on arbitrary bytes — it parses or it
    /// returns a WireError, nothing else.
    #[test]
    fn decode_never_panics(bytes in vec(any::<u8>(), 0..600)) {
        let _ = Evidence::decode(&bytes);
    }

    /// Any trailing garbage after a valid blob makes the whole thing
    /// invalid (nothing is silently ignored).
    #[test]
    fn trailing_garbage_always_rejected(
        sel_mask in any::<u32>(),
        extra in vec(any::<u8>(), 1..40),
    ) {
        let mut bytes = build_evidence(1, 2, sel_mask, 0x5A, 64, 64, 3).encode();
        bytes.extend_from_slice(&extra);
        prop_assert_eq!(Evidence::decode(&bytes), Err(WireError::TrailingBytes));
    }

    /// No strict prefix of a valid blob parses: the format is
    /// self-delimiting with no optional tail.
    #[test]
    fn prefixes_never_parse(cut_back in 1usize..80) {
        let bytes = build_evidence(1, 2, 0b111, 0x5A, 64, 64, 3).encode();
        let cut = bytes.len().saturating_sub(cut_back);
        prop_assert!(Evidence::decode(&bytes[..cut]).is_err());
    }

    /// Flipping any single byte of a valid blob either fails to parse
    /// or decodes to *different* evidence — never silently to the same
    /// value (the digest, and so the replay ledger, keys on content).
    #[test]
    fn single_byte_flip_never_collides(pos_seed in any::<u64>(), bit in 0u8..8) {
        let e = build_evidence(1, 2, 0b1010, 0x5A, 64, 64, 3);
        let mut bytes = e.encode();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= 1 << bit;
        match Evidence::decode(&bytes) {
            Ok(decoded) => prop_assert_ne!(decoded, e),
            Err(_) => {}
        }
    }
}
