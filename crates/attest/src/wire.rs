//! The evidence wire format: strict, self-delimiting, hostile-input
//! safe.
//!
//! An [`Evidence`] blob is what an issuer hands a verifier: the
//! instance id, the nonce-window it was issued against, and the full
//! deep-quote bundle. `decode` applies the same hygiene rules as
//! `MigrationPackage::decode`: every field is length-checked against a
//! hard cap *before* allocation, chains that cannot be well-formed
//! (empty signatures, unsorted PCR selections, value/selection count
//! mismatches) are rejected as malformed, and trailing bytes after a
//! well-formed blob make the whole thing malformed rather than being
//! silently ignored.

use tpm::buffer::{Reader, Writer};
use tpm::{DIGEST_LEN, NUM_PCRS};
use tpm_crypto::{sha1, sha256};
use vtpm::deep_quote::DeepQuote;

/// Wire format version byte.
const VERSION: u8 = 1;

/// Hard cap on signature / modulus field lengths (8192-bit RSA).
const MAX_KEY_FIELD: usize = 1024;

/// Hard cap on registration-log entries one blob may carry.
const MAX_LOG_ENTRIES: usize = 4096;

/// Why a blob failed to parse or could never be a valid chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// Bytes left over after a complete blob.
    TrailingBytes,
    /// Unknown version byte.
    BadVersion,
    /// A field violates the chain's structural rules (selection not
    /// strictly ascending / out of range, count mismatch, empty or
    /// oversized key material, oversized log).
    MalformedChain,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WireError::Truncated => "evidence truncated",
            WireError::TrailingBytes => "trailing bytes after evidence",
            WireError::BadVersion => "unknown evidence version",
            WireError::MalformedChain => "malformed quote chain",
        };
        f.write_str(s)
    }
}

impl std::error::Error for WireError {}

/// The nonce every quote in window `window` is issued against:
/// `SHA1("VTPM-ATTEST-WINDOW" || window_be)`. Deriving the nonce from
/// the window index is what lets one signing pass serve every verifier
/// of that window — and lets a verifier recompute the expected nonce
/// from the blob alone, so a blob claiming one window but signed over
/// another fails its signature check.
pub fn window_nonce(window: u64) -> [u8; DIGEST_LEN] {
    let mut buf = [0u8; 18 + 8];
    buf[..18].copy_from_slice(b"VTPM-ATTEST-WINDOW");
    buf[18..].copy_from_slice(&window.to_be_bytes());
    sha1(&buf)
}

/// A complete attestation evidence blob: one deep quote bound to an
/// instance and a nonce-window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evidence {
    /// The attested vTPM instance.
    pub instance: u32,
    /// Nonce-window the quote was issued against (the quote nonce is
    /// [`window_nonce`] of this).
    pub window: u64,
    /// The deep-quote bundle.
    pub quote: DeepQuote,
}

impl Evidence {
    /// Serialize for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let q = &self.quote;
        let mut w = Writer::with_capacity(64 + q.vtpm_signature.len() + q.hw_signature.len());
        w.u8(VERSION);
        w.u32(self.instance);
        w.bytes(&self.window.to_be_bytes());
        w.u8(q.vtpm_selection.len() as u8);
        for &i in &q.vtpm_selection {
            w.u8(i as u8);
        }
        for v in &q.vtpm_pcr_values {
            w.bytes(v);
        }
        w.sized_u16(&q.vtpm_signature);
        w.sized_u16(&q.vtpm_aik_modulus);
        w.sized_u16(&q.vtpm_ek_modulus);
        w.bytes(&q.hw_binding_pcr);
        w.sized_u16(&q.hw_signature);
        w.sized_u16(&q.hw_aik_modulus);
        w.u16(q.registration_log.len() as u16);
        for e in &q.registration_log {
            w.bytes(e);
        }
        w.into_vec()
    }

    /// Parse from the wire. Rejects trailing bytes and structurally
    /// impossible chains; never panics on hostile input.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(data);
        let trunc = |_: tpm::buffer::BufError| WireError::Truncated;
        if r.u8().map_err(trunc)? != VERSION {
            return Err(WireError::BadVersion);
        }
        let instance = r.u32().map_err(trunc)?;
        let window = u64::from_be_bytes(
            r.bytes(8).map_err(trunc)?.try_into().expect("8 bytes read"),
        );

        let sel_count = r.u8().map_err(trunc)? as usize;
        if sel_count == 0 || sel_count > NUM_PCRS {
            return Err(WireError::MalformedChain);
        }
        let mut vtpm_selection = Vec::with_capacity(sel_count);
        for _ in 0..sel_count {
            let idx = r.u8().map_err(trunc)? as usize;
            // Strictly ascending and in range: one canonical encoding
            // per selection, so a blob cannot smuggle duplicates past
            // the composite reconstruction.
            if idx >= NUM_PCRS || vtpm_selection.last().is_some_and(|&l| idx <= l) {
                return Err(WireError::MalformedChain);
            }
            vtpm_selection.push(idx);
        }
        let mut vtpm_pcr_values = Vec::with_capacity(sel_count);
        for _ in 0..sel_count {
            vtpm_pcr_values.push(r.digest().map_err(trunc)?);
        }

        let key_field = |r: &mut Reader| -> Result<Vec<u8>, WireError> {
            let b = r.sized_u16().map_err(trunc)?;
            if b.is_empty() || b.len() > MAX_KEY_FIELD {
                return Err(WireError::MalformedChain);
            }
            Ok(b.to_vec())
        };
        let vtpm_signature = key_field(&mut r)?;
        let vtpm_aik_modulus = key_field(&mut r)?;
        let vtpm_ek_modulus = key_field(&mut r)?;
        let hw_binding_pcr = r.digest().map_err(trunc)?;
        let hw_signature = key_field(&mut r)?;
        let hw_aik_modulus = key_field(&mut r)?;

        let log_count = r.u16().map_err(trunc)? as usize;
        if log_count > MAX_LOG_ENTRIES {
            return Err(WireError::MalformedChain);
        }
        // A registered instance implies a non-empty log; an empty one
        // can only ever fail verification, so refuse it at the parser.
        if log_count == 0 {
            return Err(WireError::MalformedChain);
        }
        let mut registration_log = Vec::with_capacity(log_count);
        for _ in 0..log_count {
            registration_log.push(r.digest().map_err(trunc)?);
        }

        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes);
        }
        Ok(Evidence {
            instance,
            window,
            quote: DeepQuote {
                vtpm_pcr_values,
                vtpm_selection,
                vtpm_signature,
                vtpm_aik_modulus,
                vtpm_ek_modulus,
                hw_binding_pcr,
                hw_signature,
                hw_aik_modulus,
                registration_log,
            },
        })
    }

    /// Content digest of the encoded blob: the replay-ledger and
    /// chain-memo key. Any difference anywhere in the evidence — a
    /// different window, a swapped EK, one flipped signature byte —
    /// yields a different digest.
    pub fn digest(&self) -> [u8; 32] {
        sha256(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> Evidence {
        Evidence {
            instance: 7,
            window: 42,
            quote: DeepQuote {
                vtpm_pcr_values: vec![[0x11; 20], [0x22; 20]],
                vtpm_selection: vec![0, 1],
                vtpm_signature: vec![0xAA; 64],
                vtpm_aik_modulus: vec![0xBB; 64],
                vtpm_ek_modulus: vec![0xCC; 128],
                hw_binding_pcr: [0x33; 20],
                hw_signature: vec![0xDD; 64],
                hw_aik_modulus: vec![0xEE; 64],
                registration_log: vec![[0x44; 20], [0x55; 20]],
            },
        }
    }

    #[test]
    fn roundtrip() {
        let e = sample();
        assert_eq!(Evidence::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(Evidence::decode(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = sample().encode();
        for n in 0..bytes.len() {
            assert!(Evidence::decode(&bytes[..n]).is_err(), "prefix {n} must not parse");
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = 9;
        assert_eq!(Evidence::decode(&bytes), Err(WireError::BadVersion));
    }

    #[test]
    fn unsorted_selection_rejected() {
        let mut e = sample();
        e.quote.vtpm_selection = vec![1, 0];
        e.quote.vtpm_pcr_values = vec![[0x11; 20], [0x22; 20]];
        assert_eq!(Evidence::decode(&e.encode()), Err(WireError::MalformedChain));
    }

    #[test]
    fn empty_signature_rejected() {
        let mut e = sample();
        e.quote.vtpm_signature = Vec::new();
        assert_eq!(Evidence::decode(&e.encode()), Err(WireError::MalformedChain));
    }

    #[test]
    fn empty_log_rejected() {
        let mut e = sample();
        e.quote.registration_log = Vec::new();
        assert_eq!(Evidence::decode(&e.encode()), Err(WireError::MalformedChain));
    }

    #[test]
    fn digest_distinguishes_any_field() {
        let a = sample();
        let mut b = sample();
        b.quote.vtpm_ek_modulus[0] ^= 1;
        assert_ne!(a.digest(), b.digest());
        let mut c = sample();
        c.window += 1;
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn window_nonce_is_per_window() {
        assert_ne!(window_nonce(1), window_nonce(2));
        assert_eq!(window_nonce(7), window_nonce(7));
    }
}
