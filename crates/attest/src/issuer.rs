//! Batched deep-quote issuance: one signing pass per (instance,
//! PCR-state generation, nonce-window), everything else served from
//! cache.
//!
//! The expensive part of a deep quote is two RSA private operations —
//! the instance vTPM's quote signature and the hardware TPM's
//! countersign. Under a quote storm (thousands of verifiers polling
//! the same farm) almost all of that work is redundant: the PCR state
//! has not moved and the nonce-window has not rolled, so the evidence
//! is byte-identical. The issuer exploits that:
//!
//! * Requests are keyed on `(instance, state_generation, window)`.
//!   The generation is the TPM's permanent-state counter, bumped by
//!   every PCR extend (and any other permanent mutation) and *not* by
//!   quote execution itself — so a cache hit proves the evidence
//!   still describes the live PCR state, and an extend between two
//!   quotes forces a fresh signing pass.
//! * Concurrent misses for one instance coalesce behind a
//!   per-instance single-flight lock: the first request signs, the
//!   rest wake up, re-check the cache, and leave with the same
//!   `Arc<Evidence>`.
//! * Entries from windows older than the previous one are pruned on
//!   insert, bounding the cache at ~2 windows per instance.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use tpm::{DirectTransport, PcrSelection, TpmClient};
use vtpm::deep_quote::DeepQuote;
use vtpm::{InstanceId, Platform};
use vtpm_telemetry::{AttestTelemetry, QuoteSpanRecord};

use crate::wire::{window_nonce, Evidence};

/// Issuer tuning.
#[derive(Debug, Clone)]
pub struct IssuerConfig {
    /// Width of one nonce-window in (virtual) nanoseconds. Everything
    /// asking within one window shares a nonce and therefore evidence.
    pub window_ns: u64,
    /// PCRs a quote covers.
    pub selection: Vec<usize>,
    /// Whether the issued-quote cache is consulted. Disabled, every
    /// request pays a full signing pass — the R-A1 baseline.
    pub cache: bool,
}

impl Default for IssuerConfig {
    fn default() -> Self {
        IssuerConfig { window_ns: 1_000_000_000, selection: vec![0, 1], cache: true }
    }
}

/// Why issuance failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueError {
    /// No live instance with that id.
    UnknownInstance,
    /// The instance has no enrolled attestation identity yet.
    NotEnrolled,
    /// A TPM command in the signing pass failed.
    Tpm(&'static str),
}

impl std::fmt::Display for IssueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IssueError::UnknownInstance => f.write_str("no such instance"),
            IssueError::NotEnrolled => f.write_str("instance has no attestation identity"),
            IssueError::Tpm(what) => write!(f, "tpm failure during {what}"),
        }
    }
}

impl std::error::Error for IssueError {}

/// A provisioned per-instance attestation identity: a loaded signing
/// key inside the instance vTPM plus the public material evidence
/// carries.
#[derive(Clone)]
struct AikIdentity {
    handle: u32,
    auth: [u8; 20],
    modulus: Vec<u8>,
    ek_modulus: Vec<u8>,
}

/// The issuing half of the attestation plane.
pub struct QuoteIssuer {
    cfg: IssuerConfig,
    identities: Mutex<BTreeMap<InstanceId, AikIdentity>>,
    cache: Mutex<BTreeMap<(InstanceId, u64, u64), Arc<Evidence>>>,
    flights: Mutex<BTreeMap<InstanceId, Arc<Mutex<()>>>>,
    telemetry: Arc<AttestTelemetry>,
}

impl QuoteIssuer {
    /// New issuer with its own telemetry registry.
    pub fn new(cfg: IssuerConfig) -> Self {
        Self::with_telemetry(cfg, Arc::new(AttestTelemetry::new()))
    }

    /// New issuer folding into a shared telemetry registry.
    pub fn with_telemetry(cfg: IssuerConfig, telemetry: Arc<AttestTelemetry>) -> Self {
        QuoteIssuer {
            cfg,
            identities: Mutex::new(BTreeMap::new()),
            cache: Mutex::new(BTreeMap::new()),
            flights: Mutex::new(BTreeMap::new()),
            telemetry,
        }
    }

    /// The issuer's telemetry registry.
    pub fn telemetry(&self) -> &Arc<AttestTelemetry> {
        &self.telemetry
    }

    /// The configured selection, as quotes will cover it.
    pub fn selection(&self) -> PcrSelection {
        PcrSelection::of(&self.cfg.selection)
    }

    /// Nonce-window index for a timestamp under this issuer's config.
    pub fn window_of(&self, now_ns: u64) -> u64 {
        now_ns / self.cfg.window_ns
    }

    /// Enroll an instance whose TPM is *already owned*, creating and
    /// loading the attestation key under the given SRK auth. This is
    /// the path for guests that took ownership themselves and delegate
    /// quote signing to the platform's attestation agent.
    pub fn enroll_with_auths(
        &self,
        platform: &Platform,
        instance: InstanceId,
        srk_auth: &[u8; 20],
        key_auth: &[u8; 20],
    ) -> Result<(), IssueError> {
        let ek_modulus =
            platform.instance_ek_modulus(instance).ok_or(IssueError::UnknownInstance)?;
        let identity = platform
            .manager
            .with_instance(instance, |i| -> Result<AikIdentity, IssueError> {
                let mut c = TpmClient::new(
                    DirectTransport { tpm: &mut i.tpm, locality: 0 },
                    &[b"attest-enroll-", &instance.to_be_bytes()[..]].concat(),
                );
                let blob = c
                    .create_wrap_key(
                        tpm::handle::SRK,
                        srk_auth,
                        tpm::KeyUsage::Signing,
                        512,
                        key_auth,
                        None,
                    )
                    .map_err(|_| IssueError::Tpm("aik create"))?;
                let handle = c
                    .load_key2(tpm::handle::SRK, srk_auth, &blob)
                    .map_err(|_| IssueError::Tpm("aik load"))?;
                Ok(AikIdentity {
                    handle,
                    auth: *key_auth,
                    modulus: blob.n,
                    ek_modulus: ek_modulus.clone(),
                })
            })
            .ok_or(IssueError::UnknownInstance)??;
        self.identities.lock().insert(instance, identity);
        Ok(())
    }

    /// Toolstack-side provisioning for instances nobody has claimed:
    /// start the TPM if needed, take ownership with auths derived from
    /// the instance id, and enroll. Used by experiments and the farm
    /// harness where the attestation agent owns guest vTPM identity.
    pub fn provision(&self, platform: &Platform, instance: InstanceId) -> Result<(), IssueError> {
        let (owner, srk, key) = derive_auths(instance);
        platform
            .manager
            .with_instance(instance, |i| {
                let mut c = TpmClient::new(
                    DirectTransport { tpm: &mut i.tpm, locality: 0 },
                    &[b"attest-provision-", &instance.to_be_bytes()[..]].concat(),
                );
                // Both are no-ops on an already-started / already-owned
                // TPM; the enroll step below needs only a usable SRK.
                let _ = c.startup_clear();
                let _ = c.take_ownership(&owner, &srk);
            })
            .ok_or(IssueError::UnknownInstance)?;
        self.enroll_with_auths(platform, instance, &srk, &key)
    }

    /// Whether the instance has an enrolled identity.
    pub fn is_enrolled(&self, instance: InstanceId) -> bool {
        self.identities.lock().contains_key(&instance)
    }

    /// Issue (or fetch) the deep quote for `instance` in the window
    /// containing `now_ns`. Every caller of the same window sees the
    /// same `Arc` as long as the instance's PCR state has not moved.
    pub fn issue(
        &self,
        platform: &Platform,
        instance: InstanceId,
        now_ns: u64,
    ) -> Result<Arc<Evidence>, IssueError> {
        self.telemetry.note_requested();
        let window = self.window_of(now_ns);

        if self.cfg.cache {
            let generation = platform
                .manager
                .with_instance(instance, |i| i.tpm.state_generation())
                .ok_or(IssueError::UnknownInstance)?;
            if let Some(hit) = self.cache.lock().get(&(instance, generation, window)) {
                self.telemetry.note_cache_hit();
                return Ok(Arc::clone(hit));
            }
        }

        // Single-flight: one signing pass per instance at a time;
        // everyone else queues here and usually leaves via the cache.
        let flight =
            Arc::clone(self.flights.lock().entry(instance).or_insert_with(Default::default));
        let _in_flight = flight.lock();

        if self.cfg.cache {
            let generation = platform
                .manager
                .with_instance(instance, |i| i.tpm.state_generation())
                .ok_or(IssueError::UnknownInstance)?;
            if let Some(hit) = self.cache.lock().get(&(instance, generation, window)) {
                self.telemetry.note_coalesced();
                return Ok(Arc::clone(hit));
            }
        }

        let identity =
            self.identities.lock().get(&instance).cloned().ok_or(IssueError::NotEnrolled)?;
        let nonce = window_nonce(window);
        let sel = self.selection();

        let t0 = Instant::now();
        let (generation, values, vtpm_signature) = platform
            .manager
            .with_instance(instance, |i| -> Result<_, IssueError> {
                let mut c = TpmClient::new(
                    DirectTransport { tpm: &mut i.tpm, locality: 0 },
                    &[b"attest-quote-", &instance.to_be_bytes()[..]].concat(),
                );
                let (values, sig) = c
                    .quote(identity.handle, &identity.auth, &nonce, &sel)
                    .map_err(|_| IssueError::Tpm("vtpm quote"))?;
                // Read the generation under the same instance lock as
                // the quote: the cache key must describe exactly the
                // state the signature covers.
                Ok((i.tpm.state_generation(), values, sig))
            })
            .ok_or(IssueError::UnknownInstance)??;
        let t1 = Instant::now();
        let (hw_binding_pcr, hw_signature, hw_aik_modulus) = platform
            .hw_countersign(&nonce, &vtpm_signature)
            .map_err(|_| IssueError::Tpm("hw countersign"))?;
        let t2 = Instant::now();

        let evidence = Arc::new(Evidence {
            instance,
            window,
            quote: DeepQuote {
                vtpm_pcr_values: values,
                vtpm_selection: self.cfg.selection.clone(),
                vtpm_signature,
                vtpm_aik_modulus: identity.modulus.clone(),
                vtpm_ek_modulus: identity.ek_modulus.clone(),
                hw_binding_pcr,
                hw_signature,
                hw_aik_modulus,
                registration_log: platform.registration_log(),
            },
        });
        let t3 = Instant::now();

        if self.cfg.cache {
            let mut cache = self.cache.lock();
            // Windows roll forward only; anything older than the
            // previous window can never be served fresh again.
            cache.retain(|&(id, _, w), _| id != instance || w + 1 >= window);
            cache.insert((instance, generation, window), Arc::clone(&evidence));
        }

        self.telemetry.record_issue(QuoteSpanRecord {
            instance,
            window,
            generation,
            stage_ns: [
                (t1 - t0).as_nanos() as u64,
                (t2 - t1).as_nanos() as u64,
                (t3 - t2).as_nanos() as u64,
            ],
            total_ns: (t3 - t0).as_nanos() as u64,
        });
        Ok(evidence)
    }
}

/// Deterministic toolstack auth secrets for [`QuoteIssuer::provision`]:
/// (owner, srk, key usage) derived from the instance id.
fn derive_auths(instance: InstanceId) -> ([u8; 20], [u8; 20], [u8; 20]) {
    let one = |tag: &[u8]| -> [u8; 20] {
        let d = tpm_crypto::sha256(&[b"VTPM-ATTEST-AUTH/", tag, &instance.to_be_bytes()].concat());
        let mut a = [0u8; 20];
        a.copy_from_slice(&d[..20]);
        a
    };
    (one(b"owner"), one(b"srk"), one(b"key"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtpm::deep_quote;

    #[test]
    fn issue_caches_within_window_and_generation() {
        let p = Platform::improved(b"attest-issuer-1").unwrap();
        let g = p.launch_guest("a").unwrap();
        let issuer = QuoteIssuer::new(IssuerConfig::default());
        issuer.provision(&p, g.instance).unwrap();

        let e1 = issuer.issue(&p, g.instance, 10).unwrap();
        let e2 = issuer.issue(&p, g.instance, 20).unwrap();
        assert!(Arc::ptr_eq(&e1, &e2), "same window + same state → cached evidence");
        let s = issuer.telemetry().snapshot();
        assert_eq!((s.requested, s.signing_passes, s.cache_hits), (2, 1, 1));

        // The evidence itself verifies against the window nonce.
        deep_quote::verify(&e1.quote, &window_nonce(e1.window)).unwrap();
    }

    #[test]
    fn window_roll_forces_new_signing_pass() {
        let p = Platform::improved(b"attest-issuer-2").unwrap();
        let g = p.launch_guest("a").unwrap();
        let issuer = QuoteIssuer::new(IssuerConfig::default());
        issuer.provision(&p, g.instance).unwrap();

        let e1 = issuer.issue(&p, g.instance, 10).unwrap();
        let e2 = issuer.issue(&p, g.instance, 10 + 1_000_000_000).unwrap();
        assert_ne!(e1.window, e2.window);
        assert_ne!(*e1, *e2);
        assert_eq!(issuer.telemetry().snapshot().signing_passes, 2);
    }

    #[test]
    fn pcr_extend_between_quotes_misses_cache() {
        let p = Platform::improved(b"attest-issuer-3").unwrap();
        let mut g = p.launch_guest("a").unwrap();
        let issuer = QuoteIssuer::new(IssuerConfig::default());
        issuer.provision(&p, g.instance).unwrap();

        let e1 = issuer.issue(&p, g.instance, 10).unwrap();
        // The guest extends a measured PCR: the permanent-state
        // generation bumps, so the cached quote no longer describes
        // the live state and MUST not be served again.
        let mut c = g.client(b"extend");
        c.extend(0, &[0x5A; 20]).unwrap();
        let e2 = issuer.issue(&p, g.instance, 20).unwrap();
        assert!(!Arc::ptr_eq(&e1, &e2), "extend must invalidate the cache");
        assert_ne!(e1.quote.vtpm_pcr_values, e2.quote.vtpm_pcr_values);
        let s = issuer.telemetry().snapshot();
        assert_eq!((s.signing_passes, s.cache_hits), (2, 0));
        // Both quotes verify — each against the same window nonce,
        // each over its own PCR state.
        deep_quote::verify(&e1.quote, &window_nonce(e1.window)).unwrap();
        deep_quote::verify(&e2.quote, &window_nonce(e2.window)).unwrap();
    }

    #[test]
    fn cache_disabled_pays_rsa_every_time() {
        let p = Platform::improved(b"attest-issuer-4").unwrap();
        let g = p.launch_guest("a").unwrap();
        let issuer =
            QuoteIssuer::new(IssuerConfig { cache: false, ..IssuerConfig::default() });
        issuer.provision(&p, g.instance).unwrap();
        issuer.issue(&p, g.instance, 10).unwrap();
        issuer.issue(&p, g.instance, 20).unwrap();
        let s = issuer.telemetry().snapshot();
        assert_eq!((s.signing_passes, s.cache_hits, s.coalesced), (2, 0, 0));
    }

    #[test]
    fn concurrent_requests_coalesce_into_one_signing_pass() {
        let p = Platform::improved(b"attest-issuer-5").unwrap();
        let g = p.launch_guest("a").unwrap();
        let issuer = QuoteIssuer::new(IssuerConfig::default());
        issuer.provision(&p, g.instance).unwrap();

        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| issuer.issue(&p, g.instance, 50).unwrap());
            }
        });
        let s = issuer.telemetry().snapshot();
        assert_eq!(s.requested, 8);
        assert_eq!(s.signing_passes, 1, "one pass serves the whole storm");
        assert_eq!(s.cache_hits + s.coalesced, 7);
    }

    #[test]
    fn unknown_and_unenrolled_instances_refused() {
        let p = Platform::improved(b"attest-issuer-6").unwrap();
        let g = p.launch_guest("a").unwrap();
        let issuer = QuoteIssuer::new(IssuerConfig::default());
        assert_eq!(issuer.issue(&p, 9999, 0), Err(IssueError::UnknownInstance));
        assert_eq!(issuer.issue(&p, g.instance, 0), Err(IssueError::NotEnrolled));
    }
}
