//! The verifying half of the plane: a pool that absorbs batches of
//! submitted evidence and judges each against chain validity,
//! freshness, replay history, and per-verifier admission control.
//!
//! Chain verification (two RSA public operations plus a log replay) is
//! amortized with a digest-keyed memo: identical evidence — the common
//! case when thousands of verifiers fetch the same cached quote — is
//! cryptographically checked once per pool. The memo key is the SHA-256
//! of the *encoded blob*, so evidence that differs anywhere (a wrong EK
//! modulus, a tampered log entry, one flipped signature byte) has a
//! different digest and is judged entirely on its own; a bad chain can
//! never ride a good chain's memo entry through a batch.
//!
//! Policy refusals that matter to the access-control story — stale
//! quotes outside the freshness window and replay-ledger hits — are
//! folded into the platform's per-reason deny counters and the
//! tamper-evident audit hash chain, exactly like the request-path
//! denials the hook produces.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use tpm::ordinal;
use vtpm::deep_quote::{self, DeepQuoteError};
use vtpm::{AdmissionConfig, AdmissionController, DenyReason};
use vtpm_ac::{AuditLog, AuditOutcome};
use vtpm_telemetry::{AttestTelemetry, Telemetry};

use crate::wire::{window_nonce, Evidence, WireError};
use crate::AttestEvent;

/// How one submission was judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Chain valid, fresh, first presentation: trust the PCR claim.
    Accepted,
    /// Issued in a nonce-window older than the freshness policy allows
    /// (or claiming a window from the future).
    Stale,
    /// This verifier already presented exactly this evidence.
    Replayed,
    /// The cryptographic chain failed (signature, log replay, or EK
    /// registration).
    BadChain(DeepQuoteError),
    /// The hardware AIK is not in the pool's trust set.
    UntrustedHwAik,
    /// The attested PCR values do not match the golden measurement.
    MeasurementMismatch,
    /// The blob did not parse as evidence.
    Malformed(WireError),
    /// The submitting verifier is throttled by admission control.
    Throttled,
}

impl Verdict {
    /// Stable numeric code, as carried on [`AttestEvent`]s.
    pub fn code(&self) -> u8 {
        match self {
            Verdict::Accepted => 0,
            Verdict::Stale => 1,
            Verdict::Replayed => 2,
            Verdict::BadChain(_) => 3,
            Verdict::UntrustedHwAik => 4,
            Verdict::MeasurementMismatch => 5,
            Verdict::Malformed(_) => 6,
            Verdict::Throttled => 7,
        }
    }

    /// Whether the submission was accepted.
    pub fn accepted(&self) -> bool {
        matches!(self, Verdict::Accepted)
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Accepted => f.write_str("accepted"),
            Verdict::Stale => f.write_str("stale (outside freshness window)"),
            Verdict::Replayed => f.write_str("replayed"),
            Verdict::BadChain(e) => write!(f, "bad chain ({e:?})"),
            Verdict::UntrustedHwAik => f.write_str("untrusted hardware aik"),
            Verdict::MeasurementMismatch => f.write_str("measurement mismatch"),
            Verdict::Malformed(e) => write!(f, "malformed ({e})"),
            Verdict::Throttled => f.write_str("throttled"),
        }
    }
}

/// One piece of evidence as a verifier presents it: raw wire bytes plus
/// the submitting verifier's identity.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Verifier identity (admission-control and replay-ledger key).
    pub verifier: u32,
    /// Encoded [`Evidence`] blob.
    pub bytes: Vec<u8>,
}

impl Submission {
    /// Wrap already-decoded evidence for submission.
    pub fn from_evidence(verifier: u32, evidence: &Evidence) -> Self {
        Submission { verifier, bytes: evidence.encode() }
    }
}

/// Verifier-pool policy.
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// Nonce-window width (must match the issuer's).
    pub window_ns: u64,
    /// Maximum age, in windows, of acceptable evidence. With the
    /// default of 2, evidence from the current and previous window
    /// passes; anything older is [`Verdict::Stale`].
    pub freshness_windows: u64,
    /// Per-verifier admission control (disabled by default, like the
    /// manager's ring-ingress throttle).
    pub admission: AdmissionConfig,
    /// Expected PCR values for accepted quotes, when the relying party
    /// pins a golden measurement.
    pub golden_pcrs: Option<Vec<[u8; 20]>>,
    /// Chain-memo entry cap; the memo is cleared when it grows past
    /// this (bounds memory under adversarial unique-blob floods).
    pub memo_cap: usize,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            window_ns: 1_000_000_000,
            freshness_windows: 2,
            admission: AdmissionConfig::default(),
            golden_pcrs: None,
            memo_cap: 4096,
        }
    }
}

/// The verifying service: batch verification with a chain memo, a
/// freshness-window policy, a `(verifier, evidence)` replay ledger, and
/// per-verifier admission control.
pub struct VerifierPool {
    cfg: VerifierConfig,
    /// Chain-verification memo keyed on evidence digest.
    memo: Mutex<BTreeMap<[u8; 32], Result<(), DeepQuoteError>>>,
    /// Every `(verifier, evidence digest)` ever accepted or judged.
    ledger: Mutex<BTreeSet<(u32, [u8; 32])>>,
    /// Hardware AIK moduli the pool trusts. Empty set = trust-on-parse
    /// (chain validity alone decides), for deployments that pin trust
    /// via the golden measurement instead.
    trusted_hw_aiks: Mutex<BTreeSet<Vec<u8>>>,
    admission: AdmissionController,
    events: Mutex<Vec<AttestEvent>>,
    attest: Arc<AttestTelemetry>,
    telemetry: Option<Arc<Telemetry>>,
    audit: Option<Arc<AuditLog>>,
}

impl VerifierPool {
    /// New pool with its own attestation-telemetry registry.
    pub fn new(cfg: VerifierConfig) -> Self {
        Self::with_telemetry(cfg, Arc::new(AttestTelemetry::new()))
    }

    /// New pool folding into a shared attestation-telemetry registry
    /// (typically the issuer's, so R-A1 reads one snapshot).
    pub fn with_telemetry(cfg: VerifierConfig, attest: Arc<AttestTelemetry>) -> Self {
        let admission = AdmissionController::new(cfg.admission.clone());
        VerifierPool {
            cfg,
            memo: Mutex::new(BTreeMap::new()),
            ledger: Mutex::new(BTreeSet::new()),
            trusted_hw_aiks: Mutex::new(BTreeSet::new()),
            admission,
            events: Mutex::new(Vec::new()),
            attest,
            telemetry: None,
            audit: None,
        }
    }

    /// Fold policy refusals into a platform telemetry registry (the
    /// per-reason deny counters).
    pub fn attach_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Chain policy refusals into a tamper-evident audit log.
    pub fn attach_audit(&mut self, audit: Arc<AuditLog>) {
        self.audit = Some(audit);
    }

    /// The pool's attestation-telemetry registry.
    pub fn telemetry(&self) -> &Arc<AttestTelemetry> {
        &self.attest
    }

    /// Pin a trusted hardware AIK modulus. Once any is pinned, chains
    /// countersigned by an unknown hardware AIK are refused.
    pub fn trust_hw_aik(&self, modulus: &[u8]) {
        self.trusted_hw_aiks.lock().insert(modulus.to_vec());
    }

    /// The admission controller (for closed-loop wiring: the harness
    /// translates sentinel quote-storm alerts into throttles here).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Throttle a verifier (sentinel closed loop). Returns whether the
    /// verifier was newly throttled.
    pub fn throttle_verifier(&self, verifier: u32) -> bool {
        self.admission.throttle(verifier)
    }

    /// Whether a verifier is currently throttled.
    pub fn is_throttled(&self, verifier: u32) -> bool {
        self.admission.is_throttled(verifier)
    }

    /// Drain the pool's verification-outcome event stream (the
    /// sentinel feed).
    pub fn drain_events(&self) -> Vec<AttestEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Verify a whole batch, one verdict per submission in order.
    pub fn verify_batch(&self, batch: &[Submission], now_ns: u64) -> Vec<Verdict> {
        self.attest.note_batch(batch.len() as u64);
        batch.iter().map(|s| self.verify_one(s, now_ns)).collect()
    }

    /// Verify one submission at (virtual) time `now_ns`.
    pub fn verify_one(&self, submission: &Submission, now_ns: u64) -> Verdict {
        let t0 = Instant::now();
        let verdict = self.judge(submission, now_ns);
        self.attest.note_verify(verdict.accepted(), t0.elapsed().as_nanos() as u64);
        self.admission.record_outcome(submission.verifier, !verdict.accepted());

        let (instance, digest) = match Evidence::decode(&submission.bytes) {
            Ok(e) => (e.instance, e.digest()),
            Err(_) => (0, tpm_crypto::sha256(&submission.bytes)),
        };
        match verdict {
            Verdict::Stale => self.note_refusal(DenyReason::StaleQuote, &digest, submission, instance, now_ns),
            Verdict::Replayed => self.note_refusal(DenyReason::QuoteReplay, &digest, submission, instance, now_ns),
            _ => {}
        }
        self.events.lock().push(AttestEvent {
            verifier: submission.verifier,
            instance,
            at_ns: now_ns,
            verdict: verdict.code(),
        });
        verdict
    }

    fn judge(&self, submission: &Submission, now_ns: u64) -> Verdict {
        if self.admission.admit(submission.verifier).is_err() {
            return Verdict::Throttled;
        }
        let evidence = match Evidence::decode(&submission.bytes) {
            Ok(e) => e,
            Err(e) => return Verdict::Malformed(e),
        };

        // Freshness: the claimed window must be the current one or at
        // most `freshness_windows - 1` behind it — and never ahead of
        // the verifier's clock.
        let current = now_ns / self.cfg.window_ns;
        if evidence.window > current
            || current - evidence.window >= self.cfg.freshness_windows
        {
            return Verdict::Stale;
        }

        // Chain validity, memoized on the content digest. The nonce is
        // recomputed from the *claimed* window, so a blob re-labelled
        // with a fresher window fails its signature check here.
        let digest = evidence.digest();
        let chain = {
            let cached = self.memo.lock().get(&digest).copied();
            match cached {
                Some(r) => r,
                None => {
                    let r = deep_quote::verify(&evidence.quote, &window_nonce(evidence.window));
                    let mut memo = self.memo.lock();
                    if memo.len() >= self.cfg.memo_cap {
                        memo.clear();
                    }
                    memo.insert(digest, r);
                    r
                }
            }
        };
        if let Err(e) = chain {
            return Verdict::BadChain(e);
        }

        {
            let trusted = self.trusted_hw_aiks.lock();
            if !trusted.is_empty() && !trusted.contains(&evidence.quote.hw_aik_modulus) {
                return Verdict::UntrustedHwAik;
            }
        }

        if let Some(golden) = &self.cfg.golden_pcrs {
            if &evidence.quote.vtpm_pcr_values != golden {
                return Verdict::MeasurementMismatch;
            }
        }

        // Replay ledger: one presentation per (verifier, evidence).
        // Insert-last so only otherwise-acceptable evidence is burned.
        if !self.ledger.lock().insert((submission.verifier, digest)) {
            return Verdict::Replayed;
        }
        Verdict::Accepted
    }

    /// Fold a stale/replay refusal into the per-reason deny counters
    /// and the audit hash chain.
    fn note_refusal(
        &self,
        reason: DenyReason,
        digest: &[u8; 32],
        submission: &Submission,
        instance: u32,
        now_ns: u64,
    ) {
        if let Some(t) = &self.telemetry {
            t.note_protocol_deny(reason.code());
        }
        if let Some(audit) = &self.audit {
            let request_id = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"));
            audit.record(
                now_ns,
                request_id,
                submission.verifier,
                instance,
                ordinal::QUOTE,
                AuditOutcome::Denied(reason),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::issuer::{IssuerConfig, QuoteIssuer};
    use vtpm::Platform;

    fn farm() -> (vtpm::Platform, u32, QuoteIssuer) {
        let p = Platform::improved(b"attest-verifier").unwrap();
        let g = p.launch_guest("a").unwrap();
        let issuer = QuoteIssuer::new(IssuerConfig::default());
        issuer.provision(&p, g.instance).unwrap();
        (p, g.instance, issuer)
    }

    #[test]
    fn issued_evidence_is_accepted_once_and_replay_refused() {
        let (p, inst, issuer) = farm();
        let pool = VerifierPool::new(VerifierConfig::default());
        let e = issuer.issue(&p, inst, 10).unwrap();
        let sub = Submission::from_evidence(1, &e);
        assert_eq!(pool.verify_one(&sub, 10), Verdict::Accepted);
        assert_eq!(pool.verify_one(&sub, 20), Verdict::Replayed);
        // A different verifier presenting the same evidence is fine:
        // the ledger is per-verifier.
        assert_eq!(pool.verify_one(&Submission { verifier: 2, ..sub.clone() }, 20), Verdict::Accepted);
        let s = pool.telemetry().snapshot();
        assert_eq!((s.verified, s.accepted, s.refused), (3, 2, 1));
    }

    #[test]
    fn stale_window_refused_fresh_window_accepted() {
        let (p, inst, issuer) = farm();
        let pool = VerifierPool::new(VerifierConfig::default());
        let e = issuer.issue(&p, inst, 10).unwrap();
        let sub = Submission::from_evidence(1, &e);
        // Two windows later (freshness_windows = 2): stale.
        assert_eq!(pool.verify_one(&sub, 2_000_000_010), Verdict::Stale);
        // One window later: still fresh.
        assert_eq!(pool.verify_one(&sub, 1_000_000_010), Verdict::Accepted);
        // Claimed window ahead of the verifier clock would need a
        // time-traveling issuer: also stale.
        let mut future = e.as_ref().clone();
        future.window += 50;
        assert_eq!(
            pool.verify_one(&Submission::from_evidence(1, &future), 10),
            Verdict::Stale
        );
    }

    #[test]
    fn relabelled_window_fails_signature_not_freshness() {
        let (p, inst, issuer) = farm();
        let pool = VerifierPool::new(VerifierConfig::default());
        let e = issuer.issue(&p, inst, 10).unwrap();
        // Attacker "refreshes" stale evidence by bumping the claimed
        // window. The verifier recomputes the nonce from that window,
        // so the vTPM signature no longer verifies.
        let mut fresh = e.as_ref().clone();
        fresh.window += 1;
        assert_eq!(
            pool.verify_one(&Submission::from_evidence(1, &fresh), 1_000_000_010),
            Verdict::BadChain(DeepQuoteError::BadVtpmSignature)
        );
    }

    #[test]
    fn wrong_ek_chain_fails_inside_an_otherwise_valid_batch() {
        let (p, inst, issuer) = farm();
        let pool = VerifierPool::new(VerifierConfig::default());
        let e = issuer.issue(&p, inst, 10).unwrap();
        let mut spoofed = e.as_ref().clone();
        // Swap in an EK that is not in the registration log.
        spoofed.quote.vtpm_ek_modulus = vec![0x42; spoofed.quote.vtpm_ek_modulus.len()];
        let batch = vec![
            Submission::from_evidence(1, &e),
            Submission::from_evidence(2, &spoofed),
            Submission::from_evidence(3, &e),
        ];
        let verdicts = pool.verify_batch(&batch, 10);
        assert_eq!(verdicts[0], Verdict::Accepted);
        assert_eq!(verdicts[1], Verdict::BadChain(DeepQuoteError::UnregisteredInstance));
        assert_eq!(verdicts[2], Verdict::Accepted);
        assert_eq!(pool.telemetry().snapshot().batch_size.max, 3);
    }

    #[test]
    fn untrusted_hw_aik_refused_once_trust_is_pinned() {
        let (p, inst, issuer) = farm();
        let pool = VerifierPool::new(VerifierConfig::default());
        let e = issuer.issue(&p, inst, 10).unwrap();
        pool.trust_hw_aik(&[0xEE; 64]);
        assert_eq!(
            pool.verify_one(&Submission::from_evidence(1, &e), 10),
            Verdict::UntrustedHwAik
        );
        pool.trust_hw_aik(&e.quote.hw_aik_modulus);
        assert_eq!(pool.verify_one(&Submission::from_evidence(1, &e), 10), Verdict::Accepted);
    }

    #[test]
    fn golden_measurement_mismatch_refused() {
        let (p, inst, issuer) = farm();
        let e = issuer.issue(&p, inst, 10).unwrap();
        let pool = VerifierPool::new(VerifierConfig {
            golden_pcrs: Some(vec![[0xAB; 20]; e.quote.vtpm_pcr_values.len()]),
            ..VerifierConfig::default()
        });
        assert_eq!(
            pool.verify_one(&Submission::from_evidence(1, &e), 10),
            Verdict::MeasurementMismatch
        );
        let pool = VerifierPool::new(VerifierConfig {
            golden_pcrs: Some(e.quote.vtpm_pcr_values.clone()),
            ..VerifierConfig::default()
        });
        assert_eq!(pool.verify_one(&Submission::from_evidence(1, &e), 10), Verdict::Accepted);
    }

    #[test]
    fn malformed_bytes_refused_without_panic() {
        let pool = VerifierPool::new(VerifierConfig::default());
        let v = pool.verify_one(&Submission { verifier: 1, bytes: vec![1, 2, 3] }, 0);
        assert!(matches!(v, Verdict::Malformed(_)));
    }

    #[test]
    fn throttled_verifier_refused_and_released() {
        let (p, inst, issuer) = farm();
        let pool = VerifierPool::new(VerifierConfig {
            admission: AdmissionConfig { enabled: true, ..AdmissionConfig::default() },
            ..VerifierConfig::default()
        });
        assert!(pool.throttle_verifier(9));
        let e = issuer.issue(&p, inst, 10).unwrap();
        assert_eq!(
            pool.verify_one(&Submission::from_evidence(9, &e), 10),
            Verdict::Throttled
        );
        // An unthrottled verifier sails through.
        assert_eq!(pool.verify_one(&Submission::from_evidence(8, &e), 10), Verdict::Accepted);
    }

    #[test]
    fn refusals_hit_deny_counters_and_audit_chain() {
        let (p, inst, issuer) = farm();
        let mut pool = VerifierPool::new(VerifierConfig::default());
        let telemetry = Arc::new(Telemetry::new());
        let audit = Arc::new(AuditLog::new());
        pool.attach_telemetry(Arc::clone(&telemetry));
        pool.attach_audit(Arc::clone(&audit));

        let e = issuer.issue(&p, inst, 10).unwrap();
        let sub = Submission::from_evidence(1, &e);
        assert_eq!(pool.verify_one(&sub, 10), Verdict::Accepted);
        assert_eq!(pool.verify_one(&sub, 20), Verdict::Replayed);
        assert_eq!(pool.verify_one(&sub, 5_000_000_000), Verdict::Stale);

        let snap = telemetry.snapshot();
        assert_eq!(
            snap.deny_reasons[DenyReason::QuoteReplay.code() as usize],
            ("quote-replay", 1)
        );
        assert_eq!(
            snap.deny_reasons[DenyReason::StaleQuote.code() as usize],
            ("stale-quote", 1)
        );

        assert_eq!(audit.denials(), 2);
        let entries = audit.entries();
        assert!(entries
            .iter()
            .any(|d| d.outcome == AuditOutcome::Denied(DenyReason::QuoteReplay)));
        assert!(entries
            .iter()
            .any(|d| d.outcome == AuditOutcome::Denied(DenyReason::StaleQuote)));
        assert!(AuditLog::verify(&entries), "audit hash chain must stay intact");
    }

    #[test]
    fn chain_memo_amortizes_identical_evidence() {
        let (p, inst, issuer) = farm();
        let pool = VerifierPool::new(VerifierConfig::default());
        let e = issuer.issue(&p, inst, 10).unwrap();
        for v in 0..32 {
            assert_eq!(
                pool.verify_one(&Submission::from_evidence(v, &e), 10),
                Verdict::Accepted
            );
        }
        assert_eq!(pool.memo.lock().len(), 1, "one memo entry serves the whole fan-out");
    }

    #[test]
    fn events_report_every_outcome() {
        let (p, inst, issuer) = farm();
        let pool = VerifierPool::new(VerifierConfig::default());
        let e = issuer.issue(&p, inst, 10).unwrap();
        let sub = Submission::from_evidence(1, &e);
        pool.verify_one(&sub, 10);
        pool.verify_one(&sub, 20);
        let events = pool.drain_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], AttestEvent { verifier: 1, instance: inst, at_ns: 10, verdict: 0 });
        assert_eq!(events[1].verdict, Verdict::Replayed.code());
        assert!(pool.drain_events().is_empty());
    }
}
