//! # vtpm-attest
//!
//! The cloud-scale attestation plane: deep-quote issuance and
//! verification as a high-volume service, built on the hardware-rooted
//! binding protocol in `vtpm::deep_quote`.
//!
//! A farm of guests is useless to a relying party unless quotes can be
//! *checked* at the rate verifiers ask for them — and a naive design
//! pays two RSA private operations (the instance vTPM quote plus the
//! hardware countersign) for every single request. This crate splits
//! the plane into two halves:
//!
//! * **Issuer** ([`QuoteIssuer`]) — deep quotes are issued against
//!   *nonce-windows* (`window = now_ns / window_ns`, nonce derived
//!   from the window index), so every verifier asking during the same
//!   window receives the same evidence. Concurrent requests against
//!   one instance coalesce behind a per-instance single-flight lock
//!   into one signing pass, and issued quotes are cached keyed on
//!   `(instance, PCR-state generation, window)` — an unchanged PCR
//!   state never pays RSA twice, while any PCR-extending command bumps
//!   the permanent-state generation counter and invalidates the entry
//!   automatically.
//! * **Verifier** ([`VerifierPool`]) — batch-verifies submitted quote
//!   chains (vTPM AIK → registration log → hardware AIK), amortizing
//!   chain verification across identical evidence via a digest-keyed
//!   memo (a chain that differs anywhere — wrong EK, tampered log —
//!   has a different digest and is judged on its own), enforces a
//!   configurable freshness-window policy, and keeps a `(verifier,
//!   evidence)` replay ledger so a re-presented quote is refused with
//!   an audited per-reason denial. Per-verifier admission control
//!   (same EWMA machinery as the manager's ring-ingress throttle)
//!   closes the loop with the sentinel's quote-storm detector.
//!
//! Evidence crosses the wire as a strict, self-delimiting encoding
//! ([`Evidence::encode`]/[`Evidence::decode`]): trailing bytes and
//! malformed chains are rejected outright, mirroring the
//! `MigrationPackage` hygiene rules.

mod issuer;
mod verifier;
mod wire;

pub use issuer::{IssueError, IssuerConfig, QuoteIssuer};
pub use verifier::{Submission, Verdict, VerifierConfig, VerifierPool};
pub use wire::{window_nonce, Evidence, WireError};

/// One verification outcome, as the pool's drainable event stream
/// reports it: who submitted, what they submitted, when, and how it
/// was judged. The harness bridges these into sentinel
/// `StreamEvent::Attest` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttestEvent {
    /// Verifier identity that submitted the evidence.
    pub verifier: u32,
    /// Instance the evidence claims (0 when it never decoded).
    pub instance: u32,
    /// Caller-supplied timestamp of the verification (virtual ns).
    pub at_ns: u64,
    /// Verdict code, per [`Verdict::code`].
    pub verdict: u8,
}
