//! The hypervisor: one value tying together memory, domains, grants,
//! event channels, XenStore and the scheduler, with Xen's privilege rules
//! enforced at the API boundary.
//!
//! The struct is internally synchronized (fine-grained locks per
//! subsystem) so `Arc<Hypervisor>` can be shared by frontend threads, the
//! multi-threaded vTPM manager, and attacker threads concurrently — the
//! concurrency shape of a real host.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock};

use crate::clock::VirtualClock;
use crate::domain::{Domain, DomainConfig, DomainId, DomainState};
use crate::error::{Result, XenError};
use crate::event::EventChannels;
use crate::fault::{FaultState, RingFault, WriteCrash};
use crate::grant::{GrantAccess, GrantRef, GrantTables};
use crate::memory::{MachineMemory, PageProtection, PAGE_SIZE};
use crate::sched::CreditScheduler;
use crate::xenstore::{Perms, WatchEvent, XenStore};

/// A serialized domain: what `xm save` produces and migration ships.
///
/// Note what it contains: *every normal page in cleartext*. Saving a
/// domain is itself a memory-dump primitive — one of the reasons the
/// paper's improved vTPM never lets instance secrets live in guest-visible
/// or Dom0-visible pages.
#[derive(Debug, Clone)]
pub struct DomainImage {
    /// Original name.
    pub name: String,
    /// vcpus configured.
    pub vcpus: u32,
    /// Scheduler weight.
    pub weight: u32,
    /// Page contents in pseudo-physical order.
    pub pages: Vec<[u8; PAGE_SIZE]>,
}

/// One dumped frame: (mfn, owner, contents).
pub type DumpedFrame = (usize, DomainId, Box<[u8; PAGE_SIZE]>);

/// One recorded use of the dump facility. Real hypervisors leave a
/// trace of `xc_map_foreign_range` in `xl dmesg`; this is the simulated
/// equivalent — the structural signal the sentinel's dump-signature
/// detector keys on. Ordinary guest/manager traffic never dumps, so any
/// entry with `foreign_frames > 0` is a cross-domain memory read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DumpEvent {
    /// Virtual time of the call.
    pub at_ns: u64,
    /// Domain that invoked the dump.
    pub caller: DomainId,
    /// Frames returned in total.
    pub frames: u64,
    /// Frames owned by a domain other than the caller (Dom0's
    /// foreign-mapping reach; always 0 for a plain guest).
    pub foreign_frames: u64,
}

/// The simulated host.
pub struct Hypervisor {
    /// Virtual time for this host.
    pub clock: VirtualClock,
    /// Event channels (already internally shared).
    pub events: EventChannels,
    memory: RwLock<MachineMemory>,
    domains: RwLock<HashMap<DomainId, Domain>>,
    grants: Mutex<GrantTables>,
    xenstore: Mutex<XenStore>,
    sched: Mutex<CreditScheduler>,
    next_domid: AtomicU32,
    /// Injected-fault state (chaos harness); `faults_armed` keeps the
    /// write hot path lock-free while nothing is armed.
    fault: Mutex<FaultState>,
    faults_armed: AtomicBool,
    /// Monotonic count of attempted Dom0 `page_write` calls. The crash
    /// harness uses deltas of this to enumerate "between any two mirror
    /// page writes" crash points.
    dom0_writes: AtomicU64,
    /// Every use of the dump facility, in call order (see [`DumpEvent`]).
    dump_log: Mutex<Vec<DumpEvent>>,
}

impl Hypervisor {
    /// Boot a host with `total_frames` frames of RAM. Dom0 is created
    /// automatically with `dom0_pages` pages.
    pub fn boot(total_frames: usize, dom0_pages: usize) -> Result<Self> {
        let hv = Hypervisor {
            clock: VirtualClock::new(),
            events: EventChannels::new(),
            memory: RwLock::new(MachineMemory::new(total_frames)),
            domains: RwLock::new(HashMap::new()),
            grants: Mutex::new(GrantTables::new()),
            xenstore: Mutex::new(XenStore::new()),
            sched: Mutex::new(CreditScheduler::new()),
            next_domid: AtomicU32::new(1),
            fault: Mutex::new(FaultState::default()),
            faults_armed: AtomicBool::new(false),
            dom0_writes: AtomicU64::new(0),
            dump_log: Mutex::new(Vec::new()),
        };
        let frames = hv.memory.write().alloc_frames(DomainId::DOM0, dom0_pages)?;
        hv.domains.write().insert(
            DomainId::DOM0,
            Domain {
                id: DomainId::DOM0,
                name: "Domain-0".to_string(),
                state: DomainState::Running,
                frames,
                vcpus: 1,
                weight: 256,
                cpu_time_ns: 0,
            },
        );
        hv.sched.lock().add_domain(DomainId::DOM0, 256);
        hv.xenstore.lock().write(DomainId::DOM0, "/local/domain/0/name", b"Domain-0")?;
        Ok(hv)
    }

    fn require_dom0(&self, caller: DomainId) -> Result<()> {
        if caller.is_dom0() {
            Ok(())
        } else {
            Err(XenError::NotPrivileged(caller))
        }
    }

    fn require_alive(&self, id: DomainId) -> Result<()> {
        let domains = self.domains.read();
        let d = domains.get(&id).ok_or(XenError::NoSuchDomain(id))?;
        if d.is_alive() {
            Ok(())
        } else {
            Err(XenError::BadDomainState(id, "not alive"))
        }
    }

    // ---- domain lifecycle -------------------------------------------------

    /// Create a guest domain (Dom0-only, like the toolstack).
    pub fn create_domain(&self, caller: DomainId, cfg: DomainConfig) -> Result<DomainId> {
        self.require_dom0(caller)?;
        {
            let domains = self.domains.read();
            if domains.values().any(|d| d.name == cfg.name) {
                return Err(XenError::BadDomainState(DomainId(0), "duplicate name"));
            }
        }
        let id = DomainId(self.next_domid.fetch_add(1, Ordering::Relaxed));
        let frames = self.memory.write().alloc_frames(id, cfg.memory_pages)?;
        self.domains.write().insert(
            id,
            Domain {
                id,
                name: cfg.name.clone(),
                state: DomainState::Running,
                frames,
                vcpus: cfg.vcpus,
                weight: cfg.weight,
                cpu_time_ns: 0,
            },
        );
        self.sched.lock().add_domain(id, cfg.weight);
        // Provision the XenStore home directory, owned by the guest.
        let mut xs = self.xenstore.lock();
        let home = format!("/local/domain/{}", id.0);
        xs.write(DomainId::DOM0, &home, b"")?;
        xs.set_perms(DomainId::DOM0, &home, Perms::private(id))?;
        xs.write(DomainId::DOM0, &format!("{home}/name"), cfg.name.as_bytes())?;
        Ok(id)
    }

    /// Destroy a domain: frames scrubbed and freed, grants severed, event
    /// channels closed, XenStore home removed.
    pub fn destroy_domain(&self, caller: DomainId, id: DomainId) -> Result<()> {
        self.require_dom0(caller)?;
        if id.is_dom0() {
            return Err(XenError::BadDomainState(id, "cannot destroy Dom0"));
        }
        let frames = {
            let mut domains = self.domains.write();
            let d = domains.get_mut(&id).ok_or(XenError::NoSuchDomain(id))?;
            d.state = DomainState::Dead;
            std::mem::take(&mut d.frames)
        };
        {
            let mut mem = self.memory.write();
            for mfn in frames {
                // Frames may have been grant-transferred away; ignore those.
                if mem.owner(mfn) == Ok(id) {
                    mem.free_frame(mfn)?;
                }
            }
        }
        self.grants.lock().purge_domain(id);
        self.events.purge_domain(id);
        self.xenstore.lock().purge_domain(id);
        self.sched.lock().remove_domain(id);
        self.domains.write().remove(&id);
        Ok(())
    }

    /// Pause a running domain.
    pub fn pause_domain(&self, caller: DomainId, id: DomainId) -> Result<()> {
        self.require_dom0(caller)?;
        let mut domains = self.domains.write();
        let d = domains.get_mut(&id).ok_or(XenError::NoSuchDomain(id))?;
        match d.state {
            DomainState::Running => {
                d.state = DomainState::Paused;
                Ok(())
            }
            _ => Err(XenError::BadDomainState(id, "not running")),
        }
    }

    /// Unpause a paused domain.
    pub fn unpause_domain(&self, caller: DomainId, id: DomainId) -> Result<()> {
        self.require_dom0(caller)?;
        let mut domains = self.domains.write();
        let d = domains.get_mut(&id).ok_or(XenError::NoSuchDomain(id))?;
        match d.state {
            DomainState::Paused => {
                d.state = DomainState::Running;
                Ok(())
            }
            _ => Err(XenError::BadDomainState(id, "not paused")),
        }
    }

    /// Snapshot of a domain record.
    pub fn domain_info(&self, id: DomainId) -> Result<Domain> {
        self.domains.read().get(&id).cloned().ok_or(XenError::NoSuchDomain(id))
    }

    /// Look up a domain id by name.
    pub fn domain_by_name(&self, name: &str) -> Option<DomainId> {
        self.domains.read().values().find(|d| d.name == name).map(|d| d.id)
    }

    /// All live domain ids, sorted.
    pub fn list_domains(&self) -> Vec<DomainId> {
        let mut v: Vec<DomainId> = self.domains.read().keys().copied().collect();
        v.sort_unstable();
        v
    }

    // ---- memory -----------------------------------------------------------

    /// Allocate extra frames for `owner` (driver buffers etc.).
    pub fn alloc_pages(&self, owner: DomainId, n: usize) -> Result<Vec<usize>> {
        self.require_alive(owner)?;
        let frames = self.memory.write().alloc_frames(owner, n)?;
        self.domains.write().get_mut(&owner).expect("alive").frames.extend(&frames);
        Ok(frames)
    }

    /// Write into a frame as `caller`; the frame must be owned by the
    /// caller (mapped-grant writes go through [`Hypervisor::grant_write`]).
    pub fn page_write(&self, caller: DomainId, mfn: usize, off: usize, data: &[u8]) -> Result<()> {
        if caller.is_dom0() {
            self.dom0_writes.fetch_add(1, Ordering::Relaxed);
        }
        if self.faults_armed.load(Ordering::Relaxed) {
            self.check_write_fault(caller)?;
        }
        let mut mem = self.memory.write();
        if mem.owner(mfn)? != caller {
            return Err(XenError::BadFrame);
        }
        mem.write(mfn, off, data)
    }

    /// Consult the armed faults before performing a write as `caller`.
    fn check_write_fault(&self, caller: DomainId) -> Result<()> {
        let mut fault = self.fault.lock();
        if fault.crashed == Some(caller) {
            return Err(XenError::Injected("domain crashed"));
        }
        if let Some(wc) = &mut fault.write_crash {
            if wc.domain == caller {
                if wc.remaining == 0 {
                    fault.crashed = Some(caller);
                    fault.write_crash = None;
                    return Err(XenError::Injected("write crash tripped"));
                }
                wc.remaining -= 1;
            }
        }
        Ok(())
    }

    // ---- fault injection (chaos harness hooks) -----------------------------

    /// Arm a write-crash: `after_writes` more `page_write` calls by
    /// `domain` succeed, then every further write by it fails with
    /// [`XenError::Injected`] until [`Hypervisor::clear_faults`]. Models a
    /// process crash between two mirror page writes: memory keeps exactly
    /// the writes that landed before the trip point.
    pub fn inject_write_crash(&self, domain: DomainId, after_writes: u64) {
        let mut fault = self.fault.lock();
        fault.write_crash = Some(WriteCrash { domain, remaining: after_writes });
        self.faults_armed.store(true, Ordering::Relaxed);
    }

    /// Whether an armed write-crash has tripped (the domain is "dead").
    pub fn fault_crashed(&self) -> bool {
        self.faults_armed.load(Ordering::Relaxed) && self.fault.lock().crashed.is_some()
    }

    /// Queue a one-shot ring fault for the split-driver backend to
    /// consume before sending its next response.
    pub fn inject_ring_fault(&self, f: RingFault) {
        let mut fault = self.fault.lock();
        fault.ring.push_back(f);
        self.faults_armed.store(true, Ordering::Relaxed);
    }

    /// Backend hook: take the next queued ring fault, if any.
    pub fn take_ring_fault(&self) -> Option<RingFault> {
        if !self.faults_armed.load(Ordering::Relaxed) {
            return None;
        }
        let mut fault = self.fault.lock();
        let f = fault.ring.pop_front();
        if !fault.any_armed() {
            self.faults_armed.store(false, Ordering::Relaxed);
        }
        f
    }

    /// Disarm every injected fault (the "restart" point of a crash test).
    pub fn clear_faults(&self) {
        let mut fault = self.fault.lock();
        *fault = FaultState::default();
        self.faults_armed.store(false, Ordering::Relaxed);
    }

    /// Attempted Dom0 `page_write` calls so far (monotonic). Harnesses
    /// diff this across a command to enumerate crash points.
    pub fn dom0_page_writes(&self) -> u64 {
        self.dom0_writes.load(Ordering::Relaxed)
    }

    /// XOR `xor` into frame `mfn` at `off`, bypassing ownership — the
    /// corruption fault (bit rot / a hostile process scribbling on the
    /// mirror). Protected frames remain untouchable, per the threat
    /// model. Not subject to write-crash faults: corruption is something
    /// that happens *to* memory, not an action of the crashed domain.
    pub fn corrupt_frame(&self, mfn: usize, off: usize, xor: &[u8]) -> Result<()> {
        let mut mem = self.memory.write();
        if mem.protection(mfn)? == PageProtection::Protected {
            return Err(XenError::ProtectedFrame);
        }
        let mut buf = vec![0u8; xor.len()];
        mem.read(mfn, off, &mut buf)?;
        for (b, x) in buf.iter_mut().zip(xor) {
            *b ^= x;
        }
        mem.write(mfn, off, &buf)
    }

    /// Read from a caller-owned frame.
    pub fn page_read(&self, caller: DomainId, mfn: usize, off: usize, buf: &mut [u8]) -> Result<()> {
        let mem = self.memory.read();
        if mem.owner(mfn)? != caller {
            return Err(XenError::BadFrame);
        }
        mem.read(mfn, off, buf)
    }

    /// Tag a frame hypervisor-protected (callable only by Dom0's trusted
    /// stub — in our model the vTPM manager — via this privileged call).
    pub fn protect_frame(&self, caller: DomainId, mfn: usize) -> Result<()> {
        self.require_dom0(caller)?;
        self.memory.write().set_protection(mfn, PageProtection::Protected)
    }

    /// Remove protection from a frame.
    pub fn unprotect_frame(&self, caller: DomainId, mfn: usize) -> Result<()> {
        self.require_dom0(caller)?;
        self.memory.write().set_protection(mfn, PageProtection::Normal)
    }

    /// Run `f` with shared access to machine memory. Drivers use this to
    /// operate rings without copying page-sized buffers through the API.
    pub fn with_memory<R>(&self, f: impl FnOnce(&MachineMemory) -> R) -> R {
        f(&self.memory.read())
    }

    /// Run `f` with exclusive access to machine memory.
    pub fn with_memory_mut<R>(&self, f: impl FnOnce(&mut MachineMemory) -> R) -> R {
        f(&mut self.memory.write())
    }

    // ---- the dump facility (the attack surface) ----------------------------

    /// Memory-dump as `caller` would see it.
    ///
    /// * Dom0 reads **every normal frame in the machine** — this is
    ///   `xc_map_foreign_range` / "memory dump software" from the abstract.
    /// * A guest reads only its own frames.
    /// * [`PageProtection::Protected`] frames are invisible to everyone.
    ///
    /// Returns `(mfn, owner, contents)` triples.
    pub fn dump_memory(&self, caller: DomainId) -> Result<Vec<DumpedFrame>> {
        self.require_alive(caller)?;
        let mem = self.memory.read();
        let mfns = if caller.is_dom0() { mem.all_allocated() } else { mem.frames_of(caller) };
        let mut out = Vec::with_capacity(mfns.len());
        for mfn in mfns {
            match mem.dump_frame(mfn) {
                Ok(page) => out.push((mfn, mem.owner(mfn)?, Box::new(page))),
                Err(XenError::ProtectedFrame) => continue,
                Err(e) => return Err(e),
            }
        }
        drop(mem);
        // Leave a trace: dumping is observable even when it succeeds,
        // so introspection tooling (the sentinel) can flag it after the
        // fact — the one thing the bare facility never offered.
        let foreign = out.iter().filter(|(_, owner, _)| *owner != caller).count() as u64;
        self.dump_log.lock().push(DumpEvent {
            at_ns: self.clock.now_ns(),
            caller,
            frames: out.len() as u64,
            foreign_frames: foreign,
        });
        Ok(out)
    }

    /// The dump trail, in call order. Empty on a host where nothing ever
    /// used the dump facility — the sentinel treats any entry not
    /// explained by a crash-recovery scan as a dump-attack signature.
    pub fn dump_events(&self) -> Vec<DumpEvent> {
        self.dump_log.lock().clone()
    }

    // ---- grants -----------------------------------------------------------

    /// `granter` grants `grantee` access to its frame `mfn`.
    pub fn grant(
        &self,
        granter: DomainId,
        grantee: DomainId,
        mfn: usize,
        access: GrantAccess,
    ) -> Result<GrantRef> {
        self.require_alive(granter)?;
        let mem = self.memory.read();
        if mem.owner(mfn)? != granter {
            return Err(XenError::BadFrame);
        }
        drop(mem);
        Ok(self.grants.lock().grant(granter, grantee, mfn, access))
    }

    /// Map a grant as `mapper`, returning the frame number.
    pub fn grant_map(&self, gref: GrantRef, mapper: DomainId) -> Result<usize> {
        self.require_alive(mapper)?;
        let (mfn, _access) = self.grants.lock().map(gref, mapper)?;
        Ok(mfn)
    }

    /// Unmap a grant.
    pub fn grant_unmap(&self, gref: GrantRef, mapper: DomainId) -> Result<()> {
        self.grants.lock().unmap(gref, mapper)
    }

    /// Revoke a grant (granter only; fails while mapped).
    pub fn grant_revoke(&self, gref: GrantRef, caller: DomainId) -> Result<()> {
        self.grants.lock().revoke(gref, caller)
    }

    /// Write through a mapped grant: verifies the grant names `caller` as
    /// grantee with write access.
    pub fn grant_write(&self, gref: GrantRef, caller: DomainId, off: usize, data: &[u8]) -> Result<()> {
        let mut grants = self.grants.lock();
        let (mfn, access) = grants.map(gref, caller)?;
        let result = if access == GrantAccess::ReadWrite {
            self.memory.write().write(mfn, off, data)
        } else {
            Err(XenError::BadGrant)
        };
        grants.unmap(gref, caller)?;
        result
    }

    /// Read through a mapped grant.
    pub fn grant_read(&self, gref: GrantRef, caller: DomainId, off: usize, buf: &mut [u8]) -> Result<()> {
        let mut grants = self.grants.lock();
        let (mfn, _access) = grants.map(gref, caller)?;
        let result = self.memory.read().read(mfn, off, buf);
        grants.unmap(gref, caller)?;
        result
    }

    // ---- XenStore ---------------------------------------------------------

    /// Write a XenStore node.
    pub fn xs_write(&self, caller: DomainId, path: &str, value: &[u8]) -> Result<()> {
        self.require_alive(caller)?;
        self.xenstore.lock().write(caller, path, value)
    }

    /// Read a XenStore node.
    pub fn xs_read(&self, caller: DomainId, path: &str) -> Result<Vec<u8>> {
        self.require_alive(caller)?;
        self.xenstore.lock().read(caller, path)
    }

    /// Read a XenStore node as a string.
    pub fn xs_read_string(&self, caller: DomainId, path: &str) -> Result<String> {
        self.require_alive(caller)?;
        self.xenstore.lock().read_string(caller, path)
    }

    /// List children of a node.
    pub fn xs_list(&self, caller: DomainId, path: &str) -> Result<Vec<String>> {
        self.xenstore.lock().list(caller, path)
    }

    /// Remove a subtree.
    pub fn xs_remove(&self, caller: DomainId, path: &str) -> Result<()> {
        self.xenstore.lock().remove(caller, path)
    }

    /// Set node permissions.
    pub fn xs_set_perms(&self, caller: DomainId, path: &str, perms: Perms) -> Result<()> {
        self.xenstore.lock().set_perms(caller, path, perms)
    }

    /// Register a watch.
    pub fn xs_watch(&self, caller: DomainId, prefix: &str, token: &str) -> Result<()> {
        self.xenstore.lock().watch(caller, prefix, token)
    }

    /// Drain fired watch events for `caller`.
    pub fn xs_take_events(&self, caller: DomainId) -> Vec<WatchEvent> {
        self.xenstore.lock().take_events(caller)
    }

    /// Whether a path exists.
    pub fn xs_exists(&self, path: &str) -> bool {
        self.xenstore.lock().exists(path)
    }

    /// Begin a XenStore transaction.
    pub fn xs_txn_begin(&self, caller: DomainId) -> Result<u32> {
        self.require_alive(caller)?;
        Ok(self.xenstore.lock().txn_begin(caller))
    }

    /// Transactional read.
    pub fn xs_txn_read(&self, txn: u32, path: &str) -> Result<Vec<u8>> {
        self.xenstore.lock().txn_read(txn, path)
    }

    /// Transactional (buffered) write.
    pub fn xs_txn_write(&self, txn: u32, path: &str, value: &[u8]) -> Result<()> {
        self.xenstore.lock().txn_write(txn, path, value)
    }

    /// Transactional (buffered) removal.
    pub fn xs_txn_remove(&self, txn: u32, path: &str) -> Result<()> {
        self.xenstore.lock().txn_remove(txn, path)
    }

    /// Commit: `Ok(false)` means a conflict — retry the whole transaction.
    pub fn xs_txn_commit(&self, txn: u32) -> Result<bool> {
        self.xenstore.lock().txn_commit(txn)
    }

    /// Abort a transaction.
    pub fn xs_txn_abort(&self, txn: u32) {
        self.xenstore.lock().txn_abort(txn)
    }

    // ---- scheduling -------------------------------------------------------

    /// Charge virtual CPU time to a domain and advance the host clock.
    pub fn charge_cpu(&self, id: DomainId, ns: u64) -> Result<()> {
        self.sched.lock().charge(id, ns).ok_or(XenError::NoSuchDomain(id))?;
        if let Some(d) = self.domains.write().get_mut(&id) {
            d.cpu_time_ns += ns;
        }
        self.clock.advance_ns(ns);
        Ok(())
    }

    /// Run one scheduler accounting period.
    pub fn scheduler_tick(&self) {
        self.sched.lock().accounting_tick();
    }

    /// Scheduler dispatch order (diagnostics/experiments).
    pub fn dispatch_order(&self) -> Vec<DomainId> {
        self.sched.lock().dispatch_order()
    }

    // ---- save / restore / migrate ------------------------------------------

    /// Suspend a domain and harvest its image (`xm save`).
    pub fn save_domain(&self, caller: DomainId, id: DomainId) -> Result<DomainImage> {
        self.require_dom0(caller)?;
        if id.is_dom0() {
            return Err(XenError::BadDomainState(id, "cannot save Dom0"));
        }
        let (name, vcpus, weight, frames) = {
            let mut domains = self.domains.write();
            let d = domains.get_mut(&id).ok_or(XenError::NoSuchDomain(id))?;
            if !matches!(d.state, DomainState::Running | DomainState::Paused) {
                return Err(XenError::BadDomainState(id, "not running or paused"));
            }
            d.state = DomainState::Suspended;
            (d.name.clone(), d.vcpus, d.weight, d.frames.clone())
        };
        let mem = self.memory.read();
        let mut pages = Vec::with_capacity(frames.len());
        for mfn in &frames {
            // Note: protected frames would fail here; guests cannot own
            // protected frames in this model (only the manager's vault).
            pages.push(mem.dump_frame(*mfn)?);
        }
        Ok(DomainImage { name, vcpus, weight, pages })
    }

    /// Tear down the suspended source domain after a successful save.
    pub fn complete_save(&self, caller: DomainId, id: DomainId) -> Result<()> {
        self.require_dom0(caller)?;
        {
            let domains = self.domains.read();
            let d = domains.get(&id).ok_or(XenError::NoSuchDomain(id))?;
            if d.state != DomainState::Suspended {
                return Err(XenError::BadDomainState(id, "not suspended"));
            }
        }
        // destroy_domain refuses dead domains only; suspended is fine.
        {
            let mut domains = self.domains.write();
            let d = domains.get_mut(&id).expect("checked");
            d.state = DomainState::Paused; // make destroy's state machine happy
        }
        self.destroy_domain(caller, id)
    }

    /// Build a domain from an image (`xm restore`), returning the new id.
    pub fn restore_domain(&self, caller: DomainId, image: &DomainImage) -> Result<DomainId> {
        self.require_dom0(caller)?;
        if image.pages.is_empty() {
            return Err(XenError::BadImage("no pages"));
        }
        let id = self.create_domain(
            caller,
            DomainConfig {
                name: image.name.clone(),
                memory_pages: image.pages.len(),
                vcpus: image.vcpus,
                weight: image.weight,
            },
        )?;
        let frames = self.domain_info(id)?.frames;
        let mut mem = self.memory.write();
        for (mfn, page) in frames.iter().zip(&image.pages) {
            mem.write(*mfn, 0, &page[..])?;
        }
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DomainId = DomainId::DOM0;

    fn host() -> Hypervisor {
        Hypervisor::boot(256, 16).unwrap()
    }

    #[test]
    fn boot_creates_dom0() {
        let hv = host();
        let d0 = hv.domain_info(D0).unwrap();
        assert_eq!(d0.name, "Domain-0");
        assert_eq!(d0.frames.len(), 16);
        assert_eq!(hv.list_domains(), vec![D0]);
        assert_eq!(hv.xs_read_string(D0, "/local/domain/0/name").unwrap(), "Domain-0");
    }

    #[test]
    fn create_and_destroy_guest() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("web1")).unwrap();
        assert_eq!(hv.domain_info(g).unwrap().state, DomainState::Running);
        assert_eq!(hv.domain_by_name("web1"), Some(g));
        assert!(hv.xs_exists(&format!("/local/domain/{}", g.0)));
        hv.destroy_domain(D0, g).unwrap();
        assert!(hv.domain_info(g).is_err());
        assert!(!hv.xs_exists(&format!("/local/domain/{}", g.0)));
    }

    #[test]
    fn guest_cannot_create_domains() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        assert_eq!(
            hv.create_domain(g, DomainConfig::small("evil")),
            Err(XenError::NotPrivileged(g))
        );
        assert_eq!(hv.destroy_domain(g, g), Err(XenError::NotPrivileged(g)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let hv = host();
        hv.create_domain(D0, DomainConfig::small("web1")).unwrap();
        assert!(hv.create_domain(D0, DomainConfig::small("web1")).is_err());
    }

    #[test]
    fn dom0_indestructible() {
        let hv = host();
        assert!(hv.destroy_domain(D0, D0).is_err());
    }

    #[test]
    fn pause_unpause_cycle() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        hv.pause_domain(D0, g).unwrap();
        assert_eq!(hv.domain_info(g).unwrap().state, DomainState::Paused);
        assert!(hv.pause_domain(D0, g).is_err());
        hv.unpause_domain(D0, g).unwrap();
        assert_eq!(hv.domain_info(g).unwrap().state, DomainState::Running);
        assert!(hv.unpause_domain(D0, g).is_err());
    }

    #[test]
    fn page_rw_enforces_ownership() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        let gf = hv.domain_info(g).unwrap().frames[0];
        hv.page_write(g, gf, 0, b"mine").unwrap();
        let mut buf = [0u8; 4];
        hv.page_read(g, gf, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"mine");
        // Another guest can't touch it directly.
        let g2 = hv.create_domain(D0, DomainConfig::small("g2")).unwrap();
        assert_eq!(hv.page_write(g2, gf, 0, b"evil"), Err(XenError::BadFrame));
        assert_eq!(hv.page_read(g2, gf, 0, &mut buf), Err(XenError::BadFrame));
    }

    #[test]
    fn grant_flow_end_to_end() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        let gf = hv.domain_info(g).unwrap().frames[0];
        hv.page_write(g, gf, 0, b"shared-data").unwrap();
        let gref = hv.grant(g, D0, gf, GrantAccess::ReadWrite).unwrap();
        // Dom0 reads through the grant.
        let mut buf = [0u8; 11];
        hv.grant_read(gref, D0, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"shared-data");
        // And writes back.
        hv.grant_write(gref, D0, 0, b"written-back").unwrap();
        let mut buf2 = [0u8; 12];
        hv.page_read(g, gf, 0, &mut buf2).unwrap();
        assert_eq!(&buf2, b"written-back");
    }

    #[test]
    fn grant_requires_frame_ownership() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        let dom0_frame = hv.domain_info(D0).unwrap().frames[0];
        // Guest cannot grant a Dom0-owned frame.
        assert_eq!(
            hv.grant(g, D0, dom0_frame, GrantAccess::ReadOnly),
            Err(XenError::BadFrame)
        );
    }

    #[test]
    fn dump_semantics_by_privilege() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        let gf = hv.domain_info(g).unwrap().frames[0];
        hv.page_write(g, gf, 100, b"GUEST-SECRET").unwrap();

        // Dom0 dump sees the guest's page.
        let dump = hv.dump_memory(D0).unwrap();
        let found = dump.iter().any(|(_, owner, page)| {
            *owner == g && page.windows(12).any(|w| w == b"GUEST-SECRET")
        });
        assert!(found, "Dom0 dump must expose guest memory (the W3 baseline)");

        // The guest's own dump only covers its frames.
        let gdump = hv.dump_memory(g).unwrap();
        assert!(gdump.iter().all(|(_, owner, _)| *owner == g));

        // Protected frames disappear from the Dom0 dump.
        hv.protect_frame(D0, gf).unwrap();
        let dump2 = hv.dump_memory(D0).unwrap();
        assert!(dump2.iter().all(|(mfn, _, _)| *mfn != gf));
    }

    #[test]
    fn dump_calls_leave_an_introspectable_trail() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        assert!(hv.dump_events().is_empty(), "no dumps yet, no trail");

        hv.clock.advance_ns(1_000);
        let dump = hv.dump_memory(D0).unwrap();
        let guest_frames = dump.iter().filter(|(_, owner, _)| *owner == g).count() as u64;
        hv.dump_memory(g).unwrap();

        let events = hv.dump_events();
        assert_eq!(events.len(), 2);
        // Dom0's dump crossed domain boundaries; the guest's did not.
        assert_eq!(events[0].caller, D0);
        assert_eq!(events[0].at_ns, 1_000);
        assert_eq!(events[0].frames, dump.len() as u64);
        assert!(events[0].foreign_frames >= guest_frames && events[0].foreign_frames > 0);
        assert_eq!((events[1].caller, events[1].foreign_frames), (g, 0));
    }

    #[test]
    fn protect_frame_is_privileged() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        let gf = hv.domain_info(g).unwrap().frames[0];
        assert_eq!(hv.protect_frame(g, gf), Err(XenError::NotPrivileged(g)));
    }

    #[test]
    fn charge_cpu_advances_clock() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        hv.charge_cpu(g, 5_000).unwrap();
        hv.charge_cpu(D0, 2_000).unwrap();
        assert_eq!(hv.clock.now_ns(), 7_000);
        assert_eq!(hv.domain_info(g).unwrap().cpu_time_ns, 5_000);
    }

    #[test]
    fn save_restore_roundtrip_on_second_host() {
        let src = host();
        let g = src.create_domain(D0, DomainConfig::small("mig")).unwrap();
        let gf = src.domain_info(g).unwrap().frames[1];
        src.page_write(g, gf, 0, b"travels with the vm").unwrap();

        let image = src.save_domain(D0, g).unwrap();
        src.complete_save(D0, g).unwrap();
        assert!(src.domain_info(g).is_err());

        let dst = host();
        let g2 = dst.restore_domain(D0, &image).unwrap();
        let d = dst.domain_info(g2).unwrap();
        assert_eq!(d.name, "mig");
        let mut buf = [0u8; 19];
        dst.page_read(g2, d.frames[1], 0, &mut buf).unwrap();
        assert_eq!(&buf, b"travels with the vm");
    }

    #[test]
    fn save_requires_privilege_and_valid_state() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        assert_eq!(hv.save_domain(g, g).err(), Some(XenError::NotPrivileged(g)));
        assert!(hv.save_domain(D0, D0).is_err());
        // After suspension you cannot save again.
        hv.save_domain(D0, g).unwrap();
        assert!(hv.save_domain(D0, g).is_err());
    }

    #[test]
    fn alloc_pages_grows_domain() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        let before = hv.domain_info(g).unwrap().frames.len();
        let newf = hv.alloc_pages(g, 4).unwrap();
        assert_eq!(newf.len(), 4);
        assert_eq!(hv.domain_info(g).unwrap().frames.len(), before + 4);
    }

    #[test]
    fn xenstore_via_hypervisor_respects_perms() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        let home = format!("/local/domain/{}", g.0);
        // Guest writes in its own home.
        hv.xs_write(g, &format!("{home}/data"), b"v").unwrap();
        // Another guest cannot read it.
        let g2 = hv.create_domain(D0, DomainConfig::small("g2")).unwrap();
        assert!(matches!(
            hv.xs_read(g2, &format!("{home}/data")),
            Err(XenError::PermissionDenied(_))
        ));
        // Dom0 can (the W1 surface).
        assert_eq!(hv.xs_read(D0, &format!("{home}/data")).unwrap(), b"v");
    }

    #[test]
    fn dead_domain_hypercalls_fail() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        hv.destroy_domain(D0, g).unwrap();
        assert!(hv.xs_write(g, "/x", b"v").is_err());
        assert!(hv.alloc_pages(g, 1).is_err());
        assert!(hv.dump_memory(g).is_err());
    }

    #[test]
    fn write_crash_trips_after_n_writes() {
        let hv = host();
        let mfn = hv.alloc_pages(D0, 1).unwrap()[0];
        hv.inject_write_crash(D0, 2);
        hv.page_write(D0, mfn, 0, b"one").unwrap();
        hv.page_write(D0, mfn, 0, b"two").unwrap();
        assert_eq!(
            hv.page_write(D0, mfn, 0, b"three"),
            Err(XenError::Injected("write crash tripped"))
        );
        assert!(hv.fault_crashed());
        // Stays dead until cleared.
        assert!(hv.page_write(D0, mfn, 0, b"four").is_err());
        hv.clear_faults();
        assert!(!hv.fault_crashed());
        hv.page_write(D0, mfn, 0, b"five").unwrap();
    }

    #[test]
    fn write_crash_scoped_to_domain() {
        let hv = host();
        let g = hv.create_domain(D0, DomainConfig::small("g")).unwrap();
        let gf = hv.domain_info(g).unwrap().frames[0];
        let d0f = hv.alloc_pages(D0, 1).unwrap()[0];
        hv.inject_write_crash(D0, 0);
        assert!(hv.page_write(D0, d0f, 0, b"x").is_err());
        // The guest is unaffected by Dom0's crash.
        hv.page_write(g, gf, 0, b"guest fine").unwrap();
    }

    #[test]
    fn ring_faults_queue_fifo() {
        let hv = host();
        assert_eq!(hv.take_ring_fault(), None);
        hv.inject_ring_fault(crate::fault::RingFault::Drop);
        hv.inject_ring_fault(crate::fault::RingFault::Duplicate);
        assert_eq!(hv.take_ring_fault(), Some(crate::fault::RingFault::Drop));
        assert_eq!(hv.take_ring_fault(), Some(crate::fault::RingFault::Duplicate));
        assert_eq!(hv.take_ring_fault(), None);
    }

    #[test]
    fn corrupt_frame_flips_bits_but_respects_protection() {
        let hv = host();
        let mfn = hv.alloc_pages(D0, 1).unwrap()[0];
        hv.page_write(D0, mfn, 10, &[0xAA]).unwrap();
        hv.corrupt_frame(mfn, 10, &[0xFF]).unwrap();
        let mut b = [0u8; 1];
        hv.page_read(D0, mfn, 10, &mut b).unwrap();
        assert_eq!(b[0], 0x55);
        hv.protect_frame(D0, mfn).unwrap();
        assert_eq!(hv.corrupt_frame(mfn, 10, &[0xFF]), Err(XenError::ProtectedFrame));
    }

    #[test]
    fn dom0_write_counter_monotonic() {
        let hv = host();
        let mfn = hv.alloc_pages(D0, 1).unwrap()[0];
        let before = hv.dom0_page_writes();
        hv.page_write(D0, mfn, 0, b"a").unwrap();
        hv.page_write(D0, mfn, 0, b"b").unwrap();
        assert_eq!(hv.dom0_page_writes(), before + 2);
    }

    #[test]
    fn concurrent_domain_creation_unique_ids() {
        use std::sync::Arc;
        let hv = Arc::new(host());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let hv = Arc::clone(&hv);
                std::thread::spawn(move || {
                    hv.create_domain(D0, DomainConfig::small(&format!("t{i}"))).unwrap()
                })
            })
            .collect();
        let mut ids: Vec<DomainId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "domain ids must be unique under concurrency");
    }
}
