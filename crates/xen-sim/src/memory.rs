//! Machine memory: fixed-size frames with ownership and protection tags.
//!
//! This module is the root of the paper's threat model. Real Xen lets a
//! privileged Dom0 process map any guest frame (`xc_map_foreign_range`) and
//! dump it — that is the "CPU and memory dump software" the abstract cites.
//! We reproduce exactly that capability in [`MachineMemory::dump_frame`]
//! and its policy wrapper in the hypervisor: Dom0 can read every *normal*
//! frame in the machine; a frame tagged [`PageProtection::Protected`]
//! models memory the hypervisor withholds even from Dom0 (the mechanism
//! the paper's improvement relies on for its key material, AC3).

use crate::domain::DomainId;
use crate::error::{Result, XenError};

/// Bytes per page, as on x86 Xen.
pub const PAGE_SIZE: usize = 4096;

/// Protection tag of a machine frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageProtection {
    /// Ordinary RAM: mappable (and hence dumpable) by the privileged domain.
    Normal,
    /// Hypervisor-protected: no domain, not even Dom0, may map or dump it.
    /// Models the protected-memory facility the improved vTPM keeps its
    /// master keys in.
    Protected,
}

/// One machine frame.
struct Frame {
    data: Box<[u8; PAGE_SIZE]>,
    owner: DomainId,
    protection: PageProtection,
    allocated: bool,
}

impl Frame {
    fn free() -> Self {
        Frame {
            data: Box::new([0; PAGE_SIZE]),
            owner: DomainId::DOM0,
            protection: PageProtection::Normal,
            allocated: false,
        }
    }
}

/// All machine memory of the simulated host.
///
/// Not internally synchronized: the hypervisor wraps it in a lock. Frame
/// numbers (`mfn`s) are indices into the frame table and are stable for the
/// lifetime of the host.
pub struct MachineMemory {
    frames: Vec<Frame>,
    free_list: Vec<usize>,
}

impl MachineMemory {
    /// A machine with `total_frames` frames of RAM.
    pub fn new(total_frames: usize) -> Self {
        let frames = (0..total_frames).map(|_| Frame::free()).collect();
        // Allocate low frames first for readability of tests/dumps.
        let free_list = (0..total_frames).rev().collect();
        MachineMemory { frames, free_list }
    }

    /// Frames remaining.
    pub fn free_frames(&self) -> usize {
        self.free_list.len()
    }

    /// Total frames in the machine.
    pub fn total_frames(&self) -> usize {
        self.frames.len()
    }

    /// Allocate one zeroed frame for `owner`.
    pub fn alloc_frame(&mut self, owner: DomainId) -> Result<usize> {
        let mfn = self.free_list.pop().ok_or(XenError::OutOfMemory)?;
        let f = &mut self.frames[mfn];
        f.data.fill(0);
        f.owner = owner;
        f.protection = PageProtection::Normal;
        f.allocated = true;
        Ok(mfn)
    }

    /// Allocate `n` zeroed frames for `owner`; all-or-nothing.
    pub fn alloc_frames(&mut self, owner: DomainId, n: usize) -> Result<Vec<usize>> {
        if self.free_list.len() < n {
            return Err(XenError::OutOfMemory);
        }
        Ok((0..n).map(|_| self.alloc_frame(owner).expect("checked above")).collect())
    }

    /// Release a frame. The contents are scrubbed immediately, as Xen does
    /// for pages returned to the heap.
    pub fn free_frame(&mut self, mfn: usize) -> Result<()> {
        let f = self.frames.get_mut(mfn).ok_or(XenError::BadFrame)?;
        if !f.allocated {
            return Err(XenError::BadFrame);
        }
        f.data.fill(0);
        f.allocated = false;
        f.protection = PageProtection::Normal;
        self.free_list.push(mfn);
        Ok(())
    }

    /// Owner of a frame.
    pub fn owner(&self, mfn: usize) -> Result<DomainId> {
        let f = self.frames.get(mfn).ok_or(XenError::BadFrame)?;
        if !f.allocated {
            return Err(XenError::BadFrame);
        }
        Ok(f.owner)
    }

    /// Protection tag of a frame.
    pub fn protection(&self, mfn: usize) -> Result<PageProtection> {
        let f = self.frames.get(mfn).ok_or(XenError::BadFrame)?;
        if !f.allocated {
            return Err(XenError::BadFrame);
        }
        Ok(f.protection)
    }

    /// Change the protection tag (hypervisor-internal operation).
    pub fn set_protection(&mut self, mfn: usize, prot: PageProtection) -> Result<()> {
        let f = self.frames.get_mut(mfn).ok_or(XenError::BadFrame)?;
        if !f.allocated {
            return Err(XenError::BadFrame);
        }
        f.protection = prot;
        Ok(())
    }

    /// Read `buf.len()` bytes at `offset` within frame `mfn` *as the owner
    /// or the hypervisor* — protection is not checked here; callers that
    /// act for another domain must check policy first.
    pub fn read(&self, mfn: usize, offset: usize, buf: &mut [u8]) -> Result<()> {
        let f = self.frames.get(mfn).ok_or(XenError::BadFrame)?;
        if !f.allocated || offset + buf.len() > PAGE_SIZE {
            return Err(XenError::BadFrame);
        }
        buf.copy_from_slice(&f.data[offset..offset + buf.len()]);
        Ok(())
    }

    /// Write bytes at `offset` within frame `mfn` (same caveat as [`read`]).
    ///
    /// [`read`]: MachineMemory::read
    pub fn write(&mut self, mfn: usize, offset: usize, data: &[u8]) -> Result<()> {
        let f = self.frames.get_mut(mfn).ok_or(XenError::BadFrame)?;
        if !f.allocated || offset + data.len() > PAGE_SIZE {
            return Err(XenError::BadFrame);
        }
        f.data[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Dump a frame *with protection enforced*: returns the 4 KiB contents
    /// unless the frame is [`PageProtection::Protected`], which models the
    /// hypervisor refusing the foreign mapping.
    pub fn dump_frame(&self, mfn: usize) -> Result<[u8; PAGE_SIZE]> {
        let f = self.frames.get(mfn).ok_or(XenError::BadFrame)?;
        if !f.allocated {
            return Err(XenError::BadFrame);
        }
        if f.protection == PageProtection::Protected {
            return Err(XenError::ProtectedFrame);
        }
        Ok(*f.data)
    }

    /// All allocated frame numbers owned by `owner`.
    pub fn frames_of(&self, owner: DomainId) -> Vec<usize> {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.allocated && f.owner == owner)
            .map(|(i, _)| i)
            .collect()
    }

    /// All allocated frame numbers in the machine.
    pub fn all_allocated(&self) -> Vec<usize> {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.allocated)
            .map(|(i, _)| i)
            .collect()
    }

    /// Transfer ownership of a frame (grant-transfer / ballooning path).
    pub fn transfer(&mut self, mfn: usize, to: DomainId) -> Result<()> {
        let f = self.frames.get_mut(mfn).ok_or(XenError::BadFrame)?;
        if !f.allocated {
            return Err(XenError::BadFrame);
        }
        f.owner = to;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D1: DomainId = DomainId(1);
    const D2: DomainId = DomainId(2);

    #[test]
    fn alloc_and_free_cycle() {
        let mut m = MachineMemory::new(4);
        assert_eq!(m.free_frames(), 4);
        let a = m.alloc_frame(D1).unwrap();
        let b = m.alloc_frame(D1).unwrap();
        assert_ne!(a, b);
        assert_eq!(m.free_frames(), 2);
        m.free_frame(a).unwrap();
        assert_eq!(m.free_frames(), 3);
        // Double free rejected.
        assert_eq!(m.free_frame(a), Err(XenError::BadFrame));
    }

    #[test]
    fn exhaustion() {
        let mut m = MachineMemory::new(2);
        m.alloc_frame(D1).unwrap();
        m.alloc_frame(D1).unwrap();
        assert_eq!(m.alloc_frame(D1), Err(XenError::OutOfMemory));
        // all-or-nothing bulk alloc
        let mut m2 = MachineMemory::new(3);
        assert_eq!(m2.alloc_frames(D1, 5), Err(XenError::OutOfMemory));
        assert_eq!(m2.free_frames(), 3, "failed bulk alloc must not leak frames");
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = MachineMemory::new(1);
        let f = m.alloc_frame(D1).unwrap();
        m.write(f, 100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        m.read(f, 100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn bounds_checked() {
        let mut m = MachineMemory::new(1);
        let f = m.alloc_frame(D1).unwrap();
        assert_eq!(m.write(f, PAGE_SIZE - 2, b"xyz"), Err(XenError::BadFrame));
        let mut buf = [0u8; 8];
        assert_eq!(m.read(f, PAGE_SIZE - 4, &mut buf), Err(XenError::BadFrame));
        assert_eq!(m.read(999, 0, &mut buf), Err(XenError::BadFrame));
    }

    #[test]
    fn frames_are_scrubbed_on_free_and_alloc() {
        let mut m = MachineMemory::new(1);
        let f = m.alloc_frame(D1).unwrap();
        m.write(f, 0, b"secret").unwrap();
        m.free_frame(f).unwrap();
        let f2 = m.alloc_frame(D2).unwrap();
        assert_eq!(f, f2, "single-frame machine reuses the frame");
        let mut buf = [0u8; 6];
        m.read(f2, 0, &mut buf).unwrap();
        assert_eq!(buf, [0; 6], "previous owner's data must be scrubbed");
    }

    #[test]
    fn protection_blocks_dump_but_not_owner_access() {
        let mut m = MachineMemory::new(1);
        let f = m.alloc_frame(D1).unwrap();
        m.write(f, 0, b"key material").unwrap();
        m.set_protection(f, PageProtection::Protected).unwrap();
        assert_eq!(m.dump_frame(f), Err(XenError::ProtectedFrame));
        // The hypervisor-mediated owner path still works.
        let mut buf = [0u8; 12];
        m.read(f, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"key material");
        // Back to normal -> dumpable again.
        m.set_protection(f, PageProtection::Normal).unwrap();
        let page = m.dump_frame(f).unwrap();
        assert_eq!(&page[..12], b"key material");
    }

    #[test]
    fn ownership_listing_and_transfer() {
        let mut m = MachineMemory::new(4);
        let a = m.alloc_frame(D1).unwrap();
        let _b = m.alloc_frame(D2).unwrap();
        let c = m.alloc_frame(D1).unwrap();
        let mut of1 = m.frames_of(D1);
        of1.sort_unstable();
        let mut expect = vec![a, c];
        expect.sort_unstable();
        assert_eq!(of1, expect);
        m.transfer(a, D2).unwrap();
        assert_eq!(m.owner(a).unwrap(), D2);
        assert_eq!(m.frames_of(D1), vec![c]);
    }

    #[test]
    fn protection_cleared_on_free() {
        let mut m = MachineMemory::new(1);
        let f = m.alloc_frame(D1).unwrap();
        m.set_protection(f, PageProtection::Protected).unwrap();
        m.free_frame(f).unwrap();
        let f2 = m.alloc_frame(D2).unwrap();
        assert_eq!(m.protection(f2).unwrap(), PageProtection::Normal);
    }
}
