//! A simplified credit scheduler.
//!
//! The experiments never depend on preemption details, but latency
//! accounting does depend on *how much virtual CPU time each domain was
//! charged* and on a plausible dispatch order. This scheduler reproduces
//! the credit algorithm's skeleton: each domain holds credits replenished
//! proportionally to its weight every accounting period; burning CPU
//! debits credits; domains with positive credit (UNDER) are dispatched
//! ahead of those in deficit (OVER).

use std::collections::HashMap;

use crate::domain::DomainId;

/// Scheduling priority, as in Xen's credit scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Positive credit.
    Under,
    /// Credit exhausted.
    Over,
}

#[derive(Debug, Clone)]
struct Account {
    weight: u32,
    credit: i64,
    cpu_time_ns: u64,
}

/// Credits granted per weight unit per accounting period.
const CREDIT_PER_WEIGHT: i64 = 100;
/// Nanoseconds of CPU one credit buys.
const NS_PER_CREDIT: i64 = 10_000;

/// The scheduler state for one host.
#[derive(Default)]
pub struct CreditScheduler {
    accounts: HashMap<DomainId, Account>,
}

impl CreditScheduler {
    /// Empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a domain with the given weight (Xen default: 256).
    pub fn add_domain(&mut self, id: DomainId, weight: u32) {
        self.accounts.insert(
            id,
            Account { weight, credit: weight as i64 * CREDIT_PER_WEIGHT, cpu_time_ns: 0 },
        );
    }

    /// Remove a domain.
    pub fn remove_domain(&mut self, id: DomainId) {
        self.accounts.remove(&id);
    }

    /// Charge `ns` of CPU to `id`; returns the domain's new priority.
    pub fn charge(&mut self, id: DomainId, ns: u64) -> Option<Priority> {
        let acct = self.accounts.get_mut(&id)?;
        acct.cpu_time_ns += ns;
        acct.credit -= ns as i64 / NS_PER_CREDIT;
        Some(if acct.credit > 0 { Priority::Under } else { Priority::Over })
    }

    /// Run one accounting period: replenish credits proportionally to
    /// weight, capping accumulation at one period's worth (credit does not
    /// bank indefinitely, as in Xen).
    pub fn accounting_tick(&mut self) {
        for acct in self.accounts.values_mut() {
            let grant = acct.weight as i64 * CREDIT_PER_WEIGHT;
            acct.credit = (acct.credit + grant).min(grant);
        }
    }

    /// Current priority of a domain.
    pub fn priority(&self, id: DomainId) -> Option<Priority> {
        self.accounts
            .get(&id)
            .map(|a| if a.credit > 0 { Priority::Under } else { Priority::Over })
    }

    /// Cumulative CPU time charged to a domain.
    pub fn cpu_time_ns(&self, id: DomainId) -> Option<u64> {
        self.accounts.get(&id).map(|a| a.cpu_time_ns)
    }

    /// Dispatch order: all UNDER domains (by id for determinism), then all
    /// OVER domains.
    pub fn dispatch_order(&self) -> Vec<DomainId> {
        let mut under: Vec<DomainId> = Vec::new();
        let mut over: Vec<DomainId> = Vec::new();
        let mut ids: Vec<&DomainId> = self.accounts.keys().collect();
        ids.sort_unstable();
        for id in ids {
            if self.accounts[id].credit > 0 {
                under.push(*id);
            } else {
                over.push(*id);
            }
        }
        under.extend(over);
        under
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D1: DomainId = DomainId(1);
    const D2: DomainId = DomainId(2);

    #[test]
    fn fresh_domain_is_under() {
        let mut s = CreditScheduler::new();
        s.add_domain(D1, 256);
        assert_eq!(s.priority(D1), Some(Priority::Under));
    }

    #[test]
    fn heavy_use_goes_over() {
        let mut s = CreditScheduler::new();
        s.add_domain(D1, 256);
        // Burn far more than the initial credit (256*100 credits = 256ms).
        assert_eq!(s.charge(D1, 400_000_000), Some(Priority::Over));
        assert_eq!(s.cpu_time_ns(D1), Some(400_000_000));
    }

    #[test]
    fn tick_replenishes_and_caps() {
        let mut s = CreditScheduler::new();
        s.add_domain(D1, 256);
        s.charge(D1, 400_000_000);
        assert_eq!(s.priority(D1), Some(Priority::Over));
        // A few ticks bring it back under.
        s.accounting_tick();
        s.accounting_tick();
        assert_eq!(s.priority(D1), Some(Priority::Under));
        // Credit is capped: many idle ticks don't bank beyond one grant.
        for _ in 0..100 {
            s.accounting_tick();
        }
        // One big charge of exactly one grant's worth must flip to OVER.
        let one_grant_ns = 256u64 * 100 * 10_000;
        assert_eq!(s.charge(D1, one_grant_ns), Some(Priority::Over));
    }

    #[test]
    fn weight_scales_replenishment() {
        let mut s = CreditScheduler::new();
        s.add_domain(D1, 512);
        s.add_domain(D2, 128);
        let burn = 600_000_000u64;
        s.charge(D1, burn);
        s.charge(D2, burn);
        s.accounting_tick(); // +51200 vs +12800 credits
        s.accounting_tick();
        // After equal burn and equal ticks, the heavier domain recovers first.
        let p1 = s.priority(D1).unwrap();
        let p2 = s.priority(D2).unwrap();
        assert!(
            p1 == Priority::Under || p2 == Priority::Over,
            "heavier weight must not recover slower: {p1:?} vs {p2:?}"
        );
    }

    #[test]
    fn dispatch_order_prefers_under() {
        let mut s = CreditScheduler::new();
        s.add_domain(D1, 256);
        s.add_domain(D2, 256);
        s.charge(D1, 400_000_000); // D1 over
        assert_eq!(s.dispatch_order(), vec![D2, D1]);
    }

    #[test]
    fn remove_domain_forgets_it() {
        let mut s = CreditScheduler::new();
        s.add_domain(D1, 256);
        s.remove_domain(D1);
        assert_eq!(s.priority(D1), None);
        assert_eq!(s.charge(D1, 100), None);
    }
}
