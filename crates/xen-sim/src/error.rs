//! Error type shared by all simulator subsystems.

use crate::domain::DomainId;

/// Errors returned by hypervisor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XenError {
    /// The referenced domain does not exist.
    NoSuchDomain(DomainId),
    /// The referenced domain exists but is not in a state that allows the
    /// operation (e.g. issuing hypercalls from a dead domain).
    BadDomainState(DomainId, &'static str),
    /// Out of machine frames.
    OutOfMemory,
    /// The referenced frame does not exist or is not owned by the caller.
    BadFrame,
    /// Access to a hypervisor-protected frame was denied.
    ProtectedFrame,
    /// The grant reference is invalid, revoked, or does not authorize the
    /// requested access.
    BadGrant,
    /// The grant is still mapped and cannot be revoked.
    GrantInUse,
    /// The event channel port is invalid or not bound.
    BadPort,
    /// XenStore path does not exist.
    NoSuchPath(String),
    /// XenStore permission denied for the calling domain.
    PermissionDenied(String),
    /// XenStore path component or payload is malformed.
    BadPath(String),
    /// Ring is full (producer would overwrite unconsumed entries).
    RingFull,
    /// Ring is empty.
    RingEmpty,
    /// Ring message too large for a slot.
    MessageTooLarge,
    /// Domain save/restore image is malformed.
    BadImage(&'static str),
    /// The operation requires privilege the calling domain lacks.
    NotPrivileged(DomainId),
    /// An injected fault fired (chaos/fault-injection harness). The
    /// payload names the fault for diagnostics; production code never
    /// constructs this variant.
    Injected(&'static str),
}

impl std::fmt::Display for XenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XenError::NoSuchDomain(d) => write!(f, "no such domain: {d}"),
            XenError::BadDomainState(d, s) => write!(f, "domain {d} in bad state: {s}"),
            XenError::OutOfMemory => write!(f, "out of machine memory"),
            XenError::BadFrame => write!(f, "bad machine frame reference"),
            XenError::ProtectedFrame => write!(f, "frame is hypervisor-protected"),
            XenError::BadGrant => write!(f, "bad grant reference"),
            XenError::GrantInUse => write!(f, "grant still mapped"),
            XenError::BadPort => write!(f, "bad event channel port"),
            XenError::NoSuchPath(p) => write!(f, "xenstore: no such path: {p}"),
            XenError::PermissionDenied(p) => write!(f, "xenstore: permission denied: {p}"),
            XenError::BadPath(p) => write!(f, "xenstore: bad path: {p}"),
            XenError::RingFull => write!(f, "shared ring full"),
            XenError::RingEmpty => write!(f, "shared ring empty"),
            XenError::MessageTooLarge => write!(f, "message exceeds ring slot size"),
            XenError::BadImage(why) => write!(f, "bad domain image: {why}"),
            XenError::NotPrivileged(d) => write!(f, "domain {d} is not privileged"),
            XenError::Injected(what) => write!(f, "injected fault: {what}"),
        }
    }
}

impl std::error::Error for XenError {}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, XenError>;
