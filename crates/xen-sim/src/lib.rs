//! # xen-sim
//!
//! A discrete simulator of the Xen interfaces that the vTPM subsystem of
//! *Improvement for vTPM Access Control on Xen* (ICPPW 2010) touches.
//!
//! The reproduction cannot run a real hypervisor, so this crate rebuilds
//! the relevant substrate with the same actors, interfaces, and — most
//! importantly — the same *trust boundaries*:
//!
//! * [`memory`] — machine frames with ownership and a protection tag; the
//!   [`Hypervisor::dump_memory`] facility reproduces Dom0 memory-dump
//!   tooling (the paper's stated attack vector).
//! * [`domain`] + [`hypervisor`] — domain lifecycle with Dom0 privilege
//!   checks, save/restore images for migration.
//! * [`grant`] — grant tables, the authorization mechanism for shared
//!   pages.
//! * [`event`] — event channels with blocking waits for driver threads.
//! * [`ring`] — byte-stream shared rings (the split-driver transport),
//!   stored *inside* simulated memory so ring traffic is dumpable.
//! * [`xenstore`] — the hierarchical store with real xenstored permission
//!   semantics, including the Dom0 override that enables the rebinding
//!   attack the paper's AC1 defends against.
//! * [`sched`] — a simplified credit scheduler for CPU-time accounting.
//! * [`clock`] — virtual time, kept separate from wall-clock benchmarks.

pub mod clock;
pub mod domain;
pub mod error;
pub mod event;
pub mod fault;
pub mod grant;
pub mod hypervisor;
pub mod memory;
pub mod ring;
pub mod sched;
pub mod xenstore;

pub use clock::VirtualClock;
pub use domain::{Domain, DomainConfig, DomainId, DomainState};
pub use error::{Result, XenError};
pub use event::{Endpoint, EventChannels, Port};
pub use fault::RingFault;
pub use grant::{GrantAccess, GrantRef, GrantTables};
pub use hypervisor::{DomainImage, DumpEvent, Hypervisor};
pub use memory::{MachineMemory, PageProtection, PAGE_SIZE};
pub use ring::{ByteRing, PageRegion, RingDir};
pub use sched::{CreditScheduler, Priority};
pub use xenstore::{Perms, WatchEvent, XenStore};
