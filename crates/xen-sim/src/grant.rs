//! Grant tables: the Xen mechanism by which one domain authorizes another
//! to access specific frames of its memory. The vTPM split driver passes
//! command/response buffers through granted pages, so forging or replaying
//! grants is part of the attack surface the access-control layer considers.

use std::collections::HashMap;

use crate::domain::DomainId;
use crate::error::{Result, XenError};

/// A grant reference: (granting domain, slot index), unique per host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GrantRef {
    /// Domain that issued the grant.
    pub granter: DomainId,
    /// Slot in the granter's grant table.
    pub slot: u32,
}

/// Access allowed through a grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantAccess {
    /// Grantee may read the frame.
    ReadOnly,
    /// Grantee may read and write the frame.
    ReadWrite,
}

/// One grant-table entry.
#[derive(Debug, Clone)]
struct GrantEntry {
    grantee: DomainId,
    mfn: usize,
    access: GrantAccess,
    /// Number of active mappings held by the grantee.
    map_count: u32,
}

/// All grant tables on the host, keyed by granting domain.
#[derive(Default)]
pub struct GrantTables {
    tables: HashMap<DomainId, HashMap<u32, GrantEntry>>,
    next_slot: HashMap<DomainId, u32>,
}

impl GrantTables {
    /// Empty tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// `granter` authorizes `grantee` to access frame `mfn`.
    pub fn grant(
        &mut self,
        granter: DomainId,
        grantee: DomainId,
        mfn: usize,
        access: GrantAccess,
    ) -> GrantRef {
        let slot_counter = self.next_slot.entry(granter).or_insert(0);
        let slot = *slot_counter;
        *slot_counter += 1;
        self.tables.entry(granter).or_default().insert(
            slot,
            GrantEntry { grantee, mfn, access, map_count: 0 },
        );
        GrantRef { granter, slot }
    }

    /// `mapper` maps the granted frame; returns (mfn, access) on success.
    ///
    /// Fails unless the grant exists and names `mapper` as the grantee —
    /// this is the check a malicious domain probes when it tries to map a
    /// foreign grant ref it observed elsewhere.
    pub fn map(&mut self, gref: GrantRef, mapper: DomainId) -> Result<(usize, GrantAccess)> {
        let entry = self
            .tables
            .get_mut(&gref.granter)
            .and_then(|t| t.get_mut(&gref.slot))
            .ok_or(XenError::BadGrant)?;
        if entry.grantee != mapper {
            return Err(XenError::BadGrant);
        }
        entry.map_count += 1;
        Ok((entry.mfn, entry.access))
    }

    /// `mapper` releases one mapping of the grant.
    pub fn unmap(&mut self, gref: GrantRef, mapper: DomainId) -> Result<()> {
        let entry = self
            .tables
            .get_mut(&gref.granter)
            .and_then(|t| t.get_mut(&gref.slot))
            .ok_or(XenError::BadGrant)?;
        if entry.grantee != mapper || entry.map_count == 0 {
            return Err(XenError::BadGrant);
        }
        entry.map_count -= 1;
        Ok(())
    }

    /// The granter revokes the grant. Fails with [`XenError::GrantInUse`]
    /// while mappings remain, as in real Xen.
    pub fn revoke(&mut self, gref: GrantRef, caller: DomainId) -> Result<()> {
        if caller != gref.granter {
            return Err(XenError::BadGrant);
        }
        let table = self.tables.get_mut(&gref.granter).ok_or(XenError::BadGrant)?;
        let entry = table.get(&gref.slot).ok_or(XenError::BadGrant)?;
        if entry.map_count > 0 {
            return Err(XenError::GrantInUse);
        }
        table.remove(&gref.slot);
        Ok(())
    }

    /// Look up a grant without mapping it (diagnostics).
    pub fn inspect(&self, gref: GrantRef) -> Option<(DomainId, usize, GrantAccess, u32)> {
        self.tables
            .get(&gref.granter)
            .and_then(|t| t.get(&gref.slot))
            .map(|e| (e.grantee, e.mfn, e.access, e.map_count))
    }

    /// Drop every grant issued by `domain` (domain destruction). Active
    /// mappings are forcibly severed, as Xen does when a domain dies.
    pub fn purge_domain(&mut self, domain: DomainId) {
        self.tables.remove(&domain);
        self.next_slot.remove(&domain);
    }

    /// Count of live grants issued by `domain`.
    pub fn grants_of(&self, domain: DomainId) -> usize {
        self.tables.get(&domain).map_or(0, |t| t.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D1: DomainId = DomainId(1);
    const D2: DomainId = DomainId(2);
    const D3: DomainId = DomainId(3);

    #[test]
    fn grant_map_unmap_revoke() {
        let mut g = GrantTables::new();
        let gref = g.grant(D1, D2, 42, GrantAccess::ReadWrite);
        let (mfn, access) = g.map(gref, D2).unwrap();
        assert_eq!(mfn, 42);
        assert_eq!(access, GrantAccess::ReadWrite);
        // Revoke while mapped fails.
        assert_eq!(g.revoke(gref, D1), Err(XenError::GrantInUse));
        g.unmap(gref, D2).unwrap();
        g.revoke(gref, D1).unwrap();
        // Gone now.
        assert_eq!(g.map(gref, D2), Err(XenError::BadGrant));
    }

    #[test]
    fn foreign_domain_cannot_map() {
        let mut g = GrantTables::new();
        let gref = g.grant(D1, D2, 7, GrantAccess::ReadOnly);
        assert_eq!(g.map(gref, D3), Err(XenError::BadGrant));
        // The granter itself is not the grantee either.
        assert_eq!(g.map(gref, D1), Err(XenError::BadGrant));
    }

    #[test]
    fn only_granter_can_revoke() {
        let mut g = GrantTables::new();
        let gref = g.grant(D1, D2, 7, GrantAccess::ReadOnly);
        assert_eq!(g.revoke(gref, D2), Err(XenError::BadGrant));
        assert!(g.revoke(gref, D1).is_ok());
    }

    #[test]
    fn map_counts_nest() {
        let mut g = GrantTables::new();
        let gref = g.grant(D1, D2, 7, GrantAccess::ReadOnly);
        g.map(gref, D2).unwrap();
        g.map(gref, D2).unwrap();
        g.unmap(gref, D2).unwrap();
        assert_eq!(g.revoke(gref, D1), Err(XenError::GrantInUse));
        g.unmap(gref, D2).unwrap();
        assert!(g.revoke(gref, D1).is_ok());
    }

    #[test]
    fn unmap_without_map_rejected() {
        let mut g = GrantTables::new();
        let gref = g.grant(D1, D2, 7, GrantAccess::ReadOnly);
        assert_eq!(g.unmap(gref, D2), Err(XenError::BadGrant));
    }

    #[test]
    fn slots_unique_per_granter() {
        let mut g = GrantTables::new();
        let a = g.grant(D1, D2, 1, GrantAccess::ReadOnly);
        let b = g.grant(D1, D2, 2, GrantAccess::ReadOnly);
        let c = g.grant(D2, D1, 3, GrantAccess::ReadOnly);
        assert_ne!(a.slot, b.slot);
        // Different granters may reuse slot numbers.
        assert_eq!(c.slot, 0);
        assert_eq!(g.grants_of(D1), 2);
        assert_eq!(g.grants_of(D2), 1);
    }

    #[test]
    fn purge_severs_everything() {
        let mut g = GrantTables::new();
        let gref = g.grant(D1, D2, 1, GrantAccess::ReadWrite);
        g.map(gref, D2).unwrap();
        g.purge_domain(D1);
        assert_eq!(g.map(gref, D2), Err(XenError::BadGrant));
        assert_eq!(g.grants_of(D1), 0);
    }
}
