//! XenStore: the hierarchical key-value configuration store shared by the
//! toolstack and split drivers.
//!
//! In stock Xen the guest→vTPM-instance association lives here
//! (`/local/domain/<id>/device/vtpm/...`), protected only by node
//! permissions that the privileged domain can always override. That is
//! weakness W1: a Dom0-level attacker rewrites the binding and routes a
//! victim's TPM traffic to an instance it controls. The simulator
//! reproduces those permission semantics faithfully, including the Dom0
//! override, so the attack works against the baseline and the improved
//! layer has something real to defeat.

use std::collections::BTreeMap;

use crate::domain::DomainId;
use crate::error::{Result, XenError};

/// Per-node permission record, mirroring xenstored's owner/readers/writers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Perms {
    /// Owning domain: full access, may change permissions.
    pub owner: DomainId,
    /// Domains allowed to read (beyond owner and Dom0).
    pub readers: Vec<DomainId>,
    /// Domains allowed to write (beyond owner and Dom0).
    pub writers: Vec<DomainId>,
}

impl Perms {
    /// Node owned by `owner`, private to it (and Dom0).
    pub fn private(owner: DomainId) -> Self {
        Perms { owner, readers: Vec::new(), writers: Vec::new() }
    }

    /// Node owned by `owner`, world-readable.
    pub fn readable(owner: DomainId) -> Self {
        Perms { owner, readers: vec![DomainId(u32::MAX)], writers: Vec::new() }
    }

    const ANY: DomainId = DomainId(u32::MAX);

    fn can_read(&self, d: DomainId) -> bool {
        // Dom0 can always read: this is the real xenstored behaviour and
        // is precisely what the rebinding/recon attack leans on.
        d.is_dom0()
            || d == self.owner
            || self.readers.contains(&d)
            || self.readers.contains(&Self::ANY)
    }

    fn can_write(&self, d: DomainId) -> bool {
        d.is_dom0()
            || d == self.owner
            || self.writers.contains(&d)
            || self.writers.contains(&Self::ANY)
    }
}

#[derive(Debug, Clone)]
struct Node {
    value: Vec<u8>,
    perms: Perms,
}

/// A watch event: the path that changed and the token registered with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// The path that was written or removed.
    pub path: String,
    /// Token supplied at watch registration.
    pub token: String,
}

#[derive(Debug)]
struct Watch {
    domain: DomainId,
    prefix: String,
    token: String,
}

/// A buffered transaction (xenstored's optimistic-concurrency model).
struct Txn {
    caller: DomainId,
    /// Paths read, with the node version observed (0 = absent).
    reads: BTreeMap<String, u64>,
    /// Buffered mutations in order; `None` value = remove.
    writes: Vec<(String, Option<Vec<u8>>)>,
}

/// The store. Single-threaded core; the hypervisor wraps it in a lock.
#[derive(Default)]
pub struct XenStore {
    nodes: BTreeMap<String, Node>,
    watches: Vec<Watch>,
    /// Per-domain queues of fired watch events.
    pending: BTreeMap<DomainId, Vec<WatchEvent>>,
    /// Per-path version counters (bumped on every committed mutation).
    versions: BTreeMap<String, u64>,
    txns: BTreeMap<u32, Txn>,
    next_txn: u32,
}

fn validate_path(path: &str) -> Result<()> {
    if path.is_empty()
        || !path.starts_with('/')
        || (path.len() > 1 && path.ends_with('/'))
        || path.contains("//")
        || path.bytes().any(|b| b == 0 || b.is_ascii_whitespace())
    {
        return Err(XenError::BadPath(path.to_string()));
    }
    Ok(())
}

fn parent_of(path: &str) -> Option<&str> {
    if path == "/" {
        return None;
    }
    match path.rfind('/') {
        Some(0) => Some("/"),
        Some(i) => Some(&path[..i]),
        None => None,
    }
}

impl XenStore {
    /// A store containing only the root node, owned by Dom0.
    pub fn new() -> Self {
        let mut s = XenStore::default();
        s.nodes.insert(
            "/".to_string(),
            Node { value: Vec::new(), perms: Perms::readable(DomainId::DOM0) },
        );
        s
    }

    /// Write `value` at `path` as domain `caller`, creating intermediate
    /// nodes (owned by the caller) as needed. Requires write access to the
    /// nearest existing ancestor.
    pub fn write(&mut self, caller: DomainId, path: &str, value: &[u8]) -> Result<()> {
        validate_path(path)?;
        if let Some(node) = self.nodes.get_mut(path) {
            if !node.perms.can_write(caller) {
                return Err(XenError::PermissionDenied(path.to_string()));
            }
            node.value = value.to_vec();
            self.bump_version(path);
            self.fire_watches(path);
            return Ok(());
        }
        // Creating: check write permission on the nearest existing ancestor.
        let mut probe = path;
        let ancestor = loop {
            match parent_of(probe) {
                Some(p) => {
                    if self.nodes.contains_key(p) {
                        break p;
                    }
                    probe = p;
                }
                None => return Err(XenError::BadPath(path.to_string())),
            }
        };
        if !self.nodes[ancestor].perms.can_write(caller) {
            return Err(XenError::PermissionDenied(path.to_string()));
        }
        // Create the chain of missing nodes.
        let mut missing: Vec<&str> = Vec::new();
        let mut probe = path;
        while probe != ancestor {
            missing.push(probe);
            probe = parent_of(probe).expect("ancestor exists above");
        }
        for p in missing.iter().rev() {
            self.nodes.insert(
                p.to_string(),
                Node { value: Vec::new(), perms: Perms::private(caller) },
            );
        }
        self.nodes.get_mut(path).expect("just inserted").value = value.to_vec();
        self.bump_version(path);
        self.fire_watches(path);
        Ok(())
    }

    /// Read the value at `path` as `caller`.
    pub fn read(&self, caller: DomainId, path: &str) -> Result<Vec<u8>> {
        validate_path(path)?;
        let node = self.nodes.get(path).ok_or_else(|| XenError::NoSuchPath(path.to_string()))?;
        if !node.perms.can_read(caller) {
            return Err(XenError::PermissionDenied(path.to_string()));
        }
        Ok(node.value.clone())
    }

    /// Read as a UTF-8 string (convenience for toolstack code).
    pub fn read_string(&self, caller: DomainId, path: &str) -> Result<String> {
        Ok(String::from_utf8_lossy(&self.read(caller, path)?).into_owned())
    }

    /// List the immediate children names of `path`.
    pub fn list(&self, caller: DomainId, path: &str) -> Result<Vec<String>> {
        validate_path(path)?;
        let node = self.nodes.get(path).ok_or_else(|| XenError::NoSuchPath(path.to_string()))?;
        if !node.perms.can_read(caller) {
            return Err(XenError::PermissionDenied(path.to_string()));
        }
        let prefix = if path == "/" { "/".to_string() } else { format!("{path}/") };
        let mut out = Vec::new();
        for key in self.nodes.range(prefix.clone()..) {
            let (k, _) = key;
            if !k.starts_with(&prefix) {
                break;
            }
            let rest = &k[prefix.len()..];
            if !rest.is_empty() && !rest.contains('/') {
                out.push(rest.to_string());
            }
        }
        Ok(out)
    }

    /// Remove `path` and its entire subtree.
    pub fn remove(&mut self, caller: DomainId, path: &str) -> Result<()> {
        validate_path(path)?;
        if path == "/" {
            return Err(XenError::BadPath(path.to_string()));
        }
        let node = self.nodes.get(path).ok_or_else(|| XenError::NoSuchPath(path.to_string()))?;
        if !node.perms.can_write(caller) {
            return Err(XenError::PermissionDenied(path.to_string()));
        }
        let prefix = format!("{path}/");
        let doomed: Vec<String> = self
            .nodes
            .keys()
            .filter(|k| k.as_str() == path || k.starts_with(&prefix))
            .cloned()
            .collect();
        for k in doomed {
            self.nodes.remove(&k);
            self.bump_version(&k);
        }
        self.fire_watches(path);
        Ok(())
    }

    /// Replace the permissions of `path`. Only the owner or Dom0 may do so.
    pub fn set_perms(&mut self, caller: DomainId, path: &str, perms: Perms) -> Result<()> {
        validate_path(path)?;
        let node = self.nodes.get_mut(path).ok_or_else(|| XenError::NoSuchPath(path.to_string()))?;
        if !(caller.is_dom0() || caller == node.perms.owner) {
            return Err(XenError::PermissionDenied(path.to_string()));
        }
        node.perms = perms;
        Ok(())
    }

    /// Current permissions of `path` (readable by anyone who can read it).
    pub fn get_perms(&self, caller: DomainId, path: &str) -> Result<Perms> {
        validate_path(path)?;
        let node = self.nodes.get(path).ok_or_else(|| XenError::NoSuchPath(path.to_string()))?;
        if !node.perms.can_read(caller) {
            return Err(XenError::PermissionDenied(path.to_string()));
        }
        Ok(node.perms.clone())
    }

    /// Register a watch for `caller` on `prefix`; any write/remove at or
    /// below the prefix queues a [`WatchEvent`] for the caller.
    pub fn watch(&mut self, caller: DomainId, prefix: &str, token: &str) -> Result<()> {
        validate_path(prefix)?;
        self.watches.push(Watch {
            domain: caller,
            prefix: prefix.to_string(),
            token: token.to_string(),
        });
        Ok(())
    }

    /// Remove a previously registered watch.
    pub fn unwatch(&mut self, caller: DomainId, prefix: &str, token: &str) {
        self.watches
            .retain(|w| !(w.domain == caller && w.prefix == prefix && w.token == token));
    }

    /// Drain the queued watch events for `caller`.
    pub fn take_events(&mut self, caller: DomainId) -> Vec<WatchEvent> {
        self.pending.remove(&caller).unwrap_or_default()
    }

    fn fire_watches(&mut self, changed: &str) {
        for w in &self.watches {
            let hit = changed == w.prefix
                || changed.starts_with(&format!("{}/", w.prefix))
                || w.prefix == "/";
            if hit {
                self.pending.entry(w.domain).or_default().push(WatchEvent {
                    path: changed.to_string(),
                    token: w.token.clone(),
                });
            }
        }
    }

    /// Whether `path` exists (no permission check — existence is cheap to
    /// probe in real xenstored too).
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }

    // ---- transactions (xenstored optimistic concurrency) -------------------

    fn version_of(&self, path: &str) -> u64 {
        self.versions.get(path).copied().unwrap_or(0)
    }

    fn bump_version(&mut self, path: &str) {
        *self.versions.entry(path.to_string()).or_insert(0) += 1;
    }

    /// Begin a transaction for `caller`; returns its id.
    pub fn txn_begin(&mut self, caller: DomainId) -> u32 {
        self.next_txn += 1;
        let id = self.next_txn;
        self.txns.insert(id, Txn { caller, reads: BTreeMap::new(), writes: Vec::new() });
        id
    }

    /// Read within a transaction: sees the transaction's own buffered
    /// writes, records the read for commit-time validation.
    pub fn txn_read(&mut self, id: u32, path: &str) -> Result<Vec<u8>> {
        validate_path(path)?;
        let txn = self.txns.get(&id).ok_or_else(|| XenError::BadPath("no such txn".into()))?;
        let caller = txn.caller;
        // Own buffered write wins (read-your-writes).
        if let Some((_, buffered)) =
            txn.writes.iter().rev().find(|(p, _)| p == path)
        {
            return match buffered {
                Some(v) => Ok(v.clone()),
                None => Err(XenError::NoSuchPath(path.to_string())),
            };
        }
        let version = self.version_of(path);
        let result = self.read(caller, path);
        let txn = self.txns.get_mut(&id).expect("checked");
        txn.reads.insert(path.to_string(), version);
        result
    }

    /// Buffer a write within a transaction (validated at commit).
    pub fn txn_write(&mut self, id: u32, path: &str, value: &[u8]) -> Result<()> {
        validate_path(path)?;
        let txn = self.txns.get_mut(&id).ok_or_else(|| XenError::BadPath("no such txn".into()))?;
        txn.writes.push((path.to_string(), Some(value.to_vec())));
        Ok(())
    }

    /// Buffer a removal within a transaction.
    pub fn txn_remove(&mut self, id: u32, path: &str) -> Result<()> {
        validate_path(path)?;
        let txn = self.txns.get_mut(&id).ok_or_else(|| XenError::BadPath("no such txn".into()))?;
        txn.writes.push((path.to_string(), None));
        Ok(())
    }

    /// Discard a transaction.
    pub fn txn_abort(&mut self, id: u32) {
        self.txns.remove(&id);
    }

    /// Commit: `Ok(true)` on success; `Ok(false)` when a concurrently
    /// committed write invalidated the read set (caller retries, as the
    /// xenstored protocol's EAGAIN demands). Permission errors surface as
    /// `Err` and abort the transaction.
    pub fn txn_commit(&mut self, id: u32) -> Result<bool> {
        let txn = self.txns.remove(&id).ok_or_else(|| XenError::BadPath("no such txn".into()))?;
        // Validate the read set.
        for (path, seen_version) in &txn.reads {
            if self.version_of(path) != *seen_version {
                return Ok(false); // EAGAIN
            }
        }
        // Apply the write set atomically (first permission failure rolls
        // back nothing because we pre-check all of them).
        for (path, value) in &txn.writes {
            let allowed = match self.nodes.get(path.as_str()) {
                Some(node) => node.perms.can_write(txn.caller),
                // Creation permission resolved by write() itself; probe
                // the nearest ancestor as write() will.
                None => true,
            };
            if !allowed && value.is_some() {
                return Err(XenError::PermissionDenied(path.clone()));
            }
        }
        for (path, value) in txn.writes {
            match value {
                Some(v) => self.write(txn.caller, &path, &v)?,
                None => {
                    // Removing an already-absent node inside a txn is a
                    // no-op, matching xenstored.
                    if self.nodes.contains_key(&path) {
                        self.remove(txn.caller, &path)?;
                    }
                }
            }
        }
        Ok(true)
    }

    /// Remove the entire `/local/domain/<id>` subtree plus every watch of a
    /// destroyed domain.
    pub fn purge_domain(&mut self, domain: DomainId) {
        let home = format!("/local/domain/{}", domain.0);
        let prefix = format!("{home}/");
        let doomed: Vec<String> = self
            .nodes
            .keys()
            .filter(|k| k.as_str() == home || k.starts_with(&prefix))
            .cloned()
            .collect();
        for k in doomed {
            self.nodes.remove(&k);
        }
        self.watches.retain(|w| w.domain != domain);
        self.pending.remove(&domain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DomainId = DomainId::DOM0;
    const D1: DomainId = DomainId(1);
    const D2: DomainId = DomainId(2);

    fn store() -> XenStore {
        XenStore::new()
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = store();
        s.write(D0, "/local/domain/1/name", b"web1").unwrap();
        assert_eq!(s.read(D0, "/local/domain/1/name").unwrap(), b"web1");
        assert_eq!(s.read_string(D0, "/local/domain/1/name").unwrap(), "web1");
    }

    #[test]
    fn intermediate_nodes_created() {
        let mut s = store();
        s.write(D0, "/a/b/c", b"v").unwrap();
        assert!(s.exists("/a"));
        assert!(s.exists("/a/b"));
        assert_eq!(s.list(D0, "/a").unwrap(), vec!["b"]);
    }

    #[test]
    fn path_validation() {
        let mut s = store();
        for bad in ["", "relative", "/trailing/", "/dou//ble", "/has space", "/nul\0byte"] {
            assert!(matches!(s.write(D0, bad, b"x"), Err(XenError::BadPath(_))), "{bad:?}");
        }
        // Root itself is writable (it's a node).
        s.write(D0, "/", b"root").unwrap();
    }

    #[test]
    fn guest_cannot_read_private_foreign_node() {
        let mut s = store();
        s.write(D0, "/secret", b"x").unwrap();
        assert!(matches!(s.read(D1, "/secret"), Err(XenError::PermissionDenied(_))));
        // But a reader grant opens it.
        s.set_perms(D0, "/secret", Perms { owner: D0, readers: vec![D1], writers: vec![] })
            .unwrap();
        assert_eq!(s.read(D1, "/secret").unwrap(), b"x");
        // D2 still locked out.
        assert!(matches!(s.read(D2, "/secret"), Err(XenError::PermissionDenied(_))));
    }

    #[test]
    fn dom0_overrides_all_permissions() {
        let mut s = store();
        // Guest-owned private node...
        s.write(D0, "/local/domain/1", b"").unwrap();
        s.set_perms(D0, "/local/domain/1", Perms::private(D1)).unwrap();
        s.write(D1, "/local/domain/1/private", b"guest-secret").unwrap();
        // ...is still fully accessible to Dom0. This is the W1 surface.
        assert_eq!(s.read(D0, "/local/domain/1/private").unwrap(), b"guest-secret");
        s.write(D0, "/local/domain/1/private", b"overwritten").unwrap();
        assert_eq!(s.read(D1, "/local/domain/1/private").unwrap(), b"overwritten");
    }

    #[test]
    fn guest_cannot_write_foreign_subtree() {
        let mut s = store();
        s.write(D0, "/local/domain/2", b"").unwrap();
        s.set_perms(D0, "/local/domain/2", Perms::private(D2)).unwrap();
        assert!(matches!(
            s.write(D1, "/local/domain/2/device/vtpm", b"steal"),
            Err(XenError::PermissionDenied(_))
        ));
    }

    #[test]
    fn list_children_only() {
        let mut s = store();
        s.write(D0, "/a/x", b"").unwrap();
        s.write(D0, "/a/y", b"").unwrap();
        s.write(D0, "/a/y/deep", b"").unwrap();
        s.write(D0, "/ab", b"").unwrap(); // sibling with shared prefix
        let mut kids = s.list(D0, "/a").unwrap();
        kids.sort();
        assert_eq!(kids, vec!["x", "y"]);
    }

    #[test]
    fn remove_subtree() {
        let mut s = store();
        s.write(D0, "/a/b/c", b"").unwrap();
        s.write(D0, "/a/b2", b"").unwrap();
        s.remove(D0, "/a/b").unwrap();
        assert!(!s.exists("/a/b"));
        assert!(!s.exists("/a/b/c"));
        assert!(s.exists("/a/b2"));
        assert!(matches!(s.remove(D0, "/a/b"), Err(XenError::NoSuchPath(_))));
    }

    #[test]
    fn root_cannot_be_removed() {
        let mut s = store();
        assert!(matches!(s.remove(D0, "/"), Err(XenError::BadPath(_))));
    }

    #[test]
    fn watches_fire_on_subtree_changes() {
        let mut s = store();
        s.watch(D0, "/local/domain/1", "tok").unwrap();
        s.write(D0, "/local/domain/1/device/vtpm/0", b"x").unwrap();
        s.write(D0, "/other", b"y").unwrap();
        let evs = s.take_events(D0);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].path, "/local/domain/1/device/vtpm/0");
        assert_eq!(evs[0].token, "tok");
        // Drained.
        assert!(s.take_events(D0).is_empty());
    }

    #[test]
    fn watches_fire_on_remove() {
        let mut s = store();
        s.write(D0, "/a/b", b"x").unwrap();
        s.watch(D1, "/a", "t").unwrap();
        // D1 needs read perm for nothing here: watches see paths, not values.
        s.remove(D0, "/a/b").unwrap();
        assert_eq!(s.take_events(D1).len(), 1);
    }

    #[test]
    fn unwatch_stops_events() {
        let mut s = store();
        s.watch(D0, "/a", "t").unwrap();
        s.unwatch(D0, "/a", "t");
        s.write(D0, "/a/b", b"x").unwrap();
        assert!(s.take_events(D0).is_empty());
    }

    #[test]
    fn purge_domain_clears_home_and_watches() {
        let mut s = store();
        s.write(D0, "/local/domain/1/device", b"x").unwrap();
        s.watch(D1, "/anything", "t").unwrap();
        s.purge_domain(D1);
        assert!(!s.exists("/local/domain/1"));
        s.write(D0, "/anything/below", b"x").unwrap();
        assert!(s.take_events(D1).is_empty());
    }

    #[test]
    fn txn_commit_applies_atomically() {
        let mut s = store();
        let t = s.txn_begin(D0);
        s.txn_write(t, "/a/x", b"1").unwrap();
        s.txn_write(t, "/a/y", b"2").unwrap();
        // Nothing visible before commit.
        assert!(!s.exists("/a/x"));
        assert!(s.txn_commit(t).unwrap());
        assert_eq!(s.read(D0, "/a/x").unwrap(), b"1");
        assert_eq!(s.read(D0, "/a/y").unwrap(), b"2");
    }

    #[test]
    fn txn_read_your_writes() {
        let mut s = store();
        s.write(D0, "/node", b"old").unwrap();
        let t = s.txn_begin(D0);
        assert_eq!(s.txn_read(t, "/node").unwrap(), b"old");
        s.txn_write(t, "/node", b"new").unwrap();
        assert_eq!(s.txn_read(t, "/node").unwrap(), b"new");
        // Outside the txn, still old.
        assert_eq!(s.read(D0, "/node").unwrap(), b"old");
        assert!(s.txn_commit(t).unwrap());
        assert_eq!(s.read(D0, "/node").unwrap(), b"new");
    }

    #[test]
    fn txn_conflict_detected() {
        let mut s = store();
        s.write(D0, "/counter", b"1").unwrap();
        let t = s.txn_begin(D0);
        s.txn_read(t, "/counter").unwrap();
        // A concurrent plain write lands first.
        s.write(D0, "/counter", b"2").unwrap();
        s.txn_write(t, "/counter", b"1+1").unwrap();
        assert_eq!(s.txn_commit(t).unwrap(), false, "EAGAIN: caller retries");
        // The concurrent value survived.
        assert_eq!(s.read(D0, "/counter").unwrap(), b"2");
        // Retry succeeds.
        let t2 = s.txn_begin(D0);
        s.txn_read(t2, "/counter").unwrap();
        s.txn_write(t2, "/counter", b"3").unwrap();
        assert!(s.txn_commit(t2).unwrap());
        assert_eq!(s.read(D0, "/counter").unwrap(), b"3");
    }

    #[test]
    fn txn_conflict_on_removed_node() {
        let mut s = store();
        s.write(D0, "/gone", b"x").unwrap();
        let t = s.txn_begin(D0);
        s.txn_read(t, "/gone").unwrap();
        s.remove(D0, "/gone").unwrap();
        s.txn_write(t, "/other", b"y").unwrap();
        assert_eq!(s.txn_commit(t).unwrap(), false);
    }

    #[test]
    fn txn_abort_discards() {
        let mut s = store();
        let t = s.txn_begin(D0);
        s.txn_write(t, "/never", b"x").unwrap();
        s.txn_abort(t);
        assert!(!s.exists("/never"));
        assert!(s.txn_commit(t).is_err(), "aborted txn id is dead");
    }

    #[test]
    fn txn_respects_permissions_at_commit() {
        let mut s = store();
        s.write(D0, "/secret", b"x").unwrap();
        let t = s.txn_begin(D1);
        s.txn_write(t, "/secret", b"overwrite").unwrap();
        assert!(matches!(s.txn_commit(t), Err(XenError::PermissionDenied(_))));
        assert_eq!(s.read(D0, "/secret").unwrap(), b"x");
    }

    #[test]
    fn txn_remove_buffered() {
        let mut s = store();
        s.write(D0, "/tmp", b"x").unwrap();
        let t = s.txn_begin(D0);
        s.txn_remove(t, "/tmp").unwrap();
        assert!(s.exists("/tmp"));
        assert!(matches!(s.txn_read(t, "/tmp"), Err(XenError::NoSuchPath(_))));
        assert!(s.txn_commit(t).unwrap());
        assert!(!s.exists("/tmp"));
    }

    #[test]
    fn independent_txns_on_disjoint_paths_both_commit() {
        let mut s = store();
        let t1 = s.txn_begin(D0);
        let t2 = s.txn_begin(D0);
        s.txn_write(t1, "/a", b"1").unwrap();
        s.txn_write(t2, "/b", b"2").unwrap();
        assert!(s.txn_commit(t1).unwrap());
        assert!(s.txn_commit(t2).unwrap());
        assert!(s.exists("/a") && s.exists("/b"));
    }

    #[test]
    fn set_perms_requires_ownership() {
        let mut s = store();
        s.write(D0, "/node", b"").unwrap();
        assert!(matches!(
            s.set_perms(D1, "/node", Perms::private(D1)),
            Err(XenError::PermissionDenied(_))
        ));
    }
}
