//! Virtual time.
//!
//! The simulator separates *virtual* time (what the modelled hardware
//! would take — e.g. a hardware TPM spending milliseconds on an RSA
//! signature) from wall-clock time (what our Rust code actually costs,
//! measured by Criterion). Components charge virtual time onto this clock;
//! experiment harnesses read both.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic virtual clock in nanoseconds. Thread-safe and lock-free:
/// concurrent workers charge time with relaxed atomics (the total is what
/// experiments consume, not the interleaving).
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Advance the clock by `ns`, returning the new time.
    pub fn advance_ns(&self, ns: u64) -> u64 {
        self.now_ns.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Advance by microseconds.
    pub fn advance_us(&self, us: u64) -> u64 {
        self.advance_ns(us * 1_000)
    }

    /// Advance by milliseconds.
    pub fn advance_ms(&self, ms: u64) -> u64 {
        self.advance_ns(ms * 1_000_000)
    }

    /// Reset to zero (between experiment repetitions).
    pub fn reset(&self) {
        self.now_ns.store(0, Ordering::Relaxed);
    }
}

/// A span of virtual time with start/end stamps, for latency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualSpan {
    /// Start stamp (ns).
    pub start_ns: u64,
    /// End stamp (ns).
    pub end_ns: u64,
}

impl VirtualSpan {
    /// Duration of the span in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now_ns(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.advance_ns(10), 10);
        assert_eq!(c.advance_us(2), 10 + 2_000);
        assert_eq!(c.advance_ms(1), 10 + 2_000 + 1_000_000);
        assert_eq!(c.now_ns(), 1_002_010);
    }

    #[test]
    fn reset_zeroes() {
        let c = VirtualClock::new();
        c.advance_ns(500);
        c.reset();
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn concurrent_advances_sum() {
        use std::sync::Arc;
        let c = Arc::new(VirtualClock::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance_ns(3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now_ns(), 8 * 1000 * 3);
    }

    #[test]
    fn span_duration() {
        let s = VirtualSpan { start_ns: 100, end_ns: 350 };
        assert_eq!(s.duration_ns(), 250);
        let backwards = VirtualSpan { start_ns: 350, end_ns: 100 };
        assert_eq!(backwards.duration_ns(), 0);
    }
}
