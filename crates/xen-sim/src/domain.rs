//! Domain identity, lifecycle state, and configuration.

use std::fmt;

/// Identifier of a domain. Dom0 is always id 0; guests get ids >= 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The privileged control domain.
    pub const DOM0: DomainId = DomainId(0);

    /// Whether this is the privileged control domain.
    pub fn is_dom0(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Lifecycle state of a domain, mirroring Xen's coarse states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainState {
    /// Being constructed by the domain builder; not yet schedulable.
    Building,
    /// Runnable.
    Running,
    /// Paused by the toolstack; memory retained.
    Paused,
    /// Suspended for save/migration; memory about to be harvested.
    Suspended,
    /// Destroyed; resources released.
    Dead,
}

/// Static configuration supplied at domain creation.
#[derive(Debug, Clone)]
pub struct DomainConfig {
    /// Human-readable name (unique per host in real Xen; we enforce it).
    pub name: String,
    /// Number of memory pages to allocate at build time.
    pub memory_pages: usize,
    /// Number of virtual CPUs (informs the scheduler's weighting only).
    pub vcpus: u32,
    /// Credit-scheduler weight (Xen default 256).
    pub weight: u32,
}

impl DomainConfig {
    /// A small default guest: 16 pages, 1 vcpu, default weight.
    pub fn small(name: &str) -> Self {
        DomainConfig { name: name.to_string(), memory_pages: 16, vcpus: 1, weight: 256 }
    }
}

impl Default for DomainConfig {
    fn default() -> Self {
        DomainConfig::small("guest")
    }
}

/// A domain record held by the hypervisor.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Identity.
    pub id: DomainId,
    /// Name from the config.
    pub name: String,
    /// Current lifecycle state.
    pub state: DomainState,
    /// Machine frame numbers owned by this domain, in pseudo-physical order:
    /// `frames[pfn]` is the machine frame backing guest page `pfn`.
    pub frames: Vec<usize>,
    /// vcpus configured.
    pub vcpus: u32,
    /// Scheduler weight.
    pub weight: u32,
    /// Cumulative CPU time charged by the scheduler (virtual ns).
    pub cpu_time_ns: u64,
}

impl Domain {
    /// Whether the domain can currently execute hypercalls.
    pub fn is_alive(&self) -> bool {
        matches!(self.state, DomainState::Running | DomainState::Paused | DomainState::Building)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dom0_identity() {
        assert!(DomainId::DOM0.is_dom0());
        assert!(!DomainId(3).is_dom0());
        assert_eq!(format!("{}", DomainId(5)), "dom5");
    }

    #[test]
    fn config_defaults() {
        let c = DomainConfig::small("web1");
        assert_eq!(c.name, "web1");
        assert_eq!(c.memory_pages, 16);
        assert_eq!(c.weight, 256);
    }

    #[test]
    fn alive_states() {
        let mut d = Domain {
            id: DomainId(1),
            name: "t".into(),
            state: DomainState::Running,
            frames: vec![],
            vcpus: 1,
            weight: 256,
            cpu_time_ns: 0,
        };
        assert!(d.is_alive());
        d.state = DomainState::Paused;
        assert!(d.is_alive());
        d.state = DomainState::Dead;
        assert!(!d.is_alive());
        d.state = DomainState::Suspended;
        assert!(!d.is_alive());
    }
}
