//! Deterministic fault injection — the chaos harness's hooks into the
//! simulator.
//!
//! Real crash/fault testing of a vTPM manager needs the host to misbehave
//! at *exactly reproducible* points: the same seed must produce the same
//! interleaving of failures on every run. This module keeps all injected
//! faults as explicit state on the [`Hypervisor`](crate::Hypervisor), to
//! be armed and cleared by a test harness:
//!
//! * **Write crash** — after a configured number of `page_write` calls by
//!   a chosen domain, every further write by that domain fails with
//!   [`XenError::Injected`](crate::XenError::Injected). This models the
//!   manager process dying *between any two mirror page writes*: the
//!   frames keep whatever was written before the trip point, exactly like
//!   RAM surviving a process crash.
//! * **Frame corruption** — flip bits in a normal frame regardless of
//!   ownership (bit rot, a hostile Dom0 process scribbling over the
//!   mirror). Protected frames stay immune, as the dump facility's
//!   threat model promises.
//! * **Ring faults** — a FIFO of one-shot actions the split-driver
//!   backend consumes before sending each response: drop it, duplicate
//!   it, or revoke the ring grants underneath the mapping.
//!
//! Nothing here is probabilistic; randomness (if any) belongs to the
//! harness that computes the arm points from a seeded DRBG.

use crate::domain::DomainId;

/// One-shot action applied to the next backend ring response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingFault {
    /// Swallow the response: the frontend never hears back.
    Drop,
    /// Send the response twice under the same message id.
    Duplicate,
    /// Tear the ring grants out from under the backend (the guest
    /// revoking its grants mid-exchange).
    RevokeGrants,
}

/// A pending write-crash: `remaining` more writes by `domain` succeed,
/// then the domain is "crashed" and every write fails until cleared.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WriteCrash {
    pub(crate) domain: DomainId,
    pub(crate) remaining: u64,
}

/// Mutable fault state, owned by the hypervisor behind a mutex. The
/// hot path only takes the lock when [`armed`](FaultState::armed) says
/// something is pending.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    /// Armed write-crash countdown.
    pub(crate) write_crash: Option<WriteCrash>,
    /// Tripped: this domain's writes now fail unconditionally.
    pub(crate) crashed: Option<DomainId>,
    /// FIFO of one-shot ring faults.
    pub(crate) ring: std::collections::VecDeque<RingFault>,
}

impl FaultState {
    /// Whether any fault is armed or tripped (gates the hot-path check).
    pub(crate) fn any_armed(&self) -> bool {
        self.write_crash.is_some() || self.crashed.is_some() || !self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_state_is_inert() {
        let s = FaultState::default();
        assert!(!s.any_armed());
    }

    #[test]
    fn armed_crash_registers() {
        let mut s = FaultState::default();
        s.write_crash = Some(WriteCrash { domain: DomainId::DOM0, remaining: 3 });
        assert!(s.any_armed());
    }
}
