//! Event channels: Xen's virtual-interrupt primitive. The split driver
//! signals "request produced" / "response produced" over an interdomain
//! channel; workers block on their local port.
//!
//! The simulator implements the three-step Xen dance: the backend
//! allocates an *unbound* port naming the peer, the peer *binds* to it to
//! complete the interdomain pair, and thereafter `notify` on either end
//! raises the pending flag on the other end. Waiting uses a condvar so the
//! multi-threaded vTPM manager can block without spinning.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::domain::DomainId;
use crate::error::{Result, XenError};

/// A port number, local to a domain.
pub type Port = u32;

/// One end of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// Owning domain.
    pub domain: DomainId,
    /// Port within that domain.
    pub port: Port,
}

#[derive(Debug)]
enum ChannelState {
    /// Allocated by `owner` for `peer` to bind to.
    Unbound { peer: DomainId },
    /// Fully connected to the remote endpoint.
    Bound { remote: Endpoint },
    /// Torn down.
    Closed,
}

struct PortRecord {
    state: ChannelState,
    pending: bool,
}

#[derive(Default)]
struct Inner {
    ports: HashMap<Endpoint, PortRecord>,
    next_port: HashMap<DomainId, Port>,
}

/// The host-wide event-channel table. Clone-able handle (Arc inside).
#[derive(Clone, Default)]
pub struct EventChannels {
    inner: Arc<Mutex<Inner>>,
    wakeup: Arc<Condvar>,
}

impl EventChannels {
    /// Fresh table.
    pub fn new() -> Self {
        Self::default()
    }

    fn alloc_port(inner: &mut Inner, domain: DomainId) -> Endpoint {
        let counter = inner.next_port.entry(domain).or_insert(1);
        let port = *counter;
        *counter += 1;
        Endpoint { domain, port }
    }

    /// Allocate an unbound port on `owner` that only `peer` may bind.
    pub fn alloc_unbound(&self, owner: DomainId, peer: DomainId) -> Endpoint {
        let mut inner = self.inner.lock();
        let ep = Self::alloc_port(&mut inner, owner);
        inner.ports.insert(ep, PortRecord { state: ChannelState::Unbound { peer }, pending: false });
        ep
    }

    /// `binder` connects a new local port to the remote unbound port,
    /// completing the interdomain channel. Returns the local endpoint.
    pub fn bind_interdomain(&self, binder: DomainId, remote: Endpoint) -> Result<Endpoint> {
        let mut inner = self.inner.lock();
        match inner.ports.get(&remote) {
            Some(PortRecord { state: ChannelState::Unbound { peer }, .. }) if *peer == binder => {}
            _ => return Err(XenError::BadPort),
        }
        let local = Self::alloc_port(&mut inner, binder);
        inner
            .ports
            .insert(local, PortRecord { state: ChannelState::Bound { remote }, pending: false });
        let rec = inner.ports.get_mut(&remote).expect("checked above");
        rec.state = ChannelState::Bound { remote: local };
        Ok(local)
    }

    /// Raise the event on the *other* end of `local`'s channel.
    pub fn notify(&self, local: Endpoint) -> Result<()> {
        let mut inner = self.inner.lock();
        let remote = match inner.ports.get(&local) {
            Some(PortRecord { state: ChannelState::Bound { remote }, .. }) => *remote,
            _ => return Err(XenError::BadPort),
        };
        let rec = inner.ports.get_mut(&remote).ok_or(XenError::BadPort)?;
        rec.pending = true;
        drop(inner);
        self.wakeup.notify_all();
        Ok(())
    }

    /// Consume the pending flag on `local`, returning whether it was set.
    pub fn poll(&self, local: Endpoint) -> Result<bool> {
        let mut inner = self.inner.lock();
        let rec = inner.ports.get_mut(&local).ok_or(XenError::BadPort)?;
        let was = rec.pending;
        rec.pending = false;
        Ok(was)
    }

    /// Block until an event is pending on `local` (consuming it), or until
    /// `timeout` elapses. Returns whether an event arrived.
    pub fn wait(&self, local: Endpoint, timeout: Duration) -> Result<bool> {
        let mut inner = self.inner.lock();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let rec = inner.ports.get_mut(&local).ok_or(XenError::BadPort)?;
            if rec.pending {
                rec.pending = false;
                return Ok(true);
            }
            if matches!(rec.state, ChannelState::Closed) {
                return Err(XenError::BadPort);
            }
            if self.wakeup.wait_until(&mut inner, deadline).timed_out() {
                return Ok(false);
            }
        }
    }

    /// Close `local`, marking both ends dead. Waiters are woken and see
    /// [`XenError::BadPort`].
    pub fn close(&self, local: Endpoint) -> Result<()> {
        let mut inner = self.inner.lock();
        let state = match inner.ports.get_mut(&local) {
            Some(rec) => std::mem::replace(&mut rec.state, ChannelState::Closed),
            None => return Err(XenError::BadPort),
        };
        if let ChannelState::Bound { remote } = state {
            if let Some(rrec) = inner.ports.get_mut(&remote) {
                rrec.state = ChannelState::Closed;
            }
        }
        drop(inner);
        self.wakeup.notify_all();
        Ok(())
    }

    /// Tear down every port owned by `domain` (domain destruction).
    pub fn purge_domain(&self, domain: DomainId) {
        let mut inner = self.inner.lock();
        let locals: Vec<Endpoint> =
            inner.ports.keys().filter(|ep| ep.domain == domain).copied().collect();
        for local in locals {
            if let Some(rec) = inner.ports.get_mut(&local) {
                if let ChannelState::Bound { remote } =
                    std::mem::replace(&mut rec.state, ChannelState::Closed)
                {
                    if let Some(rrec) = inner.ports.get_mut(&remote) {
                        rrec.state = ChannelState::Closed;
                    }
                }
            }
            inner.ports.remove(&local);
        }
        drop(inner);
        self.wakeup.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D0: DomainId = DomainId::DOM0;
    const D1: DomainId = DomainId(1);
    const D2: DomainId = DomainId(2);

    fn pair(ev: &EventChannels) -> (Endpoint, Endpoint) {
        let back = ev.alloc_unbound(D0, D1);
        let front = ev.bind_interdomain(D1, back).unwrap();
        (back, front)
    }

    #[test]
    fn notify_sets_remote_pending() {
        let ev = EventChannels::new();
        let (back, front) = pair(&ev);
        assert!(!ev.poll(front).unwrap());
        ev.notify(back).unwrap();
        assert!(ev.poll(front).unwrap());
        // Consumed.
        assert!(!ev.poll(front).unwrap());
        // And the reverse direction.
        ev.notify(front).unwrap();
        assert!(ev.poll(back).unwrap());
    }

    #[test]
    fn bind_requires_matching_peer() {
        let ev = EventChannels::new();
        let back = ev.alloc_unbound(D0, D1);
        assert_eq!(ev.bind_interdomain(D2, back), Err(XenError::BadPort));
        // The intended peer still can bind.
        assert!(ev.bind_interdomain(D1, back).is_ok());
        // But not twice.
        assert_eq!(ev.bind_interdomain(D1, back), Err(XenError::BadPort));
    }

    #[test]
    fn notify_unbound_fails() {
        let ev = EventChannels::new();
        let back = ev.alloc_unbound(D0, D1);
        assert_eq!(ev.notify(back), Err(XenError::BadPort));
    }

    #[test]
    fn wait_returns_on_notify() {
        let ev = EventChannels::new();
        let (back, front) = pair(&ev);
        let ev2 = ev.clone();
        let t = std::thread::spawn(move || ev2.wait(front, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        ev.notify(back).unwrap();
        assert_eq!(t.join().unwrap().unwrap(), true);
    }

    #[test]
    fn wait_times_out() {
        let ev = EventChannels::new();
        let (_back, front) = pair(&ev);
        assert_eq!(ev.wait(front, Duration::from_millis(20)).unwrap(), false);
    }

    #[test]
    fn close_propagates() {
        let ev = EventChannels::new();
        let (back, front) = pair(&ev);
        ev.close(front).unwrap();
        assert_eq!(ev.notify(back), Err(XenError::BadPort));
    }

    #[test]
    fn purge_kills_peer_channels() {
        let ev = EventChannels::new();
        let (back, _front) = pair(&ev);
        ev.purge_domain(D1);
        assert_eq!(ev.notify(back), Err(XenError::BadPort));
    }

    #[test]
    fn events_coalesce() {
        let ev = EventChannels::new();
        let (back, front) = pair(&ev);
        ev.notify(back).unwrap();
        ev.notify(back).unwrap();
        // Two notifies, one pending bit — exactly Xen's semantics.
        assert!(ev.poll(front).unwrap());
        assert!(!ev.poll(front).unwrap());
    }
}
