//! Shared-memory rings: the split-driver transport.
//!
//! Modelled on Xen's byte-stream rings (the `xencons`/xenstore style used
//! by tpmif): a region of granted pages holds a header with four
//! free-running counters and two circular byte streams, one per direction.
//! Messages are `(id, payload)` with a fixed 8-byte header.
//!
//! Crucially, the ring lives *inside simulated machine memory*, so its
//! contents — TPM commands in flight — are visible to the memory-dump
//! attacker exactly as they are on real hardware. The access-control
//! layer's HMAC covers these bytes; nothing hides them.

use crate::error::{Result, XenError};
use crate::memory::{MachineMemory, PAGE_SIZE};

/// A contiguous-looking region backed by (possibly scattered) frames.
#[derive(Debug, Clone)]
pub struct PageRegion {
    mfns: Vec<usize>,
}

impl PageRegion {
    /// Wrap an ordered list of frames.
    pub fn new(mfns: Vec<usize>) -> Self {
        PageRegion { mfns }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.mfns.len() * PAGE_SIZE
    }

    /// True if the region has no frames.
    pub fn is_empty(&self) -> bool {
        self.mfns.is_empty()
    }

    /// The backing frames.
    pub fn mfns(&self) -> &[usize] {
        &self.mfns
    }

    /// Read bytes starting at `offset`, crossing page boundaries.
    pub fn read(&self, mem: &MachineMemory, mut offset: usize, buf: &mut [u8]) -> Result<()> {
        if offset + buf.len() > self.len() {
            return Err(XenError::BadFrame);
        }
        let mut done = 0;
        while done < buf.len() {
            let page = offset / PAGE_SIZE;
            let in_page = offset % PAGE_SIZE;
            let take = (PAGE_SIZE - in_page).min(buf.len() - done);
            mem.read(self.mfns[page], in_page, &mut buf[done..done + take])?;
            done += take;
            offset += take;
        }
        Ok(())
    }

    /// Write bytes starting at `offset`, crossing page boundaries.
    pub fn write(&self, mem: &mut MachineMemory, mut offset: usize, data: &[u8]) -> Result<()> {
        if offset + data.len() > self.len() {
            return Err(XenError::BadFrame);
        }
        let mut done = 0;
        while done < data.len() {
            let page = offset / PAGE_SIZE;
            let in_page = offset % PAGE_SIZE;
            let take = (PAGE_SIZE - in_page).min(data.len() - done);
            mem.write(self.mfns[page], in_page, &data[done..done + take])?;
            done += take;
            offset += take;
        }
        Ok(())
    }
}

/// Direction of a stream within the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingDir {
    /// Frontend → backend (requests).
    FrontToBack,
    /// Backend → frontend (responses).
    BackToFront,
}

/// Byte offsets of the four counters in the header.
const TX_PROD: usize = 0;
const TX_CONS: usize = 4;
const RX_PROD: usize = 8;
const RX_CONS: usize = 12;
const HEADER_LEN: usize = 16;

/// Per-message header: u32 id, u32 payload length.
const MSG_HEADER: usize = 8;

/// A two-direction byte ring laid out in a [`PageRegion`].
///
/// The struct itself holds no state beyond the region geometry — all
/// counters live in shared memory, so frontend and backend can each hold
/// their own `ByteRing` value over the same frames, exactly like two ends
/// mapping the same grant.
#[derive(Debug, Clone)]
pub struct ByteRing {
    region: PageRegion,
    /// Capacity of each direction's circular buffer.
    half: usize,
}

impl ByteRing {
    /// Lay a ring over `region`. Each direction gets half the space after
    /// the header.
    pub fn new(region: PageRegion) -> Result<Self> {
        if region.len() < HEADER_LEN + 2 * 64 {
            return Err(XenError::BadFrame);
        }
        let half = (region.len() - HEADER_LEN) / 2;
        Ok(ByteRing { region, half })
    }

    /// Zero the counters (done once by the frontend at setup).
    pub fn init(&self, mem: &mut MachineMemory) -> Result<()> {
        self.region.write(mem, TX_PROD, &[0; HEADER_LEN])
    }

    /// Capacity of one direction in bytes.
    pub fn capacity(&self) -> usize {
        self.half
    }

    fn counters(&self, dir: RingDir) -> (usize, usize, usize) {
        // (prod offset, cons offset, data base)
        match dir {
            RingDir::FrontToBack => (TX_PROD, TX_CONS, HEADER_LEN),
            RingDir::BackToFront => (RX_PROD, RX_CONS, HEADER_LEN + self.half),
        }
    }

    fn load_u32(&self, mem: &MachineMemory, off: usize) -> Result<u32> {
        let mut b = [0u8; 4];
        self.region.read(mem, off, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn store_u32(&self, mem: &mut MachineMemory, off: usize, v: u32) -> Result<()> {
        self.region.write(mem, off, &v.to_le_bytes())
    }

    /// Copy `data` into the circular buffer at free-running index `idx`.
    fn copy_in(
        &self,
        mem: &mut MachineMemory,
        base: usize,
        idx: u32,
        data: &[u8],
    ) -> Result<()> {
        let start = idx as usize % self.half;
        let first = (self.half - start).min(data.len());
        self.region.write(mem, base + start, &data[..first])?;
        if first < data.len() {
            self.region.write(mem, base, &data[first..])?;
        }
        Ok(())
    }

    /// Copy out of the circular buffer at free-running index `idx`.
    fn copy_out(
        &self,
        mem: &MachineMemory,
        base: usize,
        idx: u32,
        buf: &mut [u8],
    ) -> Result<()> {
        let start = idx as usize % self.half;
        let first = (self.half - start).min(buf.len());
        self.region.read(mem, base + start, &mut buf[..first])?;
        if first < buf.len() {
            self.region.read(mem, base, &mut buf[first..])?;
        }
        Ok(())
    }

    /// Produce a message; fails with [`XenError::RingFull`] when the free
    /// space cannot hold it and [`XenError::MessageTooLarge`] when it never
    /// could.
    pub fn write_msg(
        &self,
        mem: &mut MachineMemory,
        dir: RingDir,
        id: u32,
        payload: &[u8],
    ) -> Result<()> {
        let need = MSG_HEADER + payload.len();
        if need > self.half {
            return Err(XenError::MessageTooLarge);
        }
        let (prod_off, cons_off, base) = self.counters(dir);
        let prod = self.load_u32(mem, prod_off)?;
        let cons = self.load_u32(mem, cons_off)?;
        let used = prod.wrapping_sub(cons) as usize;
        if used + need > self.half {
            return Err(XenError::RingFull);
        }
        let mut header = [0u8; MSG_HEADER];
        header[..4].copy_from_slice(&id.to_le_bytes());
        header[4..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        self.copy_in(mem, base, prod, &header)?;
        self.copy_in(mem, base, prod.wrapping_add(MSG_HEADER as u32), payload)?;
        self.store_u32(mem, prod_off, prod.wrapping_add(need as u32))
    }

    /// Consume the next message if one is complete; `Ok(None)` when empty.
    pub fn read_msg(
        &self,
        mem: &mut MachineMemory,
        dir: RingDir,
    ) -> Result<Option<(u32, Vec<u8>)>> {
        let (prod_off, cons_off, base) = self.counters(dir);
        let prod = self.load_u32(mem, prod_off)?;
        let cons = self.load_u32(mem, cons_off)?;
        let avail = prod.wrapping_sub(cons) as usize;
        if avail == 0 {
            return Ok(None);
        }
        if avail < MSG_HEADER {
            // A producer would never leave a partial header; treat as empty
            // (it is mid-write on another thread).
            return Ok(None);
        }
        let mut header = [0u8; MSG_HEADER];
        self.copy_out(mem, base, cons, &mut header)?;
        let id = u32::from_le_bytes(header[..4].try_into().unwrap());
        let len = u32::from_le_bytes(header[4..].try_into().unwrap()) as usize;
        if len > self.half - MSG_HEADER {
            return Err(XenError::BadFrame); // corrupted ring
        }
        if avail < MSG_HEADER + len {
            return Ok(None);
        }
        let mut payload = vec![0u8; len];
        self.copy_out(mem, base, cons.wrapping_add(MSG_HEADER as u32), &mut payload)?;
        self.store_u32(mem, cons_off, cons.wrapping_add((MSG_HEADER + len) as u32))?;
        Ok(Some((id, payload)))
    }

    /// Like [`ByteRing::read_msg`], but zeroes the consumed bytes in the
    /// shared buffer afterwards, so a later memory dump cannot recover
    /// stale message contents. The baseline driver does not do this; the
    /// improved one does (part of the AC3 hygiene).
    pub fn read_msg_scrub(
        &self,
        mem: &mut MachineMemory,
        dir: RingDir,
    ) -> Result<Option<(u32, Vec<u8>)>> {
        let (_, cons_off, base) = self.counters(dir);
        let cons_before = self.load_u32(mem, cons_off)?;
        let result = self.read_msg(mem, dir)?;
        if let Some((_, ref payload)) = result {
            let consumed = MSG_HEADER + payload.len();
            let zeros = vec![0u8; consumed];
            self.copy_in(mem, base, cons_before, &zeros)?;
        }
        Ok(result)
    }

    /// Bytes currently queued in `dir`.
    pub fn used(&self, mem: &MachineMemory, dir: RingDir) -> Result<usize> {
        let (prod_off, cons_off, _) = self.counters(dir);
        let prod = self.load_u32(mem, prod_off)?;
        let cons = self.load_u32(mem, cons_off)?;
        Ok(prod.wrapping_sub(cons) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainId;

    fn setup(pages: usize) -> (MachineMemory, ByteRing) {
        let mut mem = MachineMemory::new(pages + 1);
        let mfns = mem.alloc_frames(DomainId(1), pages).unwrap();
        let ring = ByteRing::new(PageRegion::new(mfns)).unwrap();
        ring.init(&mut mem).unwrap();
        (mem, ring)
    }

    #[test]
    fn region_rw_crosses_pages() {
        let mut mem = MachineMemory::new(2);
        let mfns = mem.alloc_frames(DomainId(1), 2).unwrap();
        let region = PageRegion::new(mfns);
        let data: Vec<u8> = (0..200u8).collect();
        region.write(&mut mem, PAGE_SIZE - 100, &data).unwrap();
        let mut buf = vec![0u8; 200];
        region.read(&mem, PAGE_SIZE - 100, &mut buf).unwrap();
        assert_eq!(buf, data);
        // Out of bounds rejected.
        assert!(region.write(&mut mem, 2 * PAGE_SIZE - 10, &data).is_err());
    }

    #[test]
    fn message_roundtrip_both_directions() {
        let (mut mem, ring) = setup(1);
        ring.write_msg(&mut mem, RingDir::FrontToBack, 7, b"request").unwrap();
        ring.write_msg(&mut mem, RingDir::BackToFront, 7, b"response").unwrap();
        let (id, p) = ring.read_msg(&mut mem, RingDir::FrontToBack).unwrap().unwrap();
        assert_eq!((id, p.as_slice()), (7, b"request".as_slice()));
        let (id, p) = ring.read_msg(&mut mem, RingDir::BackToFront).unwrap().unwrap();
        assert_eq!((id, p.as_slice()), (7, b"response".as_slice()));
        assert!(ring.read_msg(&mut mem, RingDir::FrontToBack).unwrap().is_none());
    }

    #[test]
    fn fifo_order_preserved() {
        let (mut mem, ring) = setup(1);
        for i in 0..10u32 {
            ring.write_msg(&mut mem, RingDir::FrontToBack, i, &i.to_le_bytes()).unwrap();
        }
        for i in 0..10u32 {
            let (id, p) = ring.read_msg(&mut mem, RingDir::FrontToBack).unwrap().unwrap();
            assert_eq!(id, i);
            assert_eq!(p, i.to_le_bytes());
        }
    }

    #[test]
    fn ring_full_and_drain() {
        let (mut mem, ring) = setup(1);
        let payload = vec![0xAB; 500];
        let mut written = 0;
        loop {
            match ring.write_msg(&mut mem, RingDir::FrontToBack, written, &payload) {
                Ok(()) => written += 1,
                Err(XenError::RingFull) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(written >= 3, "capacity {} should fit several", ring.capacity());
        // Drain one, then one more write fits.
        ring.read_msg(&mut mem, RingDir::FrontToBack).unwrap().unwrap();
        ring.write_msg(&mut mem, RingDir::FrontToBack, 99, &payload).unwrap();
    }

    #[test]
    fn oversized_message_rejected() {
        let (mut mem, ring) = setup(1);
        let huge = vec![0u8; ring.capacity()];
        assert_eq!(
            ring.write_msg(&mut mem, RingDir::FrontToBack, 0, &huge),
            Err(XenError::MessageTooLarge)
        );
    }

    #[test]
    fn wraparound_preserves_payloads() {
        let (mut mem, ring) = setup(1);
        // Force many cycles through the circular buffer.
        for round in 0..100u32 {
            let payload: Vec<u8> = (0..137).map(|i| (round as u8).wrapping_add(i)).collect();
            ring.write_msg(&mut mem, RingDir::FrontToBack, round, &payload).unwrap();
            let (id, got) = ring.read_msg(&mut mem, RingDir::FrontToBack).unwrap().unwrap();
            assert_eq!(id, round);
            assert_eq!(got, payload, "round {round}");
        }
    }

    #[test]
    fn multi_page_ring() {
        let (mut mem, ring) = setup(4);
        assert!(ring.capacity() > PAGE_SIZE);
        let big = vec![0x5A; PAGE_SIZE + 123];
        ring.write_msg(&mut mem, RingDir::FrontToBack, 1, &big).unwrap();
        let (_, got) = ring.read_msg(&mut mem, RingDir::FrontToBack).unwrap().unwrap();
        assert_eq!(got, big);
    }

    #[test]
    fn directions_are_independent() {
        let (mut mem, ring) = setup(1);
        ring.write_msg(&mut mem, RingDir::FrontToBack, 1, b"req").unwrap();
        assert!(ring.read_msg(&mut mem, RingDir::BackToFront).unwrap().is_none());
        assert_eq!(ring.used(&mem, RingDir::FrontToBack).unwrap(), 8 + 3);
        assert_eq!(ring.used(&mem, RingDir::BackToFront).unwrap(), 0);
    }

    #[test]
    fn ring_contents_visible_in_memory_dump() {
        // The attack surface: command bytes sit in dumpable frames.
        let (mut mem, ring) = setup(1);
        ring.write_msg(&mut mem, RingDir::FrontToBack, 1, b"TPM_SECRET_COMMAND").unwrap();
        let mfn = ring.region.mfns()[0];
        let page = mem.dump_frame(mfn).unwrap();
        let found = page.windows(18).any(|w| w == b"TPM_SECRET_COMMAND");
        assert!(found, "plaintext command must be visible to the dump");
    }

    #[test]
    fn too_small_region_rejected() {
        assert!(ByteRing::new(PageRegion::new(vec![])).is_err());
    }

    #[test]
    fn scrubbing_read_erases_stale_bytes() {
        let (mut mem, ring) = setup(1);
        ring.write_msg(&mut mem, RingDir::FrontToBack, 1, b"EPHEMERAL-SECRET").unwrap();
        let (_, got) = ring.read_msg_scrub(&mut mem, RingDir::FrontToBack).unwrap().unwrap();
        assert_eq!(got, b"EPHEMERAL-SECRET");
        let mfn = ring.region.mfns()[0];
        let page = mem.dump_frame(mfn).unwrap();
        let found = page.windows(16).any(|w| w == b"EPHEMERAL-SECRET");
        assert!(!found, "scrubbed ring must not retain the message");
        // And the plain read_msg variant *does* retain it (baseline).
        ring.write_msg(&mut mem, RingDir::FrontToBack, 2, b"EPHEMERAL-SECRET").unwrap();
        ring.read_msg(&mut mem, RingDir::FrontToBack).unwrap().unwrap();
        let page = mem.dump_frame(mfn).unwrap();
        assert!(page.windows(16).any(|w| w == b"EPHEMERAL-SECRET"));
    }
}
