//! Virtual-time profiling attribution.
//!
//! "Where did the microsecond go?" — answered by attributing every
//! scraped latency series to one of five subsystems and comparing the
//! virtual time each absorbed. The shares come straight from the
//! histogram `sum` fields (total virtual nanoseconds recorded), so
//! they conserve under merge exactly like everything else: a host's
//! shares and the fleet's shares are the same computation over
//! different merges.

/// The subsystems attribution buckets series into, display order.
pub const PROFILE_SUBSYSTEMS: [&str; 5] = ["ring", "crypto", "mirror", "migration", "verify"];

/// Map a scraped series name to its subsystem, `None` for series that
/// are not time-denominated (byte sizes, counters, whole-request
/// totals that would double-count their stages).
pub fn subsystem_for(series: &str) -> Option<&'static str> {
    match series {
        // Ring ingress + access-control hook: the transport floor.
        "stage_ingress" | "stage_ac" => Some("ring"),
        // TPM execute is dominated by the crypto engine.
        "stage_exec" => Some("crypto"),
        "stage_mirror" => Some("mirror"),
        // Whole-attempt migration time (its stages would double-count).
        "migration_total" => Some("migration"),
        "verify_ns" => Some("verify"),
        _ => None,
    }
}

/// Per-subsystem virtual-nanosecond totals → fractional shares.
/// Returns `(subsystem, ns, share)` in [`PROFILE_SUBSYSTEMS`] order;
/// shares are zero when nothing was attributed.
pub fn shares(ns_by_subsystem: &[u64; 5]) -> Vec<(&'static str, u64, f64)> {
    let total: u64 = ns_by_subsystem.iter().sum();
    PROFILE_SUBSYSTEMS
        .iter()
        .zip(ns_by_subsystem)
        .map(|(&name, &ns)| {
            let share = if total == 0 { 0.0 } else { ns as f64 / total as f64 };
            (name, ns, share)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_series_map_and_sizes_do_not() {
        assert_eq!(subsystem_for("stage_exec"), Some("crypto"));
        assert_eq!(subsystem_for("stage_ingress"), Some("ring"));
        assert_eq!(subsystem_for("stage_ac"), Some("ring"));
        assert_eq!(subsystem_for("stage_mirror"), Some("mirror"));
        assert_eq!(subsystem_for("migration_total"), Some("migration"));
        assert_eq!(subsystem_for("verify_ns"), Some("verify"));
        assert_eq!(subsystem_for("mirror_bytes"), None);
        assert_eq!(subsystem_for("total"), None, "would double-count stages");
        assert_eq!(subsystem_for("migration_transfer"), None);
    }

    #[test]
    fn shares_sum_to_one_when_populated() {
        let s = shares(&[10, 20, 30, 40, 0]);
        let total: f64 = s.iter().map(|(_, _, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(s[3], ("migration", 40, 0.4));
        assert_eq!(shares(&[0; 5])[0].2, 0.0);
    }
}
