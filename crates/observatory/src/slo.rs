//! Multi-window SLO burn-rate rules.
//!
//! A rule watches one fleet-wide series and burns when the error rate
//! exceeds the budget in *every* configured window simultaneously —
//! the standard multi-window burn-rate construction: the short window
//! proves the problem is happening *now* (so a long-ago blip cannot
//! page forever), the long window proves it is sustained (so a single
//! slow sample cannot page at all). Multipliers express how many times
//! the budget a window must burn at before it counts.
//!
//! Two rule kinds cover the fleet's objectives:
//!
//! * [`SloKind::LatencyOver`] — a quantile-style objective ("p99 ≤
//!   300 ms" becomes budget 0.01 over threshold 300 ms), evaluated
//!   with [`vtpm_telemetry::Histogram::fraction_over`] on the merged
//!   window, so the fleet-wide answer inherits the histogram's ≤ 1/16
//!   relative-error bound.
//! * [`SloKind::CounterBudget`] — an incident budget ("≤ 64 mirror
//!   scrub failures per window"), evaluated on the windowed sum of
//!   counter increments.
//!
//! Burn state latches: one raise event when a rule starts burning, one
//! clear event when it stops, nothing in between — the same discipline
//! the sentinel's detectors use, so the events can feed them directly.

/// How a rule judges its series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloKind {
    /// Fraction of samples above `threshold_ns` must stay under
    /// `budget` (e.g. 0.01 for a p99 objective).
    LatencyOver {
        /// Objective threshold, virtual nanoseconds.
        threshold_ns: u64,
        /// Allowed fraction of samples over the threshold.
        budget: f64,
    },
    /// Windowed counter increase must stay under `budget` events.
    CounterBudget {
        /// Allowed events per window.
        budget: u64,
    },
}

/// One SLO burn-rate rule over a fleet-wide series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloRule {
    /// Short rule name ("migration-blackout").
    pub name: &'static str,
    /// The gauge name burn events carry into the sentinel stream —
    /// always `slo_burn:<name>`, kept static so `StreamEvent::Gauge`
    /// (which holds `&'static str`) can carry it.
    pub gauge: &'static str,
    /// The scraped series the rule watches.
    pub series: &'static str,
    /// How to judge the series.
    pub kind: SloKind,
    /// `(window_ns, multiplier)` pairs; the rule burns only when every
    /// window exceeds `multiplier ×` budget.
    pub windows: &'static [(u64, f64)],
}

/// Gauge names for the default rules (see [`SloRule::gauge`]).
pub const GAUGE_MIGRATION_BLACKOUT: &str = "slo_burn:migration-blackout";
/// Gauge name for the verify-latency rule.
pub const GAUGE_VERIFY_LATENCY: &str = "slo_burn:verify-latency";
/// Gauge name for the mirror-scrub incident-budget rule.
pub const GAUGE_MIRROR_SCRUB: &str = "slo_burn:mirror-scrub";

/// The fleet's stock objectives:
///
/// * **migration-blackout** — p99 of guest-visible quiesce→commit
///   downtime (`fleet_downtime`, the R-M2 headline series) ≤ 300 ms.
/// * **verify-latency** — p99 of attestation verify latency
///   (`verify_ns`) ≤ 25 µs, the R-A1 floor.
/// * **mirror-scrub** — ≤ 64 mirror scrub failures
///   (`mirror_scrub_failures`) per minute of virtual time, matching
///   the sentinel's scrub budget.
pub fn default_rules() -> Vec<SloRule> {
    vec![
        SloRule {
            name: "migration-blackout",
            gauge: GAUGE_MIGRATION_BLACKOUT,
            series: "fleet_downtime",
            kind: SloKind::LatencyOver { threshold_ns: 300_000_000, budget: 0.01 },
            windows: &[(10_000_000_000, 2.0), (60_000_000_000, 1.0)],
        },
        SloRule {
            name: "verify-latency",
            gauge: GAUGE_VERIFY_LATENCY,
            series: "verify_ns",
            kind: SloKind::LatencyOver { threshold_ns: 25_000, budget: 0.01 },
            windows: &[(10_000_000_000, 2.0), (60_000_000_000, 1.0)],
        },
        SloRule {
            name: "mirror-scrub",
            gauge: GAUGE_MIRROR_SCRUB,
            series: "mirror_scrub_failures",
            kind: SloKind::CounterBudget { budget: 64 },
            windows: &[(60_000_000_000, 1.0)],
        },
    ]
}

/// One burn-state transition, emitted by `Observatory::evaluate`.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnEvent {
    /// The rule that transitioned.
    pub rule: &'static str,
    /// The sentinel gauge name to publish under.
    pub gauge: &'static str,
    /// `true` = started burning, `false` = recovered.
    pub burning: bool,
    /// Worst-window burn ratio at evaluation time (1.0 = exactly at
    /// budget × multiplier); 0.0 on a clear.
    pub burn_ratio: f64,
    /// Virtual evaluation time.
    pub at_ns: u64,
    /// Hosts the failure detector suspected when the transition
    /// happened — the suspect-vs-SLO correlation: a burn with live
    /// suspects usually *is* the suspect's blast radius.
    pub suspects: Vec<u32>,
}

/// Latched burn state for one rule.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct BurnState {
    pub raised: bool,
    pub raises: u64,
    pub clears: u64,
}
