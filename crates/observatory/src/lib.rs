//! # vtpm-observatory
//!
//! The fleet-wide metrics plane: one place that answers "is the fleet
//! healthy, which budget is burning, and where did the microsecond
//! go" for a hundred hosts at once.
//!
//! Four pieces, layered on the telemetry crate's primitives:
//!
//! * **Cross-host aggregation** — hosts ship their registries over the
//!   fabric as sparse histogram encodings
//!   ([`vtpm_telemetry::Histogram::encode`]); the observatory diffs
//!   consecutive cumulative scrapes into deltas
//!   ([`Histogram::delta_since`]) and folds them per host *and*
//!   fleet-wide. Because the log-linear merge is exact, a fleet-wide
//!   p99 carries the same ≤ 1/16 relative-error bound as a single
//!   host's — exact-enough by construction, proven in this crate's
//!   tests against sorted ground truth.
//! * **Downsampling storage** — every series lands in a
//!   [`RollupSeries`] (raw → 10 s → 1 m virtual-time rings) with
//!   count/sum/max conservation across rollup boundaries.
//! * **SLO burn-rate engine** — multi-window rules ([`SloRule`]) over
//!   the merged windows, latched raise/clear [`BurnEvent`]s carrying
//!   the gauge names the sentinel's `slo-burn` detector watches, so
//!   alerts flow into the existing closed loops (pause rebalancing,
//!   throttle admission).
//! * **Profiling attribution** — per-subsystem
//!   (ring/crypto/mirror/migration/verify) virtual-time shares from
//!   the scraped stage series, per host and fleet-wide, rendered from
//!   one text/JSON endpoint through the shared telemetry encoders.
//!
//! Everything is driven by caller-supplied virtual timestamps and the
//! deterministic scrape order, so chaos replays stay byte-identical
//! with the observatory enabled.

mod profile;
mod slo;

pub use profile::{shares, subsystem_for, PROFILE_SUBSYSTEMS};
pub use slo::{
    default_rules, BurnEvent, SloKind, SloRule, GAUGE_MIGRATION_BLACKOUT, GAUGE_MIRROR_SCRUB,
    GAUGE_VERIFY_LATENCY,
};

use std::collections::BTreeMap;
use std::fmt::Write as _;

use slo::BurnState;
use vtpm_telemetry::{hist_json, prom_summary, Histogram, RollupSeries, DEFAULT_ROLLUP_TIERS};

/// Tuning for one [`Observatory`].
#[derive(Debug, Clone)]
pub struct ObservatoryConfig {
    /// Rollup tier layout, finest first (see
    /// [`vtpm_telemetry::RollupSeries::new`]).
    pub tiers: Vec<(u64, usize)>,
    /// The SLO rules to evaluate ([`default_rules`] by default).
    pub rules: Vec<SloRule>,
}

impl Default for ObservatoryConfig {
    fn default() -> Self {
        ObservatoryConfig { tiers: DEFAULT_ROLLUP_TIERS.to_vec(), rules: default_rules() }
    }
}

/// Per-host scrape state: previous cumulative histograms (for
/// delta-diffing), rolled-up deltas, and counter baselines.
struct HostState {
    prev: BTreeMap<String, Histogram>,
    series: BTreeMap<String, RollupSeries>,
    counter_prev: BTreeMap<String, u64>,
    last_scrape_ns: u64,
    scrapes: u64,
}

impl HostState {
    fn new() -> Self {
        HostState {
            prev: BTreeMap::new(),
            series: BTreeMap::new(),
            counter_prev: BTreeMap::new(),
            last_scrape_ns: 0,
            scrapes: 0,
        }
    }
}

/// The fleet-wide metrics plane. One per controller; single-threaded
/// by design (it lives on the control loop, not the hot path).
pub struct Observatory {
    cfg: ObservatoryConfig,
    hosts: BTreeMap<u32, HostState>,
    /// Fleet-wide merged series (same deltas the hosts absorb).
    fleet: BTreeMap<String, RollupSeries>,
    /// Fleet-wide counter *increments* rolled up over virtual time
    /// (for incident-budget rules); latest cumulative values kept
    /// alongside for export.
    counter_rollups: BTreeMap<String, RollupSeries>,
    counter_totals: BTreeMap<String, u64>,
    burns: BTreeMap<&'static str, BurnState>,
    last_suspects: Vec<u32>,
    scrapes: u64,
    decode_rejects: u64,
    host_resets: u64,
}

impl Default for Observatory {
    fn default() -> Self {
        Self::new(ObservatoryConfig::default())
    }
}

impl Observatory {
    /// An empty plane with the given tiers and rules.
    pub fn new(cfg: ObservatoryConfig) -> Self {
        Observatory {
            cfg,
            hosts: BTreeMap::new(),
            fleet: BTreeMap::new(),
            counter_rollups: BTreeMap::new(),
            counter_totals: BTreeMap::new(),
            burns: BTreeMap::new(),
            last_suspects: Vec::new(),
            scrapes: 0,
            decode_rejects: 0,
            host_resets: 0,
        }
    }

    /// Ingest one host's scrape: named sparse histogram encodings plus
    /// cumulative counters, as carried by a fabric metrics frame. The
    /// fields are passed apart from the frame type itself so this
    /// crate depends only on `vtpm-telemetry`.
    ///
    /// Series bytes are untrusted: payloads that fail the hardened
    /// decode are counted in `decode_rejects` and skipped. A series
    /// that went backwards means the host restarted; its fresh
    /// cumulative state counts as the delta and `host_resets` ticks.
    pub fn ingest_scrape(
        &mut self,
        host: u32,
        at_ns: u64,
        series: &[(String, Vec<u8>)],
        counters: &[(String, u64)],
    ) {
        self.scrapes += 1;
        for (name, bytes) in series {
            let Some(cur) = Histogram::decode(bytes) else {
                self.decode_rejects += 1;
                continue;
            };
            self.ingest_cumulative(host, at_ns, name, cur);
        }
        for (name, value) in counters {
            self.ingest_counter(host, at_ns, name, *value);
        }
        let state = self.hosts.entry(host).or_insert_with(HostState::new);
        state.last_scrape_ns = at_ns;
        state.scrapes += 1;
    }

    /// Ingest one cumulative histogram the controller holds locally
    /// (cluster-wide migration telemetry, the fleet controller's own
    /// stage registry, a verifier pool) under a synthetic host id —
    /// same delta-diffing as scraped series.
    pub fn ingest_local(&mut self, host: u32, at_ns: u64, name: &str, current: &Histogram) {
        let copy = Histogram::new();
        copy.merge(current);
        self.ingest_cumulative(host, at_ns, name, copy);
    }

    fn ingest_cumulative(&mut self, host: u32, at_ns: u64, name: &str, cur: Histogram) {
        let tiers = self.cfg.tiers.clone();
        let state = self.hosts.entry(host).or_insert_with(HostState::new);
        let delta = match state.prev.get(name) {
            Some(prev) => match cur.delta_since(prev) {
                Some(d) => d,
                None => {
                    // Registry went backwards: host restarted; the
                    // fresh cumulative state is the delta.
                    self.host_resets += 1;
                    let d = Histogram::new();
                    d.merge(&cur);
                    d
                }
            },
            None => {
                let d = Histogram::new();
                d.merge(&cur);
                d
            }
        };
        state.prev.insert(name.to_string(), cur);
        if delta.count() == 0 && delta.sum() == 0 {
            return;
        }
        state
            .series
            .entry(name.to_string())
            .or_insert_with(|| RollupSeries::new(&tiers))
            .observe(at_ns, &delta);
        self.fleet
            .entry(name.to_string())
            .or_insert_with(|| RollupSeries::new(&tiers))
            .observe(at_ns, &delta);
    }

    /// Ingest one cumulative counter (scraped or controller-local).
    /// Windowed *increments* feed the incident-budget rules; a value
    /// that went backwards counts as a host reset and the fresh value
    /// as the increment.
    pub fn ingest_counter(&mut self, host: u32, at_ns: u64, name: &str, value: u64) {
        let state = self.hosts.entry(host).or_insert_with(HostState::new);
        let increment = match state.counter_prev.get(name) {
            Some(&prev) if value >= prev => value - prev,
            Some(_) => {
                self.host_resets += 1;
                value
            }
            None => value,
        };
        state.counter_prev.insert(name.to_string(), value);
        *self.counter_totals.entry(name.to_string()).or_insert(0) += increment;
        if increment > 0 {
            let tiers = &self.cfg.tiers;
            self.counter_rollups
                .entry(name.to_string())
                .or_insert_with(|| RollupSeries::new(tiers))
                .record(at_ns, increment);
        }
    }

    /// Record the failure detector's current suspect set, so burn
    /// events can correlate "which budget is burning" with "which host
    /// the detector already blames".
    pub fn note_suspects(&mut self, suspects: &[u32]) {
        self.last_suspects = suspects.to_vec();
    }

    /// Evaluate every rule against the merged fleet windows at
    /// `now_ns`. Returns only *transitions* (latched): one raise when
    /// a rule starts burning, one clear when it recovers.
    pub fn evaluate(&mut self, now_ns: u64) -> Vec<BurnEvent> {
        let mut events = Vec::new();
        for rule in &self.cfg.rules {
            // Burn ratio per window = (observed error rate) /
            // (budget × multiplier); the rule burns when every window
            // is ≥ 1. Report the *smallest* window ratio — the
            // constraining one.
            let mut worst = f64::INFINITY;
            for &(window_ns, multiplier) in rule.windows {
                let ratio = match rule.kind {
                    SloKind::LatencyOver { threshold_ns, budget } => {
                        match self.fleet.get(rule.series) {
                            Some(series) => {
                                let merged = series.merged_window(now_ns, window_ns);
                                merged.fraction_over(threshold_ns) / (budget * multiplier)
                            }
                            None => 0.0,
                        }
                    }
                    SloKind::CounterBudget { budget } => match self.counter_rollups.get(rule.series)
                    {
                        Some(series) => {
                            let burned = series.merged_window(now_ns, window_ns).sum();
                            burned as f64 / (budget as f64 * multiplier)
                        }
                        None => 0.0,
                    },
                };
                worst = worst.min(ratio);
            }
            let burning = worst >= 1.0 && worst.is_finite();
            let state = self.burns.entry(rule.name).or_default();
            if burning != state.raised {
                state.raised = burning;
                if burning {
                    state.raises += 1;
                } else {
                    state.clears += 1;
                }
                events.push(BurnEvent {
                    rule: rule.name,
                    gauge: rule.gauge,
                    burning,
                    burn_ratio: if burning { worst } else { 0.0 },
                    at_ns: now_ns,
                    suspects: if burning { self.last_suspects.clone() } else { Vec::new() },
                });
            }
        }
        events
    }

    /// Everything the fleet ever recorded for `series`, merged across
    /// hosts and rollup tiers — conservation-exact.
    pub fn fleet_total(&self, series: &str) -> Option<Histogram> {
        self.fleet.get(series).map(|s| s.total())
    }

    /// One host's total for `series`.
    pub fn host_total(&self, host: u32, series: &str) -> Option<Histogram> {
        self.hosts.get(&host)?.series.get(series).map(|s| s.total())
    }

    /// Hosts currently tracked.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// `(scrapes, decode_rejects, host_resets)` — plane health.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.scrapes, self.decode_rejects, self.host_resets)
    }

    /// Rules currently latched as burning, in rule order.
    pub fn burning(&self) -> Vec<&'static str> {
        self.cfg
            .rules
            .iter()
            .filter(|r| self.burns.get(r.name).is_some_and(|b| b.raised))
            .map(|r| r.name)
            .collect()
    }

    /// Lifetime `(raises, clears)` for one rule.
    pub fn burn_counts(&self, rule: &str) -> (u64, u64) {
        self.burns.get(rule).map_or((0, 0), |b| (b.raises, b.clears))
    }

    /// Per-subsystem virtual-time attribution, fleet-wide.
    pub fn fleet_profile(&self) -> Vec<(&'static str, u64, f64)> {
        let mut ns = [0u64; 5];
        for (name, series) in &self.fleet {
            if let Some(sub) = subsystem_for(name) {
                let idx = PROFILE_SUBSYSTEMS.iter().position(|&s| s == sub).unwrap();
                ns[idx] += series.total().sum();
            }
        }
        shares(&ns)
    }

    /// Per-subsystem virtual-time attribution for one host.
    pub fn host_profile(&self, host: u32) -> Vec<(&'static str, u64, f64)> {
        let mut ns = [0u64; 5];
        if let Some(state) = self.hosts.get(&host) {
            for (name, series) in &state.series {
                if let Some(sub) = subsystem_for(name) {
                    let idx = PROFILE_SUBSYSTEMS.iter().position(|&s| s == sub).unwrap();
                    ns[idx] += series.total().sum();
                }
            }
        }
        shares(&ns)
    }

    /// The fleet-wide endpoint, Prometheus text exposition. Every
    /// histogram renders through the shared
    /// [`vtpm_telemetry::prom_summary`] encoder — the same bytes-path
    /// as per-host exports, so the formats cannot drift.
    pub fn render_text(&self, now_ns: u64) -> String {
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# observatory: {} hosts, {} scrapes", self.hosts.len(), self.scrapes);
        out.push_str("# TYPE vtpm_fleet_series summary\n");
        for (name, series) in &self.fleet {
            let snap = series.total().snapshot();
            prom_summary(&mut out, "vtpm_fleet_series", &format!("series=\"{name}\""), &snap);
        }
        out.push_str("# TYPE vtpm_fleet_counter_total counter\n");
        for (name, total) in &self.counter_totals {
            let _ = writeln!(out, "vtpm_fleet_counter_total{{counter=\"{name}\"}} {total}");
        }
        out.push_str("# TYPE vtpm_slo_burning gauge\n");
        for rule in &self.cfg.rules {
            let b = self.burns.get(rule.name).map_or(false, |b| b.raised);
            let _ = writeln!(out, "vtpm_slo_burning{{rule=\"{}\"}} {}", rule.name, b as u8);
        }
        out.push_str("# TYPE vtpm_profile_share gauge\n");
        for (sub, ns, share) in self.fleet_profile() {
            let _ = writeln!(
                out,
                "vtpm_profile_share{{subsystem=\"{sub}\"}} {share:.6}\nvtpm_profile_ns{{subsystem=\"{sub}\"}} {ns}"
            );
        }
        let _ = writeln!(out, "vtpm_observatory_decode_rejects {}", self.decode_rejects);
        let _ = writeln!(out, "vtpm_observatory_host_resets {}", self.host_resets);
        let _ = writeln!(out, "vtpm_observatory_now_ns {now_ns}");
        out
    }

    /// The same endpoint as JSON, through the shared
    /// [`vtpm_telemetry::hist_json`] encoder.
    pub fn render_json(&self, now_ns: u64) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\n  \"now_ns\": {}, \"hosts\": {}, \"scrapes\": {}, \"decode_rejects\": {}, \"host_resets\": {},\n",
            now_ns,
            self.hosts.len(),
            self.scrapes,
            self.decode_rejects,
            self.host_resets
        );
        out.push_str("  \"fleet\": {");
        for (i, (name, series)) in self.fleet.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": {}", hist_json(&series.total().snapshot()));
        }
        out.push_str("},\n  \"counters\": {");
        for (i, (name, total)) in self.counter_totals.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{name}\": {total}");
        }
        out.push_str("},\n  \"slo\": [");
        for (i, rule) in self.cfg.rules.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let b = self.burns.get(rule.name).copied().unwrap_or_default();
            let _ = write!(
                out,
                "{{\"rule\": \"{}\", \"burning\": {}, \"raises\": {}, \"clears\": {}}}",
                rule.name, b.raised, b.raises, b.clears
            );
        }
        out.push_str("],\n  \"profile\": {");
        for (i, (sub, ns, share)) in self.fleet_profile().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{sub}\": {{\"ns\": {ns}, \"share\": {share:.6}}}");
        }
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape_of(host: u32, at_ns: u64, name: &str, h: &Histogram) -> Vec<(String, Vec<u8>)> {
        let _ = host;
        let _ = at_ns;
        vec![(name.to_string(), h.encode())]
    }

    #[test]
    fn fleet_p99_matches_sorted_ground_truth_within_bound() {
        // The acceptance test: merged cross-host p99 vs the exact
        // order-statistic over every sample, within the histogram's
        // 1/16 relative-error guarantee.
        let mut obs = Observatory::default();
        let mut all: Vec<u64> = Vec::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for host in 0..8u32 {
            let h = Histogram::new();
            for _ in 0..5_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let v = x % 3_000_000 + 1;
                h.record(v);
                all.push(v);
            }
            obs.ingest_scrape(host, 1_000, &scrape_of(host, 1_000, "total", &h), &[]);
        }
        all.sort_unstable();
        let exact_p99 = all[(all.len() - 1) * 99 / 100];
        let fleet = obs.fleet_total("total").expect("series exists");
        assert_eq!(fleet.count(), 40_000);
        let approx_p99 = fleet.snapshot().p99;
        let err = (approx_p99 as f64 - exact_p99 as f64).abs() / exact_p99 as f64;
        assert!(err <= 1.0 / 16.0, "p99 {approx_p99} vs exact {exact_p99}: rel err {err}");
    }

    #[test]
    fn cumulative_scrapes_diff_into_deltas() {
        let mut obs = Observatory::default();
        let h = Histogram::new();
        h.record(100);
        obs.ingest_scrape(3, 1_000, &scrape_of(3, 1_000, "total", &h), &[]);
        h.record(200);
        h.record(300);
        obs.ingest_scrape(3, 2_000, &scrape_of(3, 2_000, "total", &h), &[]);
        let total = obs.fleet_total("total").unwrap();
        // Deltas, not double-counted cumulatives.
        assert_eq!(total.count(), 3);
        assert_eq!(total.sum(), 600);
        // A shrunken registry (host restart) is a reset, not a panic.
        let fresh = Histogram::new();
        fresh.record(50);
        obs.ingest_scrape(3, 3_000, &scrape_of(3, 3_000, "total", &fresh), &[]);
        assert_eq!(obs.stats().2, 1, "one host reset");
        assert_eq!(obs.fleet_total("total").unwrap().count(), 4);
    }

    #[test]
    fn garbage_series_bytes_are_counted_not_ingested() {
        let mut obs = Observatory::default();
        obs.ingest_scrape(0, 1, &[("total".to_string(), vec![0xFF; 7])], &[]);
        assert_eq!(obs.stats(), (1, 1, 0));
        assert!(obs.fleet_total("total").is_none());
    }

    #[test]
    fn blackout_burn_raises_once_and_clears_latched() {
        let mut obs = Observatory::default();
        // 200 fast downtimes, then a regression: 50 samples at 500 ms.
        let h = Histogram::new();
        for _ in 0..200 {
            h.record(5_000_000); // 5 ms
        }
        obs.ingest_local(1000, 1_000_000_000, "fleet_downtime", &h);
        assert_eq!(obs.evaluate(1_000_000_000), vec![], "healthy fleet: no burn");
        for _ in 0..50 {
            h.record(500_000_000); // 500 ms ≫ 300 ms objective
        }
        obs.ingest_local(1000, 2_000_000_000, "fleet_downtime", &h);
        let events = obs.evaluate(2_000_000_000);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].rule, "migration-blackout");
        assert_eq!(events[0].gauge, GAUGE_MIGRATION_BLACKOUT);
        assert!(events[0].burning && events[0].burn_ratio >= 1.0);
        // Latched: still burning → no second raise.
        assert_eq!(obs.evaluate(2_100_000_000), vec![]);
        assert_eq!(obs.burning(), vec!["migration-blackout"]);
        // Far in the virtual future the bad windows age out of every
        // live ring; the rule clears exactly once.
        let mut cleared = Vec::new();
        for i in 0..40u64 {
            let now = 3_000_000_000 + i * 60_000_000_000;
            cleared.extend(obs.evaluate(now));
        }
        assert_eq!(cleared.len(), 1, "exactly one clear event");
        assert!(!cleared[0].burning);
        assert_eq!(obs.burn_counts("migration-blackout"), (1, 1));
    }

    #[test]
    fn burn_events_carry_suspect_correlation() {
        let mut obs = Observatory::default();
        obs.note_suspects(&[7, 13]);
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(900_000_000);
        }
        obs.ingest_local(1000, 1_000, "fleet_downtime", &h);
        let events = obs.evaluate(1_000);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].suspects, vec![7, 13]);
    }

    #[test]
    fn counter_budget_rule_burns_on_windowed_increments() {
        let mut obs = Observatory::default();
        obs.ingest_counter(2, 1_000, "mirror_scrub_failures", 10);
        assert_eq!(obs.evaluate(1_000), vec![], "10 < 64 budget");
        obs.ingest_counter(2, 2_000, "mirror_scrub_failures", 80);
        let events = obs.evaluate(2_000);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].rule, "mirror-scrub");
        // Counter went backwards → reset semantics, no underflow.
        obs.ingest_counter(2, 3_000, "mirror_scrub_failures", 5);
        assert!(obs.stats().2 >= 1);
    }

    #[test]
    fn profile_attributes_time_to_subsystems() {
        let mut obs = Observatory::default();
        let exec = Histogram::new();
        exec.record(3_000);
        let mirror = Histogram::new();
        mirror.record(1_000);
        obs.ingest_scrape(
            0,
            1_000,
            &[
                ("stage_exec".to_string(), exec.encode()),
                ("stage_mirror".to_string(), mirror.encode()),
            ],
            &[],
        );
        let profile = obs.fleet_profile();
        let crypto = profile.iter().find(|(s, _, _)| *s == "crypto").unwrap();
        assert_eq!(crypto.1, 3_000);
        assert!((crypto.2 - 0.75).abs() < 1e-9);
        let host = obs.host_profile(0);
        assert_eq!(host, profile, "single host: host and fleet shares agree");
    }

    #[test]
    fn endpoints_render_both_formats_from_shared_encoders() {
        let mut obs = Observatory::default();
        let h = Histogram::new();
        for v in [10, 1_000, 50_000] {
            h.record(v);
        }
        obs.ingest_scrape(0, 1_000, &scrape_of(0, 1_000, "total", &h), &[("allowed".into(), 3)]);
        let text = obs.render_text(2_000);
        assert!(text.contains("vtpm_fleet_series{series=\"total\",quantile=\"0.99\"}"));
        assert!(text.contains("vtpm_fleet_counter_total{counter=\"allowed\"} 3"));
        assert!(text.contains("vtpm_slo_burning{rule=\"migration-blackout\"} 0"));
        assert!(text.contains("vtpm_profile_share{subsystem=\"crypto\"}"));
        let json = obs.render_json(2_000);
        assert!(json.contains("\"total\": {\"count\": 3"));
        assert!(json.contains("\"rule\": \"migration-blackout\", \"burning\": false"));
        assert!(json.contains("\"profile\""));
    }
}
