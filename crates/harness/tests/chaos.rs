//! Integration tests for the chaos harness: several seeds, each with a
//! distinct fault plan, run against the oracle — and each run replayed
//! to prove the whole scenario (faults included) is deterministic.

use vtpm::MirrorMode;
use vtpm_harness::{run_chaos, ChaosConfig, FaultPlan, PlannedFault};
use workload::generate_trace;

fn quick() -> ChaosConfig {
    // Smaller than the CLI defaults: these run in debug CI.
    ChaosConfig { events: 48, faults: 4, ..ChaosConfig::default() }
}

#[test]
fn seeded_runs_are_deterministic() {
    for seed in [b"det-0".as_slice(), b"det-1", b"det-2"] {
        let a = run_chaos(seed, &quick()).unwrap();
        let b = run_chaos(seed, &quick()).unwrap();
        assert_eq!(a, b, "same seed must replay byte-identically");
    }
}

#[test]
fn chaos_never_diverges_from_the_oracle() {
    for s in 0..4u32 {
        let seed = format!("chaos-ci-{s}");
        let report = run_chaos(seed.as_bytes(), &quick()).unwrap();
        assert_eq!(
            report.divergences,
            Vec::<String>::new(),
            "seed {seed} diverged"
        );
        assert_eq!(report.nonce_reuses, 0, "seed {seed} reused a CTR nonce pair");
        assert_eq!(report.events, 48);
    }
}

#[test]
fn cleartext_mode_is_also_covered() {
    let cfg = ChaosConfig { mirror_mode: MirrorMode::Cleartext, ..quick() };
    let report = run_chaos(b"chaos-clear", &cfg).unwrap();
    assert_eq!(report.divergences, Vec::<String>::new());
}

#[test]
fn crash_heavy_plan_always_recovers_to_pre_or_post() {
    // Force a crash-rich scenario by sweeping seeds until the derived
    // plan contains crashes, then require every recovery to have
    // matched one of the two legal states.
    let mut crashes_seen = 0;
    for s in 0..12u32 {
        let seed = format!("crashy-{s}");
        let trace = generate_trace(seed.as_bytes(), 48);
        let plan = FaultPlan::generate(seed.as_bytes(), &trace, 4);
        let planned_crashes = plan
            .faults
            .values()
            .filter(|f| matches!(f, PlannedFault::CrashAfterWrites(_)))
            .count() as u64;
        if planned_crashes == 0 {
            continue;
        }
        let report = run_chaos(seed.as_bytes(), &quick()).unwrap();
        assert_eq!(report.crash_recoveries, planned_crashes);
        assert_eq!(
            report.recovered_post + report.recovered_pre,
            report.crash_recoveries,
            "seed {seed}: some recovery matched neither oracle state"
        );
        assert_eq!(report.divergences, Vec::<String>::new(), "seed {seed}");
        crashes_seen += planned_crashes;
        if crashes_seen >= 3 {
            return;
        }
    }
    assert!(crashes_seen > 0, "no seed produced a crash fault; widen the sweep");
}
