//! # vtpm-harness
//!
//! Deterministic chaos + differential testing for the vTPM stack.
//!
//! One chaos run takes a seed and does three things with it:
//!
//! 1. derives a command trace ([`workload::generate_trace`]) — the same
//!    guest workload every run of that seed;
//! 2. derives a [`FaultPlan`] — *which* fault fires *before which
//!    event*, chosen from the same seed, so fault timing replays
//!    exactly;
//! 3. replays the trace through the **full stack** (guest frontend →
//!    ring → backend → manager → instance TPM → encrypted mirror)
//!    while a [`workload::TpmOracle`] replays it independently, and
//!    diffs the two.
//!
//! Faults cover the four families the mirror pipeline must survive:
//! frame corruption in the mirror region (detected via the committed
//! digests, then repaired), dropped and duplicated ring responses,
//! grant revocation mid-exchange (the guest reconnects), and a forced
//! manager crash between any two mirror page writes — after which the
//! manager is rebuilt from the Dom0 mirror frames alone
//! ([`VtpmManager::recover`]) and the recovered TPM must equal either
//! the pre- or the post-command oracle, never anything else.
//!
//! Every observable of a run is folded into a transcript hash; running
//! the same seed twice must produce byte-identical [`ChaosReport`]s,
//! which is what `tests/chaos.rs` and `scripts/chaos.sh` check.

pub mod attest_chaos;
pub mod fleet_chaos;
pub mod migration_chaos;
pub mod sentinel_feed;

pub use attest_chaos::{run_attest_chaos, AttestChaosConfig, AttestChaosReport};
pub use fleet_chaos::{run_fleet_chaos, FleetChaosConfig, FleetChaosReport};
pub use migration_chaos::{
    run_crash_matrix, run_migration_chaos, CrashMatrixReport, MatrixCell, MigrationChaosConfig,
    MigrationChaosReport,
};
pub use sentinel_feed::{
    apply_fleet_alerts, apply_slo_alerts, apply_verifier_alerts, attest_event, audit_event,
    dump_event,
};

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tpm::{Tpm, TpmConfig, Transport as _};
use tpm_crypto::drbg::Drbg;
use tpm_crypto::sha256;
use vtpm::{
    provision_device, FlushPolicy, ManagerConfig, MirrorMode, TpmBack, TpmFront, VtpmManager,
};
use vtpm_sentinel::{Sentinel, SentinelConfig, Severity, StreamEvent};
use workload::trace::apply_to_tpm;
use workload::{generate_trace, TpmOracle, TraceEvent};
use xen_sim::{DomainConfig, DomainId, Hypervisor, Result as XenResult, RingFault};

/// One planned fault, fired immediately before the event at its index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedFault {
    /// XOR garbage into a committed mirror frame; the read path must
    /// detect it, and un-XORing must heal it.
    CorruptFrame,
    /// The backend's response to this command is lost on the ring.
    RingDrop,
    /// The backend's response is delivered twice.
    RingDuplicate,
    /// The guest revokes its ring grants mid-exchange; the device pair
    /// must be torn down and reconnected.
    RevokeGrants,
    /// The manager crashes after `0..n` further mirror page writes and
    /// is rebuilt from the Dom0 frames alone.
    CrashAfterWrites(u64),
}

impl PlannedFault {
    /// Short stable name (transcripts, reports).
    pub fn name(&self) -> &'static str {
        match self {
            PlannedFault::CorruptFrame => "corrupt-frame",
            PlannedFault::RingDrop => "ring-drop",
            PlannedFault::RingDuplicate => "ring-duplicate",
            PlannedFault::RevokeGrants => "revoke-grants",
            PlannedFault::CrashAfterWrites(_) => "crash",
        }
    }

    /// Whether this fault rides on a ring exchange (and therefore needs
    /// a wire event to fire on).
    fn needs_wire(&self) -> bool {
        matches!(
            self,
            PlannedFault::RingDrop | PlannedFault::RingDuplicate | PlannedFault::RevokeGrants
        )
    }
}

/// A seeded schedule of faults over a trace: event index → fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The schedule. At most one fault per event.
    pub faults: BTreeMap<usize, PlannedFault>,
}

impl FaultPlan {
    /// Derive a plan of up to `count` faults for `trace` from `seed`.
    /// Ring faults only land on wire events (toolstack events never
    /// cross the ring); index 0 (the initial Startup) is left clean so
    /// every run starts from a started TPM.
    pub fn generate(seed: &[u8], trace: &[TraceEvent], count: usize) -> FaultPlan {
        let mut rng = Drbg::new(&[seed, b"/fault-plan"].concat());
        let mut faults = BTreeMap::new();
        if trace.len() < 2 {
            return FaultPlan { faults };
        }
        // Bounded rejection sampling: a pathological trace (all
        // toolstack events, say) must not loop forever.
        let mut attempts = 0;
        while faults.len() < count && attempts < count * 64 + 64 {
            attempts += 1;
            let fault = match rng.below(5) {
                0 => PlannedFault::CorruptFrame,
                1 => PlannedFault::RingDrop,
                2 => PlannedFault::RingDuplicate,
                3 => PlannedFault::RevokeGrants,
                _ => PlannedFault::CrashAfterWrites(rng.below(8)),
            };
            let idx = 1 + rng.below((trace.len() - 1) as u64) as usize;
            if faults.contains_key(&idx) || (fault.needs_wire() && trace[idx].is_toolstack()) {
                continue;
            }
            faults.insert(idx, fault);
        }
        FaultPlan { faults }
    }
}

/// Tunables for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Trace length.
    pub events: usize,
    /// Faults to schedule.
    pub faults: usize,
    /// Mirror mode under test.
    pub mirror_mode: MirrorMode,
    /// NV budget for the instance (large enough that the trace's NV
    /// provisioning grows the state across mirror pages).
    pub nv_budget: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            events: 80,
            faults: 6,
            mirror_mode: MirrorMode::Encrypted,
            nv_budget: 32 * 1024,
        }
    }
}

/// Everything observable about one chaos run. Two runs of the same
/// seed and config must compare equal — that is the determinism
/// contract `scripts/chaos.sh` enforces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// Hex of the seed the run was derived from.
    pub seed: String,
    /// Events replayed.
    pub events: usize,
    /// The faults that were scheduled, in firing order.
    pub faults: Vec<(usize, &'static str)>,
    /// Manager crash/recovery cycles performed.
    pub crash_recoveries: u64,
    /// Recoveries whose state matched the post-command oracle.
    pub recovered_post: u64,
    /// Recoveries whose state matched the pre-command oracle.
    pub recovered_pre: u64,
    /// Device reconnects after grant revocation.
    pub ring_reconnects: u64,
    /// Oracle/stack divergences (empty on a correct stack).
    pub divergences: Vec<String>,
    /// Mirror CTR nonce-pair collisions observed across the whole run,
    /// crash/recovery cycles included (must be 0).
    pub nonce_reuses: u64,
    /// Requests the manager completed end to end (telemetry `finished`),
    /// summed across every manager epoch (recovery replaces the manager
    /// and with it the registry, so per-epoch counts are accumulated
    /// just before each replacement).
    pub completed: u64,
    /// Span-ring overflow drops, summed across manager epochs. The
    /// harness sizes the ring generously, so nonzero here means the
    /// telemetry pipeline lost events it should have kept.
    pub dropped_events: u64,
    /// Mirror pages whose hygiene scrub failed, summed across epochs
    /// (must be 0 — a failed scrub leaks stale ciphertext to Dom0).
    pub scrub_failures: u64,
    /// Mirror generations burned via the attempted-generation escrow on
    /// retry, summed across epochs. Nonzero is expected whenever crash
    /// faults interrupt commits; it is the mechanism that keeps
    /// `nonce_reuses` at 0.
    pub retried_generation_burns: u64,
    /// Sentinel alert lines, in firing order. A clean chaos run (faults
    /// are injected, attacks are not) must produce zero critical
    /// alerts — that is the R-D1 false-positive gate.
    pub sentinel_alerts: Vec<String>,
    /// Critical (attack-class) alerts among `sentinel_alerts`.
    pub sentinel_critical: u64,
    /// Black-box flight dumps the sentinel captured.
    pub sentinel_flight_dumps: u64,
    /// SHA-256 over the run transcript (every response, generation and
    /// recovery outcome, in order).
    pub transcript: [u8; 32],
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// enough for report fields, which are ASCII by construction.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `["a","b"]` from strings, escaped.
pub(crate) fn json_str_array(items: impl IntoIterator<Item = impl AsRef<str>>) -> String {
    let inner: Vec<String> = items.into_iter().map(|s| json_str(s.as_ref())).collect();
    format!("[{}]", inner.join(","))
}

impl ChaosReport {
    /// One machine-readable JSON object (single line, stable field
    /// order) — the `--json` chaos CLI output format.
    pub fn to_json(&self) -> String {
        let faults: Vec<String> = self
            .faults
            .iter()
            .map(|(at, name)| format!("{{\"at\":{at},\"fault\":{}}}", json_str(name)))
            .collect();
        format!(
            "{{\"family\":\"mirror\",\"seed\":{},\"events\":{},\"faults\":[{}],\
             \"crash_recoveries\":{},\"recovered_post\":{},\"recovered_pre\":{},\
             \"ring_reconnects\":{},\"completed\":{},\"dropped_events\":{},\
             \"scrub_failures\":{},\"retried_generation_burns\":{},\"nonce_reuses\":{},\
             \"divergences\":{},\"sentinel_alerts\":{},\"sentinel_critical\":{},\
             \"sentinel_flight_dumps\":{},\"transcript\":{}}}",
            json_str(&self.seed),
            self.events,
            faults.join(","),
            self.crash_recoveries,
            self.recovered_post,
            self.recovered_pre,
            self.ring_reconnects,
            self.completed,
            self.dropped_events,
            self.scrub_failures,
            self.retried_generation_burns,
            self.nonce_reuses,
            json_str_array(&self.divergences),
            json_str_array(&self.sentinel_alerts),
            self.sentinel_critical,
            self.sentinel_flight_dumps,
            json_str(&hex(&self.transcript)),
        )
    }
}

/// Fold one manager epoch's telemetry and mirror counters into the
/// report. Called immediately before crash recovery replaces the
/// manager (which discards its registry) and once at run end, so the
/// report's totals cover the whole run. Each call point is quiescent —
/// no exchange is in flight — so the conservation invariants must hold
/// *exactly*; a violation is reported as a divergence like any other
/// oracle mismatch.
fn absorb_epoch_counters(
    mgr: &VtpmManager,
    report: &mut ChaosReport,
    at: &str,
    sentinel: &mut Sentinel,
    now_ns: u64,
) {
    if let Some(t) = mgr.telemetry() {
        let s = t.snapshot();
        if s.in_flight != 0 {
            report.divergences.push(format!(
                "{at}: telemetry reports {} requests in flight at quiescence",
                s.in_flight
            ));
        }
        if s.allowed + s.denied + s.malformed != s.finished {
            report.divergences.push(format!(
                "{at}: outcome counters do not conserve: {} + {} + {} != {}",
                s.allowed, s.denied, s.malformed, s.finished
            ));
        }
        report.completed += s.finished;
        report.dropped_events += s.dropped_events;
        // The sentinel consumes this epoch's spans as a stream; the
        // ring is drained here anyway (the registry dies with the
        // epoch), so detection adds no retention cost.
        for record in t.drain_spans() {
            sentinel.observe(StreamEvent::Span { host: 0, record });
        }
    }
    let io = mgr.mirror_io_stats();
    report.scrub_failures += io.scrub_failures;
    report.retried_generation_burns += io.retried_generation_burns;
    sentinel.observe(StreamEvent::Gauge {
        host: 0,
        at_ns: now_ns,
        name: "mirror_scrub_failures",
        value: io.scrub_failures,
    });
    sentinel.observe(StreamEvent::Gauge {
        host: 0,
        at_ns: now_ns,
        name: "nonce_reuses",
        value: mgr.nonce_reuses(),
    });
}

/// Synchronously complete one ring exchange: the caller's command goes
/// in, the backend is pumped on a scoped thread until it has served
/// (or failed), and the response comes back. `served_err` is true when
/// the backend died serving (grant revocation).
fn exchange(front: &mut TpmFront, back: &TpmBack, cmd: &[u8]) -> (Vec<u8>, bool) {
    std::thread::scope(|s| {
        let server = s.spawn(|| {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match back.serve_pending() {
                    Ok(0) => {}
                    Ok(_) => return false,
                    Err(_) => return true,
                }
                if Instant::now() >= deadline {
                    return false;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let resp = front.transact(cmd);
        let served_err = server.join().unwrap_or(false);
        (resp, served_err)
    })
}

/// Run one seeded chaos scenario end to end. See the crate docs for
/// what a run does; the returned report is deterministic in `seed` and
/// `cfg`.
pub fn run_chaos(seed: &[u8], cfg: &ChaosConfig) -> XenResult<ChaosReport> {
    let trace = generate_trace(seed, cfg.events);
    let plan = FaultPlan::generate(seed, &trace, cfg.faults);
    let mut corrupt_rng = Drbg::new(&[seed, b"/corrupt"].concat());

    let hv = Arc::new(Hypervisor::boot(8192, 16)?);
    let mgr_cfg = ManagerConfig {
        mirror_mode: cfg.mirror_mode,
        vtpm_config: TpmConfig { nv_budget: cfg.nv_budget, ..Default::default() },
        // Route every update through the group-commit staging path (the
        // flush itself stays per-command so crash points land exactly
        // where the fault plan expects them); chaos then exercises the
        // staged pipeline under the same byte-determinism gate.
        flush_policy: FlushPolicy::batched(0, 1, 0),
        ..Default::default()
    };
    let mut mgr = Arc::new(VtpmManager::new(Arc::clone(&hv), seed, mgr_cfg.clone())?);
    mgr.enable_nonce_audit();

    let guest = hv.create_domain(
        DomainId::DOM0,
        DomainConfig { memory_pages: 64, ..DomainConfig::small("chaos-guest") },
    )?;
    let id = mgr.create_instance()?;
    provision_device(&hv, guest, id)?;
    let mut front = TpmFront::connect(Arc::clone(&hv), guest)?;
    // Dropped responses are resolved by this timeout; keep it short.
    front.timeout = Duration::from_millis(300);
    let mut back = TpmBack::connect(Arc::clone(&hv), Arc::clone(&mgr), guest)?;

    let mut oracle = mgr
        .with_instance(id, |i| TpmOracle::capture(&i.tpm))
        .expect("instance just created");

    let mut report = ChaosReport {
        seed: hex(seed),
        events: trace.len(),
        faults: plan.faults.iter().map(|(&i, f)| (i, f.name())).collect(),
        crash_recoveries: 0,
        recovered_post: 0,
        recovered_pre: 0,
        ring_reconnects: 0,
        divergences: Vec::new(),
        nonce_reuses: 0,
        completed: 0,
        dropped_events: 0,
        scrub_failures: 0,
        retried_generation_burns: 0,
        sentinel_alerts: Vec::new(),
        sentinel_critical: 0,
        sentinel_flight_dumps: 0,
        transcript: [0; 32],
    };
    let mut transcript: Vec<u8> = Vec::new();
    let mut sentinel = Sentinel::new(SentinelConfig::default());

    for (i, ev) in trace.iter().enumerate() {
        let fault = plan.faults.get(&i).copied();
        transcript.extend_from_slice(&(i as u32).to_be_bytes());

        // Pre-event fault arming.
        match fault {
            Some(PlannedFault::CorruptFrame) => {
                // Corrupt a committed mirror frame, prove the read path
                // refuses the image, heal it, prove it reads again.
                // Offsets stay inside the first META_FIXED bytes, which
                // both the meta checksum and the per-page digests cover.
                let frames = mgr.mirror_frames(id).unwrap_or_default();
                if !frames.is_empty() {
                    let mfn = frames[corrupt_rng.below(frames.len() as u64) as usize];
                    let off = corrupt_rng.below(20) as usize;
                    let mut xor = [0u8; 16];
                    corrupt_rng.fill_bytes(&mut xor);
                    xor[0] |= 1; // never a no-op
                    hv.corrupt_frame(mfn, off, &xor)?;
                    let detected = mgr.resident_image(id).is_err();
                    hv.corrupt_frame(mfn, off, &xor)?; // XOR is its own inverse
                    let healed = mgr.resident_image(id).is_ok();
                    if !detected {
                        report
                            .divergences
                            .push(format!("event {i}: frame corruption went undetected"));
                    }
                    if !healed {
                        report
                            .divergences
                            .push(format!("event {i}: repaired mirror still unreadable"));
                    }
                    transcript.push(detected as u8);
                    transcript.push(healed as u8);
                }
            }
            Some(PlannedFault::RingDrop) => hv.inject_ring_fault(RingFault::Drop),
            Some(PlannedFault::RingDuplicate) => hv.inject_ring_fault(RingFault::Duplicate),
            Some(PlannedFault::RevokeGrants) => hv.inject_ring_fault(RingFault::RevokeGrants),
            Some(PlannedFault::CrashAfterWrites(k)) => hv.inject_write_crash(DomainId::DOM0, k),
            None => {}
        }
        let pre_oracle = matches!(fault, Some(PlannedFault::CrashAfterWrites(_)))
            .then(|| oracle.clone());

        // Apply the event through the stack and (except for lost
        // commands) the oracle.
        if let Some(wire) = ev.wire_command() {
            let (resp, backend_died) = exchange(&mut front, &back, &wire);
            transcript.extend_from_slice(&(resp.len() as u32).to_be_bytes());
            transcript.extend_from_slice(&resp);
            if matches!(fault, Some(PlannedFault::RevokeGrants)) {
                if !backend_died {
                    report
                        .divergences
                        .push(format!("event {i}: grant revocation did not stop the backend"));
                }
                // The request died with the ring before reaching the
                // manager: the oracle must NOT see it. Reconnect the
                // device pair the way a rebooting frontend would.
                let old = std::mem::replace(&mut front, TpmFront::connect(Arc::clone(&hv), guest)?);
                old.disconnect();
                front.timeout = Duration::from_millis(300);
                back = TpmBack::connect(Arc::clone(&hv), Arc::clone(&mgr), guest)?;
                report.ring_reconnects += 1;
            } else {
                // Executed server-side even when the response was lost
                // (RingDrop) — that ambiguity is exactly what the
                // oracle model must capture.
                oracle.apply(ev);
            }
        } else {
            mgr.with_instance(id, |inst| apply_to_tpm(&mut inst.tpm, ev))
                .expect("instance routed");
            oracle.apply(ev);
        }

        // Post-event crash/recovery cycle.
        if matches!(fault, Some(PlannedFault::CrashAfterWrites(_))) {
            report.nonce_reuses += mgr.nonce_reuses();
            // Recovery builds a fresh manager (and a fresh telemetry
            // registry); bank this epoch's counters first.
            absorb_epoch_counters(
                &mgr,
                &mut report,
                &format!("event {i}"),
                &mut sentinel,
                hv.clock.now_ns(),
            );
            hv.clear_faults();
            let (rec, rec_report) = VtpmManager::recover(Arc::clone(&hv), seed, mgr_cfg.clone())?;
            let rec = Arc::new(rec);
            rec.enable_nonce_audit();
            back = back.rebind(Arc::clone(&rec));
            mgr = rec;
            report.crash_recoveries += 1;
            sentinel.observe(StreamEvent::CrashRecovery { host: 0, at_ns: hv.clock.now_ns() });
            transcript.push(rec_report.resumed.len() as u8);
            transcript.push(rec_report.failed.len() as u8);

            // The recovered TPM must equal the post- or pre-command
            // oracle — the two legal outcomes of an atomic commit.
            let diff_post = mgr.with_instance(id, |inst| oracle.diff(&inst.tpm));
            match diff_post {
                Some(d) if d.is_empty() => {
                    report.recovered_post += 1;
                    transcript.push(b'P');
                }
                Some(_) => {
                    let pre = pre_oracle.expect("cloned before crash");
                    match mgr.with_instance(id, |inst| pre.diff(&inst.tpm)) {
                        Some(d) if d.is_empty() => {
                            // Roll the oracle back: the command's effects
                            // died with the uncommitted mirror update.
                            oracle = pre;
                            report.recovered_pre += 1;
                            transcript.push(b'p');
                        }
                        Some(d) => report.divergences.push(format!(
                            "event {i}: recovered state matches neither pre nor post oracle: {}",
                            d.join("; ")
                        )),
                        None => report
                            .divergences
                            .push(format!("event {i}: instance vanished in recovery")),
                    }
                }
                None => report
                    .divergences
                    .push(format!("event {i}: instance not resumed after crash")),
            }

            // The rebuilt TPM is a fresh boot over preserved permanent
            // state: its active-counter latch is clear, so the oracle's
            // must be too or later increments land on different counters.
            oracle.note_reboot();
        }

        // Periodic full differential check.
        if i % 16 == 15 {
            let d = mgr
                .with_instance(id, |inst| oracle.diff(&inst.tpm))
                .unwrap_or_else(|| vec!["instance missing".into()]);
            transcript.push(d.len() as u8);
            report
                .divergences
                .extend(d.into_iter().map(|d| format!("event {i}: {d}")));
        }
    }

    // Final differential check + mirror coherence.
    let d = mgr
        .with_instance(id, |inst| oracle.diff(&inst.tpm))
        .unwrap_or_else(|| vec!["instance missing".into()]);
    report.divergences.extend(d.into_iter().map(|d| format!("final: {d}")));
    let image = mgr.resident_image(id)?;
    if Tpm::restore_state(&image, seed, mgr_cfg.vtpm_config.clone()).is_err() {
        report.divergences.push("final: resident image does not decode".into());
    }
    let in_memory = mgr.export_instance_state(id).expect("instance routed");
    if image != in_memory {
        report.divergences.push("final: resident image diverges from live state".into());
    }
    report.nonce_reuses += mgr.nonce_reuses();
    absorb_epoch_counters(&mgr, &mut report, "final", &mut sentinel, hv.clock.now_ns());
    // Any use of the hypervisor's dump facility goes to the sentinel
    // too. The chaos workload itself never dumps; the crash-recovery
    // scans that do are excused by the CrashRecovery markers fed above,
    // so an alert here is real.
    for d in hv.dump_events() {
        sentinel.observe(sentinel_feed::dump_event(0, &d));
    }
    report.sentinel_alerts = sentinel.alerts().iter().map(|a| a.line()).collect();
    report.sentinel_critical =
        sentinel.alerts().iter().filter(|a| a.severity == Severity::Critical).count() as u64;
    report.sentinel_flight_dumps = sentinel.flight_dumps().len() as u64;
    for line in &report.sentinel_alerts {
        transcript.extend_from_slice(line.as_bytes());
    }
    transcript.push(report.sentinel_flight_dumps as u8);
    report.transcript = sha256(&transcript);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_are_deterministic_and_eligible() {
        let trace = generate_trace(b"plan-seed", 120);
        let a = FaultPlan::generate(b"plan-seed", &trace, 8);
        let b = FaultPlan::generate(b"plan-seed", &trace, 8);
        assert_eq!(a, b);
        assert!(!a.faults.is_empty());
        assert!(!a.faults.contains_key(&0), "the initial Startup stays clean");
        for (&idx, fault) in &a.faults {
            if fault.needs_wire() {
                assert!(!trace[idx].is_toolstack(), "ring fault on a toolstack event");
            }
        }
        let c = FaultPlan::generate(b"other-seed", &trace, 8);
        assert_ne!(a, c, "different seeds must give different plans");
    }

    #[test]
    fn empty_trace_yields_empty_plan() {
        assert!(FaultPlan::generate(b"s", &[], 4).faults.is_empty());
        let one = generate_trace(b"s", 1);
        assert!(FaultPlan::generate(b"s", &one, 4).faults.is_empty());
    }
}
