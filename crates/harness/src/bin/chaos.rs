//! Chaos CLI: replay N seeded fault scenarios, each twice, and fail on
//! any oracle divergence, nonce reuse, or nondeterministic replay.
//!
//! ```text
//! chaos [--seeds N] [--events N] [--faults N] [--mode encrypted|cleartext]
//!       [--base LABEL] [--jobs N]
//!       [--family mirror|migration|attest|fleet|both|all] [--matrix] [--json]
//! ```
//!
//! Seeds run in parallel across `--jobs` worker threads (default: all
//! cores). Every seed is still executed twice and diffed, the per-seed
//! output lines are printed in seed order regardless of completion
//! order, and the exit status is unchanged: 0 clean, 1 divergence /
//! nonce reuse / nondeterministic replay, 2 bad usage.
//!
//! `--family` picks the scenario family: `mirror` (default) is the
//! single-host mirror pipeline, `migration` the multi-host cluster
//! scenarios, `attest` the attestation-plane quote-storm/replay
//! scenarios, `fleet` the control-plane churn scenarios (failure
//! detection, concurrent drivers, rebalancing under crash storms),
//! `both` runs mirror + migration back to back on the same seed list,
//! `all` runs every family. Attest seeds *expect* critical sentinel
//! alerts (the injected attacks must be detected), so their clean
//! criterion is divergence-freedom alone — missed detections and false
//! positives are folded into the divergence list by the family itself.
//! Fleet seeds additionally require zero lost / duplicated / orphaned
//! vTPMs and that every injected drive conflict resolved to at most one
//! winner. `--matrix` additionally runs the exhaustive
//! crash-at-every-step migration matrix (both roles x every protocol
//! step) on one seed.
//!
//! `--json` switches the per-seed output to one JSON object per line
//! (stable field order; `report` is the full seed report, plus
//! `deterministic` and `failed` verdicts), still printed in seed order
//! — pipe it into `jq` or the bench tooling. The summary line and exit
//! status are unchanged.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use vtpm::MirrorMode;
use vtpm_harness::{
    run_attest_chaos, run_chaos, run_crash_matrix, run_fleet_chaos, run_migration_chaos,
    AttestChaosConfig, ChaosConfig, FleetChaosConfig, MigrationChaosConfig,
};

/// Everything one seed produced: its report text (divergence detail
/// included) and whether it counts as a failure.
struct SeedOutcome {
    text: String,
    failed: bool,
}

/// Wrap a report's JSON with the harness verdicts, as one line.
fn json_line(report_json: &str, deterministic: bool, failed: bool) -> String {
    format!("{{\"report\":{report_json},\"deterministic\":{deterministic},\"failed\":{failed}}}\n")
}

/// Run one seed twice, diff the replays, and render the report line.
fn run_seed(seed: &str, cfg: &ChaosConfig, json: bool) -> SeedOutcome {
    let first = match run_chaos(seed.as_bytes(), cfg) {
        Ok(r) => r,
        Err(e) => {
            return SeedOutcome { text: format!("seed {seed}: harness error: {e}\n"), failed: true }
        }
    };
    let replay = match run_chaos(seed.as_bytes(), cfg) {
        Ok(r) => r,
        Err(e) => {
            return SeedOutcome { text: format!("seed {seed}: replay error: {e}\n"), failed: true }
        }
    };
    let deterministic = first == replay;
    // Scrub failures are *not* a failure condition: an injected crash
    // can land on a post-commit hygiene scrub, which is best-effort by
    // design (recovery re-scrubs). They are surfaced in the report line
    // and covered by the determinism diff instead. A critical sentinel
    // alert on a clean (attack-free) seed is a false positive and fails
    // the seed.
    let clean = first.divergences.is_empty()
        && first.nonce_reuses == 0
        && first.dropped_events == 0
        && first.sentinel_critical == 0;
    if json {
        return SeedOutcome {
            text: json_line(&first.to_json(), deterministic, !deterministic || !clean),
            failed: !deterministic || !clean,
        };
    }
    let mut text = format!(
        "seed {seed}: transcript {} faults {:?} recoveries {} (post {} / pre {}) reconnects {} \
         completed {} dropped {} scrub-failures {} retried-burns {} divergences {} nonce-reuses {} \
         sentinel-critical {}{}\n",
        first.transcript.iter().take(8).map(|b| format!("{b:02x}")).collect::<String>(),
        first.faults.iter().map(|(_, n)| *n).collect::<Vec<_>>(),
        first.crash_recoveries,
        first.recovered_post,
        first.recovered_pre,
        first.ring_reconnects,
        first.completed,
        first.dropped_events,
        first.scrub_failures,
        first.retried_generation_burns,
        first.divergences.len(),
        first.nonce_reuses,
        first.sentinel_critical,
        if deterministic { "" } else { "  REPLAY MISMATCH" },
    );
    for d in &first.divergences {
        text.push_str(&format!("    {d}\n"));
    }
    for a in &first.sentinel_alerts {
        text.push_str(&format!("    {a}\n"));
    }
    SeedOutcome { text, failed: !deterministic || !clean }
}

/// Run one migration-family seed twice, diff the replays, render.
fn run_migration_seed(seed: &str, cfg: &MigrationChaosConfig, json: bool) -> SeedOutcome {
    let first = match run_migration_chaos(seed.as_bytes(), cfg) {
        Ok(r) => r,
        Err(e) => {
            return SeedOutcome { text: format!("seed {seed}: harness error: {e}\n"), failed: true }
        }
    };
    let replay = match run_migration_chaos(seed.as_bytes(), cfg) {
        Ok(r) => r,
        Err(e) => {
            return SeedOutcome { text: format!("seed {seed}: replay error: {e}\n"), failed: true }
        }
    };
    let deterministic = first == replay;
    let clean = first.divergences.is_empty() && first.sentinel_critical == 0;
    if json {
        return SeedOutcome {
            text: json_line(&first.to_json(), deterministic, !deterministic || !clean),
            failed: !deterministic || !clean,
        };
    }
    let f = first.fabric;
    let mut text = format!(
        "seed {seed} [migration]: transcript {} committed {} aborted {} rejected-stale {} \
         crashes {} rebalance-moves {} fabric {}s/{}d/{}dup/{}ro/{}lost divergences {} \
         sentinel-critical {}{}\n",
        first.transcript.iter().take(8).map(|b| format!("{b:02x}")).collect::<String>(),
        first.committed,
        first.aborted,
        first.rejected_stale,
        first.crashes,
        first.rebalance_moves,
        f.sent,
        f.dropped,
        f.duplicated,
        f.reordered,
        f.crash_lost,
        first.divergences.len(),
        first.sentinel_critical,
        if deterministic { "" } else { "  REPLAY MISMATCH" },
    );
    for d in &first.divergences {
        text.push_str(&format!("    {d}\n"));
    }
    for a in &first.sentinel_alerts {
        text.push_str(&format!("    {a}\n"));
    }
    SeedOutcome { text, failed: !deterministic || !clean }
}

/// Run one attest-family seed twice, diff the replays, render. Critical
/// sentinel alerts are *expected* here (injected attacks must be
/// detected — a missed detection is reported as a divergence by the
/// family itself), so clean means divergence-free, nothing more.
fn run_attest_seed(seed: &str, cfg: &AttestChaosConfig, json: bool) -> SeedOutcome {
    let first = match run_attest_chaos(seed.as_bytes(), cfg) {
        Ok(r) => r,
        Err(e) => {
            return SeedOutcome { text: format!("seed {seed}: harness error: {e}\n"), failed: true }
        }
    };
    let replay = match run_attest_chaos(seed.as_bytes(), cfg) {
        Ok(r) => r,
        Err(e) => {
            return SeedOutcome { text: format!("seed {seed}: replay error: {e}\n"), failed: true }
        }
    };
    let deterministic = first == replay;
    let clean = first.divergences.is_empty();
    if json {
        return SeedOutcome {
            text: json_line(&first.to_json(), deterministic, !deterministic || !clean),
            failed: !deterministic || !clean,
        };
    }
    let mut text = format!(
        "seed {seed} [attest]: transcript {} submissions {} accepted {} replays {}/{} \
         stale {}/{} storm {}{} signing-passes {} cache-absorbed {} pcr-extends {} \
         audit-chain {} divergences {} sentinel-critical {}{}\n",
        first.transcript.iter().take(8).map(|b| format!("{b:02x}")).collect::<String>(),
        first.submissions,
        first.accepted,
        first.replays_refused,
        first.injected_replays,
        first.stale_refused,
        first.injected_stale,
        first.storm_submissions,
        if first.storm_throttled { " (throttled)" } else { "" },
        first.signing_passes,
        first.cache_absorbed,
        first.pcr_extends,
        if first.audit_chain_ok { "ok" } else { "BROKEN" },
        first.divergences.len(),
        first.sentinel_critical,
        if deterministic { "" } else { "  REPLAY MISMATCH" },
    );
    for d in &first.divergences {
        text.push_str(&format!("    {d}\n"));
    }
    for a in &first.sentinel_alerts {
        text.push_str(&format!("    {a}\n"));
    }
    SeedOutcome { text, failed: !deterministic || !clean }
}

/// Run one fleet-family seed twice, diff the replays, render. Clean
/// means: no divergences, every VM accounted for exactly once (zero
/// lost / duplicated / orphaned, journals settled), every injected
/// conflict resolved to at most one winner, and no critical sentinel
/// alerts (churn-storm alerts are Warning-class and expected).
fn run_fleet_seed(seed: &str, cfg: &FleetChaosConfig, json: bool) -> SeedOutcome {
    let first = match run_fleet_chaos(seed.as_bytes(), cfg) {
        Ok(r) => r,
        Err(e) => {
            return SeedOutcome { text: format!("seed {seed}: harness error: {e}\n"), failed: true }
        }
    };
    let replay = match run_fleet_chaos(seed.as_bytes(), cfg) {
        Ok(r) => r,
        Err(e) => {
            return SeedOutcome { text: format!("seed {seed}: replay error: {e}\n"), failed: true }
        }
    };
    let deterministic = first == replay;
    let clean = first.divergences.is_empty()
        && first.lost == 0
        && first.duplicated == 0
        && first.orphaned == 0
        && first.unsettled == 0
        && first.multi_winner_conflicts == 0
        && first.sentinel_critical == 0;
    if json {
        return SeedOutcome {
            text: json_line(&first.to_json(), deterministic, !deterministic || !clean),
            failed: !deterministic || !clean,
        };
    }
    let mut text = format!(
        "seed {seed} [fleet]: transcript {} ticks {} committed {} aborted {} rejected-stale {} \
         abandoned {} refused {} conflicts {}/{}pairs crashes {} revivals {} joins {} \
         suspects {} (false {}) pauses {}/{} p99-downtime {}ns lost {} dup {} orphaned {} \
         unsettled {} divergences {} sentinel-critical {}{}\n",
        first.transcript.iter().take(8).map(|b| format!("{b:02x}")).collect::<String>(),
        first.ticks,
        first.committed,
        first.aborted,
        first.rejected_stale,
        first.abandoned,
        first.refused,
        first.conflicts,
        first.conflict_pairs,
        first.crashes,
        first.revivals,
        first.joins,
        first.suspects_raised,
        first.false_suspects,
        first.storm_pauses,
        first.storm_resumes,
        first.downtime_p99_ns,
        first.lost,
        first.duplicated,
        first.orphaned,
        first.unsettled,
        first.divergences.len(),
        first.sentinel_critical,
        if deterministic { "" } else { "  REPLAY MISMATCH" },
    );
    for d in &first.divergences {
        text.push_str(&format!("    {d}\n"));
    }
    for a in &first.sentinel_alerts {
        text.push_str(&format!("    {a}\n"));
    }
    SeedOutcome { text, failed: !deterministic || !clean }
}

/// Run the exhaustive crash matrix twice on one seed, diff, render.
fn run_matrix_seed(seed: &str, json: bool) -> SeedOutcome {
    let first = match run_crash_matrix(seed.as_bytes(), true) {
        Ok(r) => r,
        Err(e) => {
            return SeedOutcome { text: format!("matrix {seed}: harness error: {e}\n"), failed: true }
        }
    };
    let replay = match run_crash_matrix(seed.as_bytes(), true) {
        Ok(r) => r,
        Err(e) => {
            return SeedOutcome { text: format!("matrix {seed}: replay error: {e}\n"), failed: true }
        }
    };
    let deterministic = first == replay;
    let clean = first.failures.is_empty() && first.cells.len() == 18;
    if json {
        return SeedOutcome {
            text: json_line(&first.to_json(), deterministic, !deterministic || !clean),
            failed: !deterministic || !clean,
        };
    }
    let moved = first.cells.iter().filter(|c| c.moved).count();
    let mut text = format!(
        "matrix {seed}: transcript {} cells {} committed-handoffs {} replays-rejected {} \
         failures {}{}\n",
        first.transcript.iter().take(8).map(|b| format!("{b:02x}")).collect::<String>(),
        first.cells.len(),
        moved,
        first.replays_rejected,
        first.failures.len(),
        if deterministic { "" } else { "  REPLAY MISMATCH" },
    );
    for d in &first.failures {
        text.push_str(&format!("    {d}\n"));
    }
    SeedOutcome { text, failed: !deterministic || !clean }
}

/// Fan `seeds` out over `jobs` worker threads, printing outcomes in
/// seed order; returns the number of failed seeds.
fn run_family(seeds: usize, jobs: usize, run: impl Fn(usize) -> SeedOutcome + Sync) -> usize {
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, SeedOutcome)>();
    let mut failures = 0usize;
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let run = &run;
            scope.spawn(move || loop {
                let s = next.fetch_add(1, Ordering::Relaxed);
                if s >= seeds {
                    break;
                }
                if tx.send((s, run(s))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut pending: BTreeMap<usize, SeedOutcome> = BTreeMap::new();
        let mut next_print = 0usize;
        for (s, outcome) in rx {
            pending.insert(s, outcome);
            while let Some(o) = pending.remove(&next_print) {
                print!("{}", o.text);
                if o.failed {
                    failures += 1;
                }
                next_print += 1;
            }
        }
    });
    failures
}

fn main() -> ExitCode {
    let mut seeds = 32usize;
    let mut cfg = ChaosConfig::default();
    let mut base = String::from("chaos");
    let mut jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let (mut mirror_family, mut migration_family, mut attest_family, mut fleet_family) =
        (true, false, false, false);
    let mut matrix = false;
    let mut json = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Option<&String> {
            let v = it.next();
            if v.is_none() {
                eprintln!("{name} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--seeds" => match take("--seeds").and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => return ExitCode::from(2),
            },
            "--events" => match take("--events").and_then(|v| v.parse().ok()) {
                Some(n) => cfg.events = n,
                None => return ExitCode::from(2),
            },
            "--faults" => match take("--faults").and_then(|v| v.parse().ok()) {
                Some(n) => cfg.faults = n,
                None => return ExitCode::from(2),
            },
            "--mode" => match take("--mode").map(String::as_str) {
                Some("encrypted") => cfg.mirror_mode = MirrorMode::Encrypted,
                Some("cleartext") => cfg.mirror_mode = MirrorMode::Cleartext,
                _ => {
                    eprintln!("--mode is encrypted|cleartext");
                    return ExitCode::from(2);
                }
            },
            "--base" => match take("--base") {
                Some(b) => base = b.clone(),
                None => return ExitCode::from(2),
            },
            "--jobs" => match take("--jobs").and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1usize => jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--family" => match take("--family").map(String::as_str) {
                Some("mirror") => {
                    (mirror_family, migration_family, attest_family, fleet_family) =
                        (true, false, false, false)
                }
                Some("migration") => {
                    (mirror_family, migration_family, attest_family, fleet_family) =
                        (false, true, false, false)
                }
                Some("attest") => {
                    (mirror_family, migration_family, attest_family, fleet_family) =
                        (false, false, true, false)
                }
                Some("fleet") => {
                    (mirror_family, migration_family, attest_family, fleet_family) =
                        (false, false, false, true)
                }
                Some("both") => {
                    (mirror_family, migration_family, attest_family, fleet_family) =
                        (true, true, false, false)
                }
                Some("all") => {
                    (mirror_family, migration_family, attest_family, fleet_family) =
                        (true, true, true, true)
                }
                _ => {
                    eprintln!("--family is mirror|migration|attest|fleet|both|all");
                    return ExitCode::from(2);
                }
            },
            "--matrix" => matrix = true,
            "--json" => json = true,
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    jobs = jobs.min(seeds.max(1));

    // Work-stealing over the seed index; results stream back over a
    // channel and are printed strictly in seed order (out-of-order
    // completions buffer until their turn).
    let mut failures = 0usize;
    let mut ran = 0usize;
    if mirror_family {
        failures += run_family(seeds, jobs, |s| run_seed(&format!("{base}-{s}"), &cfg, json));
        ran += seeds;
    }
    if migration_family {
        let mig_cfg = MigrationChaosConfig {
            sealed: cfg.mirror_mode == MirrorMode::Encrypted,
            ..Default::default()
        };
        failures += run_family(seeds, jobs, |s| {
            run_migration_seed(&format!("{base}-mig-{s}"), &mig_cfg, json)
        });
        ran += seeds;
    }
    if attest_family {
        let att_cfg = AttestChaosConfig::default();
        failures += run_family(seeds, jobs, |s| {
            run_attest_seed(&format!("{base}-att-{s}"), &att_cfg, json)
        });
        ran += seeds;
    }
    if fleet_family {
        let fleet_cfg = FleetChaosConfig::default();
        failures += run_family(seeds, jobs, |s| {
            run_fleet_seed(&format!("{base}-fleet-{s}"), &fleet_cfg, json)
        });
        ran += seeds;
    }
    if matrix {
        let outcome = run_matrix_seed(&format!("{base}-matrix"), json);
        print!("{}", outcome.text);
        if outcome.failed {
            failures += 1;
        }
        ran += 1;
    }

    if failures > 0 {
        println!("{failures}/{ran} seeds failed");
        ExitCode::from(1)
    } else {
        println!("{ran} seeds clean, replays deterministic");
        ExitCode::SUCCESS
    }
}
