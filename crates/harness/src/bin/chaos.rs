//! Chaos CLI: replay N seeded fault scenarios, each twice, and fail on
//! any oracle divergence, nonce reuse, or nondeterministic replay.
//!
//! ```text
//! chaos [--seeds N] [--events N] [--faults N] [--mode encrypted|cleartext]
//!       [--base LABEL] [--jobs N]
//! ```
//!
//! Seeds run in parallel across `--jobs` worker threads (default: all
//! cores). Every seed is still executed twice and diffed, the per-seed
//! output lines are printed in seed order regardless of completion
//! order, and the exit status is unchanged: 0 clean, 1 divergence /
//! nonce reuse / nondeterministic replay, 2 bad usage.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use vtpm::MirrorMode;
use vtpm_harness::{run_chaos, ChaosConfig};

/// Everything one seed produced: its report text (divergence detail
/// included) and whether it counts as a failure.
struct SeedOutcome {
    text: String,
    failed: bool,
}

/// Run one seed twice, diff the replays, and render the report line.
fn run_seed(seed: &str, cfg: &ChaosConfig) -> SeedOutcome {
    let first = match run_chaos(seed.as_bytes(), cfg) {
        Ok(r) => r,
        Err(e) => {
            return SeedOutcome { text: format!("seed {seed}: harness error: {e}\n"), failed: true }
        }
    };
    let replay = match run_chaos(seed.as_bytes(), cfg) {
        Ok(r) => r,
        Err(e) => {
            return SeedOutcome { text: format!("seed {seed}: replay error: {e}\n"), failed: true }
        }
    };
    let deterministic = first == replay;
    // Scrub failures are *not* a failure condition: an injected crash
    // can land on a post-commit hygiene scrub, which is best-effort by
    // design (recovery re-scrubs). They are surfaced in the report line
    // and covered by the determinism diff instead.
    let clean = first.divergences.is_empty()
        && first.nonce_reuses == 0
        && first.dropped_events == 0;
    let mut text = format!(
        "seed {seed}: transcript {} faults {:?} recoveries {} (post {} / pre {}) reconnects {} \
         completed {} dropped {} scrub-failures {} retried-burns {} divergences {} nonce-reuses {}{}\n",
        first.transcript.iter().take(8).map(|b| format!("{b:02x}")).collect::<String>(),
        first.faults.iter().map(|(_, n)| *n).collect::<Vec<_>>(),
        first.crash_recoveries,
        first.recovered_post,
        first.recovered_pre,
        first.ring_reconnects,
        first.completed,
        first.dropped_events,
        first.scrub_failures,
        first.retried_generation_burns,
        first.divergences.len(),
        first.nonce_reuses,
        if deterministic { "" } else { "  REPLAY MISMATCH" },
    );
    for d in &first.divergences {
        text.push_str(&format!("    {d}\n"));
    }
    SeedOutcome { text, failed: !deterministic || !clean }
}

fn main() -> ExitCode {
    let mut seeds = 32usize;
    let mut cfg = ChaosConfig::default();
    let mut base = String::from("chaos");
    let mut jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Option<&String> {
            let v = it.next();
            if v.is_none() {
                eprintln!("{name} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--seeds" => match take("--seeds").and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => return ExitCode::from(2),
            },
            "--events" => match take("--events").and_then(|v| v.parse().ok()) {
                Some(n) => cfg.events = n,
                None => return ExitCode::from(2),
            },
            "--faults" => match take("--faults").and_then(|v| v.parse().ok()) {
                Some(n) => cfg.faults = n,
                None => return ExitCode::from(2),
            },
            "--mode" => match take("--mode").map(String::as_str) {
                Some("encrypted") => cfg.mirror_mode = MirrorMode::Encrypted,
                Some("cleartext") => cfg.mirror_mode = MirrorMode::Cleartext,
                _ => {
                    eprintln!("--mode is encrypted|cleartext");
                    return ExitCode::from(2);
                }
            },
            "--base" => match take("--base") {
                Some(b) => base = b.clone(),
                None => return ExitCode::from(2),
            },
            "--jobs" => match take("--jobs").and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1usize => jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    jobs = jobs.min(seeds.max(1));

    // Work-stealing over the seed index; results stream back over a
    // channel and are printed strictly in seed order (out-of-order
    // completions buffer until their turn).
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, SeedOutcome)>();
    let mut failures = 0usize;
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let cfg = &cfg;
            let base = &base;
            scope.spawn(move || loop {
                let s = next.fetch_add(1, Ordering::Relaxed);
                if s >= seeds {
                    break;
                }
                let seed = format!("{base}-{s}");
                if tx.send((s, run_seed(&seed, cfg))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut pending: BTreeMap<usize, SeedOutcome> = BTreeMap::new();
        let mut next_print = 0usize;
        for (s, outcome) in rx {
            pending.insert(s, outcome);
            while let Some(o) = pending.remove(&next_print) {
                print!("{}", o.text);
                if o.failed {
                    failures += 1;
                }
                next_print += 1;
            }
        }
    });

    if failures > 0 {
        println!("{failures}/{seeds} seeds failed");
        ExitCode::from(1)
    } else {
        println!("{seeds} seeds clean, replays deterministic");
        ExitCode::SUCCESS
    }
}
