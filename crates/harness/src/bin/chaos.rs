//! Chaos CLI: replay N seeded fault scenarios, each twice, and fail on
//! any oracle divergence, nonce reuse, or nondeterministic replay.
//!
//! ```text
//! chaos [--seeds N] [--events N] [--faults N] [--mode encrypted|cleartext] [--base LABEL]
//! ```
//!
//! Exit status: 0 clean, 1 divergence/nondeterminism, 2 bad usage.

use std::process::ExitCode;

use vtpm::MirrorMode;
use vtpm_harness::{run_chaos, ChaosConfig};

fn main() -> ExitCode {
    let mut seeds = 32usize;
    let mut cfg = ChaosConfig::default();
    let mut base = String::from("chaos");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Option<&String> {
            let v = it.next();
            if v.is_none() {
                eprintln!("{name} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--seeds" => match take("--seeds").and_then(|v| v.parse().ok()) {
                Some(n) => seeds = n,
                None => return ExitCode::from(2),
            },
            "--events" => match take("--events").and_then(|v| v.parse().ok()) {
                Some(n) => cfg.events = n,
                None => return ExitCode::from(2),
            },
            "--faults" => match take("--faults").and_then(|v| v.parse().ok()) {
                Some(n) => cfg.faults = n,
                None => return ExitCode::from(2),
            },
            "--mode" => match take("--mode").map(String::as_str) {
                Some("encrypted") => cfg.mirror_mode = MirrorMode::Encrypted,
                Some("cleartext") => cfg.mirror_mode = MirrorMode::Cleartext,
                _ => {
                    eprintln!("--mode is encrypted|cleartext");
                    return ExitCode::from(2);
                }
            },
            "--base" => match take("--base") {
                Some(b) => base = b.clone(),
                None => return ExitCode::from(2),
            },
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    let mut failures = 0usize;
    for s in 0..seeds {
        let seed = format!("{base}-{s}");
        let first = match run_chaos(seed.as_bytes(), &cfg) {
            Ok(r) => r,
            Err(e) => {
                println!("seed {seed}: harness error: {e}");
                failures += 1;
                continue;
            }
        };
        let replay = match run_chaos(seed.as_bytes(), &cfg) {
            Ok(r) => r,
            Err(e) => {
                println!("seed {seed}: replay error: {e}");
                failures += 1;
                continue;
            }
        };
        let deterministic = first == replay;
        let clean = first.divergences.is_empty() && first.nonce_reuses == 0;
        println!(
            "seed {seed}: transcript {} faults {:?} recoveries {} (post {} / pre {}) reconnects {} divergences {} nonce-reuses {}{}",
            first
                .transcript
                .iter()
                .take(8)
                .map(|b| format!("{b:02x}"))
                .collect::<String>(),
            first.faults.iter().map(|(_, n)| *n).collect::<Vec<_>>(),
            first.crash_recoveries,
            first.recovered_post,
            first.recovered_pre,
            first.ring_reconnects,
            first.divergences.len(),
            first.nonce_reuses,
            if deterministic { "" } else { "  REPLAY MISMATCH" },
        );
        for d in &first.divergences {
            println!("    {d}");
        }
        if !deterministic || !clean {
            failures += 1;
        }
    }

    if failures > 0 {
        println!("{failures}/{seeds} seeds failed");
        ExitCode::from(1)
    } else {
        println!("{seeds} seeds clean, replays deterministic");
        ExitCode::SUCCESS
    }
}
