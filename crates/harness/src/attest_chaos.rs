//! Seeded chaos for the attestation plane: quote storms, replay and
//! stale-evidence injection, PCR churn against the issued-quote cache —
//! all under the same byte-determinism contract as the mirror and
//! migration families.
//!
//! One run derives everything from the seed (which instance each
//! verifier polls, when PCRs are extended, which evidence is held back
//! for replay) and advances only the platform's virtual clock, so two
//! runs of the same seed produce identical [`AttestChaosReport`]s:
//! evidence bytes are deterministic (PKCS#1 v1.5 signing is
//! deterministic given key and digest), verdicts are pure functions of
//! the submission stream, and the sentinel sees the same events in the
//! same order.
//!
//! The run has four phases:
//!
//! 1. **honest traffic** — every verifier polls a seed-chosen instance
//!    once per nonce-window; between rounds, seed-chosen PCR extends
//!    bump permanent-state generations and must invalidate the issued
//!    cache (a post-extend quote showing pre-extend PCR values would be
//!    a divergence). The first few submissions are immediately
//!    re-presented by their original verifier while still fresh; every
//!    such **replay injection** must come back [`Verdict::Replayed`].
//! 2. **stale injection** — evidence held back from the first round is
//!    presented by fresh verifier identities, in a tight burst, after
//!    the clock has rolled past the freshness window; every injection
//!    must come back [`Verdict::Stale`], and the burst must trip the
//!    sentinel's stale-quote watch.
//! 3. **quote storm** — one scripted verifier hammers the pool far
//!    above any honest cadence; the sentinel must raise `quote-storm`,
//!    and the harness bridge closes the loop into the pool's admission
//!    throttle so the next submission is [`Verdict::Throttled`].
//!
//! With injections and the storm disabled the run is attack-free, and
//! any critical sentinel alert is reported as a divergence — the
//! false-positive half of the R-A1 gate.

use std::sync::Arc;

use tpm_crypto::drbg::Drbg;
use tpm_crypto::sha256;
use vtpm::{AdmissionConfig, Platform};
use vtpm_ac::AuditLog;
use vtpm_attest::{
    IssuerConfig, QuoteIssuer, Submission, Verdict, VerifierConfig, VerifierPool,
};
use vtpm_sentinel::{Sentinel, SentinelConfig, Severity};
use vtpm_telemetry::Telemetry;
use xen_sim::Result as XenResult;

use crate::sentinel_feed::{apply_verifier_alerts, attest_event, audit_event};
use crate::{json_str, json_str_array};

/// Tunables for one attestation chaos run.
#[derive(Debug, Clone)]
pub struct AttestChaosConfig {
    /// Guests to launch and enroll.
    pub instances: usize,
    /// Honest verifier identities.
    pub verifiers: usize,
    /// Honest polling rounds (one nonce-window each).
    pub rounds: usize,
    /// Phase-1 submissions to re-present immediately as replays.
    pub replay_injections: usize,
    /// Phase-1 submissions to re-present stale, as one burst. Keep at
    /// or above the sentinel's `stale_quote_burst` (default 4) if the
    /// run is expected to trip the stale-quote watch.
    pub stale_injections: usize,
    /// Whether to run the scripted quote storm.
    pub storm: bool,
    /// Nonce-window width (virtual ns), shared by issuer and pool.
    pub window_ns: u64,
}

impl Default for AttestChaosConfig {
    fn default() -> Self {
        AttestChaosConfig {
            instances: 3,
            verifiers: 12,
            rounds: 5,
            replay_injections: 3,
            stale_injections: 4,
            storm: true,
            window_ns: 1_000_000_000,
        }
    }
}

impl AttestChaosConfig {
    /// The attack-free variant of this config: same honest traffic, no
    /// injections, no storm — the false-positive sweep.
    pub fn attack_free(&self) -> Self {
        AttestChaosConfig {
            replay_injections: 0,
            stale_injections: 0,
            storm: false,
            ..self.clone()
        }
    }
}

/// Everything observable about one attestation chaos run. Two runs of
/// the same seed and config must compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestChaosReport {
    /// Hex of the seed.
    pub seed: String,
    /// Honest polling rounds performed.
    pub rounds: usize,
    /// Honest submissions (phase 1).
    pub submissions: u64,
    /// Honest submissions accepted (must equal `submissions`).
    pub accepted: u64,
    /// Replay injections presented / refused as `Replayed`.
    pub injected_replays: u64,
    /// Replay injections that came back `Replayed`.
    pub replays_refused: u64,
    /// Stale injections presented / refused as `Stale`.
    pub injected_stale: u64,
    /// Stale injections that came back `Stale`.
    pub stale_refused: u64,
    /// Storm-phase submissions.
    pub storm_submissions: u64,
    /// Whether the storm verifier ended the run throttled by the
    /// sentinel-driven admission loop.
    pub storm_throttled: bool,
    /// Issuer signing passes (each pays the two-RSA deep-quote cost).
    pub signing_passes: u64,
    /// Issuer requests served from cache or coalesced.
    pub cache_absorbed: u64,
    /// PCR extends injected between rounds (each must invalidate).
    pub pcr_extends: u64,
    /// Stale-quote denials in the per-reason telemetry counters.
    pub stale_denials: u64,
    /// Quote-replay denials in the per-reason telemetry counters.
    pub replay_denials: u64,
    /// Whether the audit hash chain verified at run end.
    pub audit_chain_ok: bool,
    /// Sentinel alert lines, in firing order.
    pub sentinel_alerts: Vec<String>,
    /// Critical alerts among them.
    pub sentinel_critical: u64,
    /// Invariant violations (empty on a correct stack).
    pub divergences: Vec<String>,
    /// SHA-256 over the run transcript.
    pub transcript: [u8; 32],
}

impl AttestChaosReport {
    /// One machine-readable JSON object (single line, stable order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"family\":\"attest\",\"seed\":{},\"rounds\":{},\"submissions\":{},\
             \"accepted\":{},\"injected_replays\":{},\"replays_refused\":{},\
             \"injected_stale\":{},\"stale_refused\":{},\"storm_submissions\":{},\
             \"storm_throttled\":{},\"signing_passes\":{},\"cache_absorbed\":{},\
             \"pcr_extends\":{},\"stale_denials\":{},\"replay_denials\":{},\
             \"audit_chain_ok\":{},\"divergences\":{},\"sentinel_alerts\":{},\
             \"sentinel_critical\":{},\"transcript\":{}}}",
            json_str(&self.seed),
            self.rounds,
            self.submissions,
            self.accepted,
            self.injected_replays,
            self.replays_refused,
            self.injected_stale,
            self.stale_refused,
            self.storm_submissions,
            self.storm_throttled,
            self.signing_passes,
            self.cache_absorbed,
            self.pcr_extends,
            self.stale_denials,
            self.replay_denials,
            self.audit_chain_ok,
            json_str_array(&self.divergences),
            json_str_array(&self.sentinel_alerts),
            self.sentinel_critical,
            json_str(&self.transcript.iter().map(|b| format!("{b:02x}")).collect::<String>()),
        )
    }
}

/// Run one seeded attestation chaos scenario. Deterministic in `seed`
/// and `cfg`.
pub fn run_attest_chaos(seed: &[u8], cfg: &AttestChaosConfig) -> XenResult<AttestChaosReport> {
    let mut rng = Drbg::new(&[seed, b"/attest-plan"].concat());
    let platform = Platform::improved(seed)?;
    let clock = &platform.hv.clock;

    let mut guests = Vec::with_capacity(cfg.instances);
    for i in 0..cfg.instances {
        guests.push(platform.launch_guest(&format!("attest-{i}"))?);
    }

    let issuer = QuoteIssuer::new(IssuerConfig { window_ns: cfg.window_ns, ..Default::default() });
    for g in &guests {
        issuer
            .provision(&platform, g.instance)
            .unwrap_or_else(|e| panic!("provision instance {}: {e}", g.instance));
    }

    let mut pool = VerifierPool::with_telemetry(
        VerifierConfig {
            window_ns: cfg.window_ns,
            admission: AdmissionConfig { enabled: true, ..Default::default() },
            ..Default::default()
        },
        Arc::clone(issuer.telemetry()),
    );
    let telemetry = Arc::new(Telemetry::new());
    let audit = Arc::new(AuditLog::new());
    pool.attach_telemetry(Arc::clone(&telemetry));
    pool.attach_audit(Arc::clone(&audit));

    let mut sentinel = Sentinel::new(SentinelConfig::default());
    let mut transcript: Vec<u8> = Vec::new();
    let mut report = AttestChaosReport {
        seed: seed.iter().map(|b| format!("{b:02x}")).collect(),
        rounds: cfg.rounds,
        submissions: 0,
        accepted: 0,
        injected_replays: 0,
        replays_refused: 0,
        injected_stale: 0,
        stale_refused: 0,
        storm_submissions: 0,
        storm_throttled: false,
        signing_passes: 0,
        cache_absorbed: 0,
        pcr_extends: 0,
        stale_denials: 0,
        replay_denials: 0,
        audit_chain_ok: false,
        sentinel_alerts: Vec::new(),
        sentinel_critical: 0,
        divergences: Vec::new(),
        transcript: [0; 32],
    };

    let submit = |pool: &VerifierPool,
                  verifier: u32,
                  bytes: Vec<u8>,
                  now_ns: u64,
                  transcript: &mut Vec<u8>| {
        let digest = sha256(&bytes);
        let verdict = pool.verify_one(&Submission { verifier, bytes }, now_ns);
        transcript.extend_from_slice(&verifier.to_be_bytes());
        transcript.extend_from_slice(&digest);
        transcript.push(verdict.code());
        verdict
    };

    // Phase 1: honest polling, one round per nonce-window, with
    // seed-chosen PCR churn between rounds. Evidence from the first
    // round is held back for the stale-injection burst; the first few
    // submissions are replayed immediately while still fresh.
    let mut held: Vec<Vec<u8>> = Vec::new();
    for round in 0..cfg.rounds {
        clock.advance_ns(cfg.window_ns);
        for v in 0..cfg.verifiers as u32 {
            let pick = rng.below(guests.len() as u64) as usize;
            let instance = guests[pick].instance;
            let now = clock.now_ns();
            let evidence = issuer
                .issue(&platform, instance, now)
                .unwrap_or_else(|e| panic!("issue for instance {instance}: {e}"));
            if evidence.quote.vtpm_pcr_values.is_empty() {
                report.divergences.push(format!("round {round}: evidence without PCR values"));
            }
            let bytes = evidence.encode();
            if round == 0 {
                held.push(bytes.clone());
            }
            let verdict = submit(&pool, v, bytes.clone(), now, &mut transcript);
            report.submissions += 1;
            if verdict.accepted() {
                report.accepted += 1;
            } else {
                report
                    .divergences
                    .push(format!("round {round}: honest submission by {v} judged {verdict}"));
            }
            // Replay injection: re-present the identical, still-fresh
            // evidence under the same verifier identity.
            if report.injected_replays < cfg.replay_injections as u64 {
                report.injected_replays += 1;
                match submit(&pool, v, bytes, now, &mut transcript) {
                    Verdict::Replayed => report.replays_refused += 1,
                    other => report
                        .divergences
                        .push(format!("replay injection by {v} judged {other}, want replayed")),
                }
            }
        }
        // Seed-chosen PCR extend: the permanent-state generation bumps,
        // so the next round's quote MUST show the new PCR value — a
        // cached pre-extend quote surviving the extend is a divergence.
        if rng.below(2) == 0 {
            let pick = rng.below(guests.len() as u64) as usize;
            let g = &mut guests[pick];
            let mut measurement = [0u8; 20];
            rng.fill_bytes(&mut measurement);
            let before = issuer
                .issue(&platform, g.instance, clock.now_ns())
                .expect("pre-extend issue")
                .quote
                .vtpm_pcr_values
                .clone();
            g.client(b"attest-chaos-extend")
                .extend(0, &measurement)
                .expect("extend measured PCR");
            report.pcr_extends += 1;
            let after = issuer
                .issue(&platform, g.instance, clock.now_ns())
                .expect("post-extend issue")
                .quote
                .vtpm_pcr_values
                .clone();
            if before == after {
                report.divergences.push(format!(
                    "round {round}: PCR extend did not invalidate the issued-quote cache"
                ));
            }
        }
    }

    // Phase 2: stale-injection burst — fresh verifier identities
    // present round-0 evidence after the clock has rolled well past
    // the freshness window, packed tight enough to trip the sentinel's
    // stale-quote watch.
    clock.advance_ns(cfg.window_ns * 4);
    for i in 0..cfg.stale_injections.min(held.len()) {
        clock.advance_ns(1_000);
        let verifier = 100_000 + i as u32;
        let bytes = held[i].clone();
        let verdict = submit(&pool, verifier, bytes, clock.now_ns(), &mut transcript);
        report.injected_stale += 1;
        match verdict {
            Verdict::Stale => report.stale_refused += 1,
            other => report
                .divergences
                .push(format!("stale injection judged {other}, want stale")),
        }
    }

    // Phase 3: quote storm — one scripted identity hammers the pool at
    // a cadence no honest verifier reaches, then the sentinel-driven
    // admission loop closes on it.
    const STORM_VERIFIER: u32 = 999_999;
    if cfg.storm {
        clock.advance_ns(cfg.window_ns);
        let instance = guests[0].instance;
        for _ in 0..80 {
            clock.advance_ns(1_000);
            let now = clock.now_ns();
            let evidence = issuer.issue(&platform, instance, now).expect("storm issue");
            submit(&pool, STORM_VERIFIER, evidence.encode(), now, &mut transcript);
            report.storm_submissions += 1;
        }
    }

    // Feed the sentinel: the pool's verdict stream plus the audit
    // chain's refusal records, in that order.
    for ev in pool.drain_events() {
        sentinel.observe(attest_event(0, &ev));
    }
    for entry in audit.entries() {
        sentinel.observe(audit_event(0, &entry));
    }

    if cfg.storm {
        let alerts: Vec<_> = sentinel.alerts().to_vec();
        if !alerts.iter().any(|a| a.detector == "quote-storm" && a.domain == Some(STORM_VERIFIER)) {
            report.divergences.push("quote storm went undetected".into());
        }
        apply_verifier_alerts(&pool, &alerts);
        if !pool.is_throttled(STORM_VERIFIER) {
            report.divergences.push("storm verifier not throttled by the closed loop".into());
        }
        clock.advance_ns(1_000);
        let now = clock.now_ns();
        let evidence = issuer.issue(&platform, guests[0].instance, now).expect("post-storm issue");
        let verdict = submit(&pool, STORM_VERIFIER, evidence.encode(), now, &mut transcript);
        report.storm_submissions += 1;
        if verdict != Verdict::Throttled {
            report
                .divergences
                .push(format!("throttled storm verifier judged {verdict}, want throttled"));
        }
        report.storm_throttled = verdict == Verdict::Throttled;
    }
    if report.injected_stale >= 4
        && !sentinel.alerts().iter().any(|a| a.detector == "stale-quote")
    {
        report.divergences.push("stale-quote burst went undetected".into());
    }

    // Attack-free runs must be alert-free: any critical here is a
    // false positive.
    let attack_free =
        cfg.replay_injections == 0 && cfg.stale_injections == 0 && !cfg.storm;
    report.sentinel_alerts = sentinel.alerts().iter().map(|a| a.line()).collect();
    report.sentinel_critical =
        sentinel.alerts().iter().filter(|a| a.severity == Severity::Critical).count() as u64;
    if attack_free && report.sentinel_critical > 0 {
        report
            .divergences
            .push(format!("{} critical alerts on an attack-free run", report.sentinel_critical));
    }

    // Cross-check the plane's own books.
    let snap = issuer.telemetry().snapshot();
    report.signing_passes = snap.signing_passes;
    report.cache_absorbed = snap.cache_hits + snap.coalesced;
    if snap.requested != snap.signing_passes + report.cache_absorbed {
        report.divergences.push(format!(
            "issuer counters do not conserve: {} != {} + {}",
            snap.requested, snap.signing_passes, report.cache_absorbed
        ));
    }
    let tsnap = telemetry.snapshot();
    let deny_label = |code: u8| tsnap.deny_reasons[code as usize].1;
    report.stale_denials = deny_label(vtpm_telemetry::DENY_STALE_QUOTE);
    report.replay_denials = deny_label(vtpm_telemetry::DENY_QUOTE_REPLAY);
    if report.stale_denials < report.stale_refused
        || report.replay_denials < report.replays_refused
    {
        report.divergences.push("refusals missing from the per-reason deny counters".into());
    }
    let entries = audit.entries();
    report.audit_chain_ok = AuditLog::verify(&entries)
        && audit.denials() as u64 >= report.stale_refused + report.replays_refused;
    if !report.audit_chain_ok {
        report.divergences.push("audit chain broken or refusals unaudited".into());
    }

    for line in &report.sentinel_alerts {
        transcript.extend_from_slice(line.as_bytes());
    }
    report.transcript = sha256(&transcript);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attest_chaos_is_deterministic_and_clean() {
        let cfg = AttestChaosConfig {
            instances: 2,
            verifiers: 6,
            rounds: 3,
            ..Default::default()
        };
        let a = run_attest_chaos(b"attest-chaos-det", &cfg).unwrap();
        let b = run_attest_chaos(b"attest-chaos-det", &cfg).unwrap();
        assert_eq!(a, b, "same seed must replay byte-identically");
        assert!(a.divergences.is_empty(), "divergences: {:?}", a.divergences);
        assert_eq!(a.accepted, a.submissions);
        assert_eq!(a.replays_refused, a.injected_replays);
        assert_eq!(a.stale_refused, a.injected_stale);
        assert!(a.storm_throttled);
        assert!(a.audit_chain_ok);
        assert!(a.cache_absorbed > 0, "verifier fan-in must hit the cache");
    }

    #[test]
    fn attack_free_run_raises_nothing() {
        let cfg = AttestChaosConfig {
            instances: 2,
            verifiers: 6,
            rounds: 3,
            ..Default::default()
        }
        .attack_free();
        let r = run_attest_chaos(b"attest-chaos-calm", &cfg).unwrap();
        assert!(r.divergences.is_empty(), "divergences: {:?}", r.divergences);
        assert_eq!(r.sentinel_critical, 0, "alerts: {:?}", r.sentinel_alerts);
        assert_eq!(r.accepted, r.submissions);
    }
}
