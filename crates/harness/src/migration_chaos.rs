//! Migration chaos: seeded multi-host scenarios over the cluster layer,
//! and the exhaustive crash-at-every-step matrix.
//!
//! Two entry points:
//!
//! * [`run_migration_chaos`] — one seeded scenario on a live cluster:
//!   workload traffic interleaved with migrations, fabric faults
//!   (drop/duplicate/reorder at seeded send offsets), mid-protocol host
//!   crashes, and rebalance passes. After every round the harness
//!   asserts the exactly-once invariant (each VM runnable on exactly
//!   one host) and diffs every VM against its [`TpmOracle`]. Running
//!   the same seed twice must produce byte-identical reports.
//!
//! * [`run_crash_matrix`] — the systematic half: for both roles
//!   (source, destination) and every protocol step `k` in `0..=8`,
//!   drive a migration exactly `k` steps, crash that role's host,
//!   recover it, resolve, and require the VM runnable on exactly one
//!   host with oracle-verified state — never a mixed or duplicated
//!   copy. Completed handoffs additionally get the captured `Transfer`
//!   frame replayed at the new home, which the burned-epoch check must
//!   refuse.

use tpm_crypto::drbg::Drbg;
use tpm_crypto::sha256;
use vtpm_cluster::{
    Cluster, ClusterConfig, FabricFault, FabricStats, MigMessage, MigrateOutcome,
};
use vtpm_sentinel::{Sentinel, SentinelConfig, Severity, StreamEvent};
use workload::{generate_trace, TpmOracle};
use xen_sim::Result as XenResult;

use crate::sentinel_feed::{audit_event, dump_event};
use crate::{json_str, json_str_array};

/// Tunables for one migration-chaos scenario.
#[derive(Debug, Clone)]
pub struct MigrationChaosConfig {
    /// Hosts in the cluster.
    pub hosts: usize,
    /// VMs created up front.
    pub vms: usize,
    /// Rounds of traffic + one action each.
    pub rounds: usize,
    /// Trace events per VM per round.
    pub events_per_round: usize,
    /// Ship sealed packages (`false` = cleartext baseline).
    pub sealed: bool,
    /// Dom0 frame budget per host.
    pub frames_per_host: usize,
}

impl Default for MigrationChaosConfig {
    fn default() -> Self {
        MigrationChaosConfig {
            hosts: 3,
            vms: 3,
            rounds: 10,
            events_per_round: 6,
            sealed: true,
            frames_per_host: 1024,
        }
    }
}

/// Everything observable about one migration-chaos run; two runs of the
/// same seed and config must compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationChaosReport {
    /// Hex of the seed.
    pub seed: String,
    /// Rounds executed.
    pub rounds: usize,
    /// Migrations that committed.
    pub committed: u64,
    /// Migrations that aborted.
    pub aborted: u64,
    /// Attempts the destination refused as stale (burned epoch).
    pub rejected_stale: u64,
    /// Mid-protocol host crash/recovery cycles.
    pub crashes: u64,
    /// VMs moved by rebalance passes.
    pub rebalance_moves: u64,
    /// Fabric counters at run end.
    pub fabric: FabricStats,
    /// Invariant violations and oracle divergences (empty when correct).
    pub divergences: Vec<String>,
    /// Sentinel alert lines over the whole run (audit chains, migration
    /// spans, crash markers from every host feed one stream).
    pub sentinel_alerts: Vec<String>,
    /// Critical (attack-class) alerts among `sentinel_alerts` — must be
    /// zero on clean seeds (the R-D1 false-positive gate).
    pub sentinel_critical: u64,
    /// Black-box flight dumps the sentinel captured.
    pub sentinel_flight_dumps: u64,
    /// SHA-256 over the run transcript.
    pub transcript: [u8; 32],
}

impl MigrationChaosReport {
    /// One machine-readable JSON object (single line, stable field
    /// order) — the `--json` chaos CLI output format.
    pub fn to_json(&self) -> String {
        let f = self.fabric;
        format!(
            "{{\"family\":\"migration\",\"seed\":{},\"rounds\":{},\"committed\":{},\
             \"aborted\":{},\"rejected_stale\":{},\"crashes\":{},\"rebalance_moves\":{},\
             \"fabric\":{{\"sent\":{},\"delivered\":{},\"dropped\":{},\"duplicated\":{},\
             \"reordered\":{},\"crash_lost\":{}}},\"divergences\":{},\"sentinel_alerts\":{},\
             \"sentinel_critical\":{},\"sentinel_flight_dumps\":{},\"transcript\":{}}}",
            json_str(&self.seed),
            self.rounds,
            self.committed,
            self.aborted,
            self.rejected_stale,
            self.crashes,
            self.rebalance_moves,
            f.sent,
            f.delivered,
            f.dropped,
            f.duplicated,
            f.reordered,
            f.crash_lost,
            json_str_array(&self.divergences),
            json_str_array(&self.sentinel_alerts),
            self.sentinel_critical,
            self.sentinel_flight_dumps,
            json_str(&hex(&self.transcript)),
        )
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Assert the exactly-once invariant and the oracle diff for `vm`.
fn check_vm(
    cluster: &Cluster,
    vm: u32,
    oracle: &TpmOracle,
    at: &str,
    divergences: &mut Vec<String>,
) {
    let runnable = cluster.runnable_hosts(vm);
    if runnable.len() != 1 {
        divergences.push(format!("{at}: vm {vm} runnable on {runnable:?}, expected exactly one"));
        return;
    }
    match cluster.with_vm(vm, |i| oracle.diff(&i.tpm)) {
        Some(d) if d.is_empty() => {}
        Some(d) => divergences.push(format!("{at}: vm {vm} diverged: {}", d.join("; "))),
        None => divergences.push(format!("{at}: vm {vm} has no live instance")),
    }
}

/// A recovered manager (or an adopted instance) is a fresh TPM boot
/// over preserved permanent state: sync each affected oracle's
/// active-counter latch. A VM is affected when it moved hosts (adopt is
/// a restore) or its current home is the host that just crashed.
fn sync_reboots(
    cluster: &Cluster,
    homes_before: &[Option<usize>],
    crashed: Option<usize>,
    oracles: &mut [TpmOracle],
) {
    for (vm, oracle) in oracles.iter_mut().enumerate() {
        let now = cluster.home_of(vm as u32);
        if now != homes_before[vm] || (now.is_some() && now == crashed) {
            oracle.note_reboot();
        }
    }
}

/// Run one seeded migration-chaos scenario. Deterministic in `seed`
/// and `cfg`.
pub fn run_migration_chaos(
    seed: &[u8],
    cfg: &MigrationChaosConfig,
) -> XenResult<MigrationChaosReport> {
    let mut rng = Drbg::new(&[seed, b"/mig-chaos"].concat());
    let mut cluster = Cluster::new(
        &[seed, b"/cluster"].concat(),
        ClusterConfig {
            hosts: cfg.hosts,
            sealed: cfg.sealed,
            frames_per_host: cfg.frames_per_host,
            ..Default::default()
        },
    )?;
    let mut report = MigrationChaosReport {
        seed: hex(seed),
        rounds: cfg.rounds,
        committed: 0,
        aborted: 0,
        rejected_stale: 0,
        crashes: 0,
        rebalance_moves: 0,
        fabric: FabricStats::default(),
        divergences: Vec::new(),
        sentinel_alerts: Vec::new(),
        sentinel_critical: 0,
        sentinel_flight_dumps: 0,
        transcript: [0; 32],
    };
    let mut transcript: Vec<u8> = Vec::new();
    let mut sentinel = Sentinel::new(SentinelConfig::default());
    // Stream cursors: audit entries already fed, per host, and
    // migration spans already fed — the sentinel sees each record once,
    // in a deterministic host-major order per round.
    let mut audit_fed = vec![0usize; cfg.hosts];
    let mut spans_fed = 0usize;

    let mut oracles: Vec<TpmOracle> = Vec::new();
    for _ in 0..cfg.vms {
        let vm = cluster.create_vm()?;
        oracles.push(cluster.with_vm(vm, |i| TpmOracle::capture(&i.tpm)).expect("fresh vm"));
    }

    for round in 0..cfg.rounds {
        transcript.extend_from_slice(&(round as u32).to_be_bytes());

        // Traffic against every VM (all are at rest between rounds).
        for vm in 0..cfg.vms as u32 {
            let trace_seed =
                [seed, b"/traffic/", &(round as u32).to_be_bytes(), &vm.to_be_bytes()].concat();
            for ev in generate_trace(&trace_seed, cfg.events_per_round) {
                if cluster.apply_event(vm, &ev) {
                    oracles[vm as usize].apply(&ev);
                } else {
                    report
                        .divergences
                        .push(format!("round {round}: vm {vm} refused traffic at rest"));
                }
            }
        }

        // One seeded action.
        let vm = rng.below(cfg.vms as u64) as u32;
        let home = cluster.home_of(vm).unwrap_or(0);
        let dst = (home + 1 + rng.below((cfg.hosts - 1) as u64) as usize) % cfg.hosts;
        let homes: Vec<Option<usize>> =
            (0..cfg.vms as u32).map(|v| cluster.home_of(v)).collect();
        let mut crashed = None;
        match rng.below(4) {
            // Clean migration, or one with a fabric fault armed on an
            // upcoming send.
            action @ (0 | 1) => {
                if action == 1 {
                    let kind = match rng.below(3) {
                        0 => FabricFault::Drop,
                        1 => FabricFault::Duplicate,
                        _ => FabricFault::Reorder,
                    };
                    let at = cluster.fabric.stats().sent + rng.below(8);
                    cluster.fabric.inject_fault(at, kind);
                    transcript.push(b'F');
                }
                let outcome = cluster.migrate(vm, dst);
                transcript.push(match outcome {
                    MigrateOutcome::Committed => {
                        report.committed += 1;
                        b'C'
                    }
                    MigrateOutcome::Aborted => {
                        report.aborted += 1;
                        b'A'
                    }
                    MigrateOutcome::RejectedStale => {
                        report.rejected_stale += 1;
                        b'R'
                    }
                });
            }
            // Crash one side after a seeded number of protocol steps,
            // recover it, settle via the journals.
            2 => {
                let k = rng.below(9) as usize;
                let crash_src = rng.below(2) == 0;
                if let Some(mut run) = cluster.begin_migration(vm, dst) {
                    for _ in 0..k {
                        if !cluster.step(&mut run) {
                            break;
                        }
                    }
                    let h = if crash_src { run.src } else { run.dst };
                    cluster.recover_host(h)?;
                    crashed = Some(h);
                    cluster.resolve(vm);
                    report.crashes += 1;
                    transcript.extend_from_slice(&[b'X', h as u8, k as u8]);
                }
            }
            // Rebalance pass.
            _ => {
                let moves = cluster.rebalance().expect("chaos cluster has hosts");
                report.rebalance_moves += moves as u64;
                transcript.extend_from_slice(&[b'B', moves as u8]);
            }
        }

        sync_reboots(&cluster, &homes, crashed, &mut oracles);
        for v in 0..cfg.vms as u32 {
            check_vm(&cluster, v, &oracles[v as usize], &format!("round {round}"), &mut report.divergences);
            transcript.push(cluster.home_of(v).map_or(0xFF, |h| h as u8));
        }

        // Feed this round's observability exhaust to the sentinel:
        // every host's new audit entries, then new migration spans,
        // then the crash marker if one fired.
        for (h, fed) in audit_fed.iter_mut().enumerate() {
            let entries = cluster.hosts[h].audit.entries();
            for e in &entries[*fed..] {
                sentinel.observe(audit_event(h as u32, e));
            }
            *fed = entries.len();
        }
        let spans = cluster.telemetry().spans();
        for m in &spans[spans_fed..] {
            sentinel.observe(StreamEvent::MigrationSpan(m.clone()));
        }
        spans_fed = spans.len();
        if let Some(h) = crashed {
            // Stamped on the crashed host's own clock — the same one its
            // recovery scan's dump-trail entry carries — so the sentinel
            // can correlate the two.
            sentinel.observe(StreamEvent::CrashRecovery {
                host: h as u32,
                at_ns: cluster.hosts[h].platform.hv.clock.now_ns(),
            });
        }
    }

    // Final sweep: invariants, audit chains, fabric counters.
    for v in 0..cfg.vms as u32 {
        check_vm(&cluster, v, &oracles[v as usize], "final", &mut report.divergences);
    }
    for h in 0..cfg.hosts {
        let entries = cluster.hosts[h].audit.entries();
        if !vtpm_ac::AuditLog::verify(&entries) {
            report.divergences.push(format!("final: host {h} audit chain broken"));
        }
        transcript.extend_from_slice(&(entries.len() as u32).to_be_bytes());
        transcript
            .extend_from_slice(&(cluster.hosts[h].journal.records().len() as u32).to_be_bytes());
    }
    report.fabric = cluster.fabric.stats();
    for n in [
        report.fabric.sent,
        report.fabric.delivered,
        report.fabric.dropped,
        report.fabric.duplicated,
        report.fabric.reordered,
        report.fabric.crash_lost,
    ] {
        transcript.extend_from_slice(&n.to_be_bytes());
    }
    // Close out the sentinel stream: every host's dump trail. The only
    // dumps a fault-injecting (but attack-free) run produces are the
    // crash-recovery scans, which the sentinel excuses by correlation
    // with the CrashRecovery markers fed above.
    for h in 0..cfg.hosts {
        for d in cluster.hosts[h].platform.hv.dump_events() {
            sentinel.observe(dump_event(h as u32, &d));
        }
    }
    report.sentinel_alerts = sentinel.alerts().iter().map(|a| a.line()).collect();
    report.sentinel_critical =
        sentinel.alerts().iter().filter(|a| a.severity == Severity::Critical).count() as u64;
    report.sentinel_flight_dumps = sentinel.flight_dumps().len() as u64;
    for line in &report.sentinel_alerts {
        transcript.extend_from_slice(line.as_bytes());
    }
    transcript.push(report.sentinel_flight_dumps as u8);
    report.transcript = sha256(&transcript);
    Ok(report)
}

/// One cell of the crash matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCell {
    /// Which side crashed: `"src"` or `"dst"`.
    pub role: &'static str,
    /// Protocol steps completed before the crash (0..=8).
    pub after_step: usize,
    /// The one host the VM was runnable on after recovery + resolve.
    pub survivor: usize,
    /// Whether the handoff had committed (VM ended on the destination).
    pub moved: bool,
}

/// Result of the exhaustive crash-at-every-step matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashMatrixReport {
    /// Hex of the seed.
    pub seed: String,
    /// One cell per (role, k): 18 total.
    pub cells: Vec<MatrixCell>,
    /// Replayed `Transfer` frames refused at the new home.
    pub replays_rejected: u64,
    /// Invariant violations (empty when correct).
    pub failures: Vec<String>,
    /// Critical sentinel alerts summed over every cell (each cell runs
    /// its own sentinel over both hosts' audit chains and dump trails;
    /// a single replayed frame stays under the replay-watch burst, so
    /// clean cells contribute zero).
    pub sentinel_critical: u64,
    /// SHA-256 over the matrix transcript.
    pub transcript: [u8; 32],
}

impl CrashMatrixReport {
    /// One machine-readable JSON object (single line, stable field
    /// order) — the `--json` chaos CLI output format.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{{\"role\":{},\"after_step\":{},\"survivor\":{},\"moved\":{}}}",
                    json_str(c.role),
                    c.after_step,
                    c.survivor,
                    c.moved
                )
            })
            .collect();
        format!(
            "{{\"family\":\"matrix\",\"seed\":{},\"cells\":[{}],\"replays_rejected\":{},\
             \"failures\":{},\"sentinel_critical\":{},\"transcript\":{}}}",
            json_str(&self.seed),
            cells.join(","),
            self.replays_rejected,
            json_str_array(&self.failures),
            self.sentinel_critical,
            json_str(&hex(&self.transcript)),
        )
    }
}

/// Crash {source, destination} after every protocol step `k` in
/// `0..=8`, on a fresh two-host cluster per cell. Deterministic in
/// `seed`.
pub fn run_crash_matrix(seed: &[u8], sealed: bool) -> XenResult<CrashMatrixReport> {
    let mut report = CrashMatrixReport {
        seed: hex(seed),
        cells: Vec::new(),
        replays_rejected: 0,
        failures: Vec::new(),
        sentinel_critical: 0,
        transcript: [0; 32],
    };
    let mut transcript: Vec<u8> = Vec::new();

    for (role, crash_src) in [("src", true), ("dst", false)] {
        for k in 0..=8usize {
            let cell = format!("{role}/k={k}");
            let cell_seed = [seed, b"/", role.as_bytes(), b"/", &[k as u8]].concat();
            let mut cluster = Cluster::new(
                &cell_seed,
                ClusterConfig { hosts: 2, sealed, frames_per_host: 1024, ..Default::default() },
            )?;
            let vm = cluster.create_vm()?;
            let mut oracle =
                cluster.with_vm(vm, |i| TpmOracle::capture(&i.tpm)).expect("fresh vm");
            for ev in generate_trace(&[cell_seed.as_slice(), b"/traffic"].concat(), 12) {
                if cluster.apply_event(vm, &ev) {
                    oracle.apply(&ev);
                }
            }
            let home = cluster.home_of(vm).expect("vm placed");
            let dst = 1 - home;
            let mut run = cluster.begin_migration(vm, dst).expect("vm runnable");
            for _ in 0..k {
                if !cluster.step(&mut run) {
                    break;
                }
            }
            let crash_host = if crash_src { run.src } else { run.dst };
            cluster.recover_host(crash_host)?;
            let recovered_at = cluster.hosts[crash_host].platform.hv.clock.now_ns();
            cluster.resolve(vm);

            let runnable = cluster.runnable_hosts(vm);
            let [survivor] = runnable[..] else {
                report.failures.push(format!(
                    "{cell}: vm runnable on {runnable:?}, expected exactly one host"
                ));
                transcript.push(0xFF);
                continue;
            };
            // The recovered state must be the pre- or post-migration
            // image — which are the same TPM state, on one host or the
            // other; what must never appear is a second runnable copy
            // or a state matching neither.
            match cluster.with_vm(vm, |i| oracle.diff(&i.tpm)) {
                Some(d) if d.is_empty() => {}
                Some(d) => report
                    .failures
                    .push(format!("{cell}: survivor state diverged: {}", d.join("; "))),
                None => report.failures.push(format!("{cell}: survivor has no live instance")),
            }
            if survivor == crash_host || survivor != home {
                oracle.note_reboot();
            }
            // The survivor must keep serving.
            for ev in generate_trace(&[cell_seed.as_slice(), b"/after"].concat(), 6) {
                if cluster.apply_event(vm, &ev) {
                    oracle.apply(&ev);
                } else {
                    report.failures.push(format!("{cell}: survivor refused traffic"));
                    break;
                }
            }
            check_vm(&cluster, vm, &oracle, &cell, &mut report.failures);

            // Committed handoff: replay the captured Transfer frame at
            // the new home; the burned epoch must refuse it.
            let moved = survivor != home;
            if moved {
                let replay = cluster
                    .fabric
                    .wiretap()
                    .iter()
                    .find(|f| {
                        f.len() > 1
                            && matches!(
                                MigMessage::decode(&f[1..]),
                                Some(MigMessage::Transfer { .. })
                            )
                    })
                    .cloned();
                if let Some(frame) = replay {
                    cluster.fabric.requeue(survivor, frame);
                    cluster.pump_host(survivor);
                    if cluster.runnable_hosts(vm) == vec![survivor] {
                        report.replays_rejected += 1;
                    } else {
                        report
                            .failures
                            .push(format!("{cell}: replayed package disturbed placement"));
                    }
                    check_vm(&cluster, vm, &oracle, &format!("{cell} post-replay"), &mut report.failures);
                }
            }

            transcript.extend_from_slice(&[k as u8, crash_src as u8, survivor as u8, moved as u8]);
            // A per-cell sentinel over both hosts' exhaust: the crash,
            // recovery, and single replayed frame are all expected —
            // a critical alert means a detector misread normal fault
            // handling as an attack.
            let mut sentinel = Sentinel::new(SentinelConfig::default());
            sentinel.observe(StreamEvent::CrashRecovery {
                host: crash_host as u32,
                at_ns: recovered_at,
            });
            for h in 0..2 {
                transcript.extend_from_slice(
                    &(cluster.hosts[h].journal.records().len() as u32).to_be_bytes(),
                );
                let entries = cluster.hosts[h].audit.entries();
                if !vtpm_ac::AuditLog::verify(&entries) {
                    report.failures.push(format!("{cell}: host {h} audit chain broken"));
                }
                transcript.extend_from_slice(&(entries.len() as u32).to_be_bytes());
                for e in &entries {
                    sentinel.observe(audit_event(h as u32, e));
                }
                for d in cluster.hosts[h].platform.hv.dump_events() {
                    sentinel.observe(dump_event(h as u32, &d));
                }
            }
            let critical =
                sentinel.alerts().iter().filter(|a| a.severity == Severity::Critical).count();
            if critical > 0 {
                for a in sentinel.alerts() {
                    report.failures.push(format!("{cell}: sentinel false positive: {}", a.line()));
                }
            }
            report.sentinel_critical += critical as u64;
            transcript.push(critical as u8);
            report.cells.push(MatrixCell { role, after_step: k, survivor, moved });
        }
    }
    report.transcript = sha256(&transcript);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_chaos_is_deterministic_and_clean() {
        let cfg = MigrationChaosConfig { rounds: 6, events_per_round: 4, ..Default::default() };
        let a = run_migration_chaos(b"mig-chaos-unit", &cfg).unwrap();
        let b = run_migration_chaos(b"mig-chaos-unit", &cfg).unwrap();
        assert_eq!(a, b, "replay must be byte-identical");
        assert!(a.divergences.is_empty(), "divergences: {:?}", a.divergences);
        // The seeded plan must actually exercise the machinery.
        assert!(a.committed + a.aborted + a.rejected_stale + a.crashes + a.rebalance_moves > 0);
        let c = run_migration_chaos(b"mig-chaos-unit-2", &cfg).unwrap();
        assert_ne!(a.transcript, c.transcript, "different seeds, different transcripts");
    }

    #[test]
    fn crash_matrix_covers_every_step_and_never_duplicates() {
        let r = run_crash_matrix(b"matrix-unit", true).unwrap();
        assert!(r.failures.is_empty(), "failures: {:?}", r.failures);
        assert_eq!(r.cells.len(), 18, "2 roles x 9 crash points");
        for role in ["src", "dst"] {
            for k in 0..=8usize {
                assert!(
                    r.cells.iter().any(|c| c.role == role && c.after_step == k),
                    "missing cell {role}/k={k}"
                );
            }
        }
        // Completed handoffs exist (late crashes) and each one had its
        // replayed package refused.
        let moved = r.cells.iter().filter(|c| c.moved).count() as u64;
        assert!(moved >= 4, "expected the late-crash cells to commit, got {moved}");
        assert_eq!(r.replays_rejected, moved);
        // Early source crashes leave the VM home; late ones see it through.
        assert!(r.cells.iter().any(|c| c.role == "src" && !c.moved));
        assert!(r.cells.iter().any(|c| c.role == "src" && c.moved));
        let replay = run_crash_matrix(b"matrix-unit", true).unwrap();
        assert_eq!(r, replay, "matrix replay must be byte-identical");
    }
}
