//! Adapters from the stack's native records to the sentinel's
//! plain-field [`StreamEvent`]s.
//!
//! `vtpm-sentinel` deliberately depends only on the telemetry crate, so
//! audit entries and hypervisor dump events cross into it as flattened
//! views; the harness owns the conversion (it is the process boundary a
//! real detection plane would sit behind).

use vtpm_ac::{AuditEntry, AuditOutcome};
use vtpm_sentinel::{AuditKind, AuditView, DumpView, StreamEvent};
use xen_sim::DumpEvent;

/// Flatten one audit-chain entry for the sentinel stream.
pub fn audit_event(host: u32, e: &AuditEntry) -> StreamEvent {
    let kind = match e.outcome {
        AuditOutcome::Allowed => AuditKind::Allowed,
        AuditOutcome::Denied(r) => AuditKind::Denied(r.code()),
        AuditOutcome::Migration(s) => AuditKind::MigrationStage(s as u8),
    };
    StreamEvent::Audit(AuditView {
        host,
        at_ns: e.timestamp_ns,
        request_id: e.request_id,
        domain: e.domain,
        instance: e.instance,
        ordinal: e.ordinal,
        kind,
    })
}

/// Flatten one hypervisor dump-trail entry for the sentinel stream.
pub fn dump_event(host: u32, d: &DumpEvent) -> StreamEvent {
    StreamEvent::Dump(DumpView {
        host,
        at_ns: d.at_ns,
        caller_domain: d.caller.0,
        frames: d.frames,
        foreign_frames: d.foreign_frames,
    })
}
