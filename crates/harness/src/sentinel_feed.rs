//! Adapters from the stack's native records to the sentinel's
//! plain-field [`StreamEvent`]s.
//!
//! `vtpm-sentinel` deliberately depends only on the telemetry crate, so
//! audit entries and hypervisor dump events cross into it as flattened
//! views; the harness owns the conversion (it is the process boundary a
//! real detection plane would sit behind).

use vtpm::VtpmManager;
use vtpm_ac::{AuditEntry, AuditOutcome};
use vtpm_attest::{AttestEvent, VerifierPool};
use vtpm_fleet::Fleet;
use vtpm_sentinel::{Alert, AttestView, AuditKind, AuditView, DumpView, StreamEvent};
use xen_sim::DumpEvent;

/// Flatten one audit-chain entry for the sentinel stream.
pub fn audit_event(host: u32, e: &AuditEntry) -> StreamEvent {
    let kind = match e.outcome {
        AuditOutcome::Allowed => AuditKind::Allowed,
        AuditOutcome::Denied(r) => AuditKind::Denied(r.code()),
        AuditOutcome::Migration(s) => AuditKind::MigrationStage(s as u8),
    };
    StreamEvent::Audit(AuditView {
        host,
        at_ns: e.timestamp_ns,
        request_id: e.request_id,
        domain: e.domain,
        instance: e.instance,
        ordinal: e.ordinal,
        kind,
    })
}

/// Flatten one hypervisor dump-trail entry for the sentinel stream.
pub fn dump_event(host: u32, d: &DumpEvent) -> StreamEvent {
    StreamEvent::Dump(DumpView {
        host,
        at_ns: d.at_ns,
        caller_domain: d.caller.0,
        frames: d.frames,
        foreign_frames: d.foreign_frames,
    })
}

/// Flatten one verifier-plane verdict for the sentinel stream.
pub fn attest_event(host: u32, e: &AttestEvent) -> StreamEvent {
    StreamEvent::Attest(AttestView {
        host,
        at_ns: e.at_ns,
        verifier: e.verifier,
        instance: e.instance,
        verdict: e.verdict,
    })
}

/// Close the detection loop: latch the manager's admission throttle for
/// every domain a deny-rate alert implicates. Returns how many domains
/// were throttled. Idempotent — the admission controller's `throttle`
/// is a latch, so feeding the same alerts twice changes nothing — and a
/// no-op when admission control is disabled in the manager's config.
pub fn apply_admission_alerts(mgr: &VtpmManager, alerts: &[Alert]) -> usize {
    let mut applied = 0;
    for alert in alerts {
        if alert.detector != "deny-rate" {
            continue;
        }
        if let Some(domain) = alert.domain {
            if mgr.admission().throttle(domain) {
                applied += 1;
            }
        }
    }
    applied
}

/// Close the detection loop on the verifier plane: latch the pool's
/// admission throttle for every verifier a quote-storm alert
/// implicates. Returns how many verifiers were newly throttled; same
/// idempotence as [`apply_admission_alerts`].
pub fn apply_verifier_alerts(pool: &VerifierPool, alerts: &[Alert]) -> usize {
    let mut applied = 0;
    for alert in alerts {
        if alert.detector != "quote-storm" {
            continue;
        }
        if let Some(verifier) = alert.domain {
            if pool.throttle_verifier(verifier) {
                applied += 1;
            }
        }
    }
    applied
}

/// Close the detection loop on the fleet plane: the sentinel's
/// churn-storm detector pauses the rebalancer while a crash storm is
/// raging (rebalancing *into* churn multiplies in-doubt handoffs) and
/// releases it when the storm clears. Raise alerts carry a plain
/// detail; the matching clear's detail starts with `"cleared"` — this
/// bridge keys on that prefix. Per-host flap alerts share the detector
/// name but are informational here. Returns `(paused, resumed)` —
/// latch transitions actually applied; re-feeding the same alerts is a
/// no-op because the latch is level-sensitive.
pub fn apply_fleet_alerts(fleet: &mut Fleet, alerts: &[Alert]) -> (usize, usize) {
    let (mut paused, mut resumed) = (0, 0);
    for alert in alerts {
        if alert.detector != "churn-storm" {
            continue;
        }
        if alert.detail.starts_with("cleared") {
            if fleet.paused() {
                fleet.resume_rebalance();
                resumed += 1;
            }
        } else if alert.detail.starts_with("churn storm") && !fleet.paused() {
            fleet.pause_rebalance();
            paused += 1;
        }
    }
    (paused, resumed)
}

/// Close the observability loop on the fleet plane: a
/// **migration-blackout** SLO burn means guest-visible downtime is
/// eating its error budget *right now*, and the one lever the
/// controller owns that adds downtime is the rebalancer — so a burn
/// pauses it and the matching clear (detail prefixed `"cleared"`, same
/// convention as the churn bridge) releases it. Other rules' burns
/// (verify latency, scrub budget) are surfaced but not acted on here:
/// their levers live on other planes. Returns `(paused, resumed)`
/// latch transitions actually applied; level-sensitive and idempotent
/// like [`apply_fleet_alerts`].
pub fn apply_slo_alerts(fleet: &mut Fleet, alerts: &[Alert]) -> (usize, usize) {
    let (mut paused, mut resumed) = (0, 0);
    for alert in alerts {
        if alert.detector != "slo-burn" || !alert.detail.contains("migration-blackout") {
            continue;
        }
        if alert.detail.starts_with("cleared") {
            if fleet.paused() {
                fleet.resume_rebalance();
                resumed += 1;
            }
        } else if !fleet.paused() {
            fleet.pause_rebalance();
            paused += 1;
        }
    }
    (paused, resumed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vtpm::{AdmissionConfig, ManagerConfig};
    use vtpm_sentinel::{Sentinel, SentinelConfig};
    use vtpm_telemetry::{Outcome, SpanRecord};
    use xen_sim::Hypervisor;

    fn denied_span(host: u32, id: u64, domain: u32, end_ns: u64) -> StreamEvent {
        StreamEvent::Span {
            host,
            record: SpanRecord {
                request_id: id,
                domain,
                ordinal: 0x14,
                ingress_ns: end_ns.saturating_sub(100),
                decode_ns: end_ns.saturating_sub(80),
                ac_ns: end_ns.saturating_sub(60),
                exec_ns: end_ns.saturating_sub(40),
                mirror_ns: end_ns.saturating_sub(20),
                end_ns,
                mirror_bytes: 0,
                outcome: Outcome::Denied(0),
            },
        }
    }

    #[test]
    fn deny_rate_alert_throttles_the_implicated_domain() {
        let hv = Arc::new(Hypervisor::boot(2048, 8).unwrap());
        let mgr = vtpm::VtpmManager::new(
            Arc::clone(&hv),
            b"bridge",
            ManagerConfig {
                admission: AdmissionConfig { enabled: true, ..Default::default() },
                ..Default::default()
            },
        )
        .unwrap();

        // A sustained majority-denied stream from domain 7 trips the
        // sentinel's deny-rate detector...
        let mut sentinel = Sentinel::new(SentinelConfig::default());
        for i in 0..20 {
            sentinel.observe(denied_span(0, i, 7, 1_000 * i));
        }
        let alerts: Vec<Alert> = sentinel.alerts().to_vec();
        assert!(alerts.iter().any(|a| a.detector == "deny-rate" && a.domain == Some(7)));

        // ...and the bridge latches the manager's admission throttle for
        // exactly that domain, idempotently.
        assert!(!mgr.admission().is_throttled(7));
        assert_eq!(apply_admission_alerts(&mgr, &alerts), 1);
        assert!(mgr.admission().is_throttled(7));
        assert!(!mgr.admission().is_throttled(1), "uninvolved domains stay admitted");
        assert_eq!(apply_admission_alerts(&mgr, &alerts), 0, "re-applying is a no-op");
        assert_eq!(mgr.admission().throttle_events(), 1);
    }

    #[test]
    fn slo_burn_alert_pauses_and_resumes_the_rebalancer() {
        use vtpm_cluster::{Cluster, ClusterConfig};
        use vtpm_fleet::{Fleet, FleetConfig};

        let cluster = Cluster::new(b"slo-bridge", ClusterConfig::default()).unwrap();
        let mut fleet = Fleet::new(FleetConfig::default(), &cluster);

        // An observatory blackout burn arrives as a gauge, trips the
        // sentinel's slo-burn relay...
        let mut sentinel = Sentinel::new(SentinelConfig::default());
        let gauge = |name, value, at_ns| StreamEvent::Gauge { host: 99, at_ns, name, value };
        sentinel.observe(gauge("slo_burn:migration-blackout", 250, 1_000));
        let alerts: Vec<Alert> = sentinel.alerts().to_vec();
        assert!(alerts.iter().any(|a| a.detector == "slo-burn"));

        // ...and the bridge pauses the rebalancer, idempotently.
        assert!(!fleet.paused());
        assert_eq!(apply_slo_alerts(&mut fleet, &alerts), (1, 0));
        assert!(fleet.paused());
        assert_eq!(apply_slo_alerts(&mut fleet, &alerts), (0, 0), "re-applying is a no-op");

        // A verify-latency burn is not this bridge's lever.
        sentinel.observe(gauge("slo_burn:verify-latency", 130, 2_000));
        let fresh: Vec<Alert> = sentinel.alerts()[1..].to_vec();
        let mut other = Fleet::new(FleetConfig::default(), &cluster);
        assert_eq!(apply_slo_alerts(&mut other, &fresh), (0, 0));
        assert!(!other.paused());

        // The clear releases the latch.
        sentinel.observe(gauge("slo_burn:migration-blackout", 0, 3_000));
        let fresh: Vec<Alert> = sentinel.alerts()[2..].to_vec();
        assert_eq!(apply_slo_alerts(&mut fleet, &fresh), (0, 1));
        assert!(!fleet.paused());
    }

    #[test]
    fn quote_storm_alert_throttles_the_implicated_verifier() {
        use vtpm_attest::VerifierConfig;

        // A scripted verifier hammering the plane trips the sentinel's
        // quote-storm detector...
        let mut sentinel = Sentinel::new(SentinelConfig::default());
        for i in 0..70u64 {
            sentinel.observe(StreamEvent::Attest(vtpm_sentinel::AttestView {
                host: 0,
                at_ns: 1_000 + i * 100,
                verifier: 42,
                instance: 3,
                verdict: 0,
            }));
        }
        let alerts: Vec<Alert> = sentinel.alerts().to_vec();
        assert!(alerts.iter().any(|a| a.detector == "quote-storm" && a.domain == Some(42)));

        // ...and the bridge latches the pool's admission throttle for
        // exactly that verifier.
        let pool = VerifierPool::new(VerifierConfig {
            admission: AdmissionConfig { enabled: true, ..Default::default() },
            ..Default::default()
        });
        assert!(!pool.is_throttled(42));
        assert_eq!(apply_verifier_alerts(&pool, &alerts), 1);
        assert!(pool.is_throttled(42));
        assert!(!pool.is_throttled(7), "uninvolved verifiers stay admitted");
        assert_eq!(apply_verifier_alerts(&pool, &alerts), 0, "re-applying is a no-op");
    }
}
