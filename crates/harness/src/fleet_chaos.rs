//! Fleet chaos: churn-storm scenarios over the fleet control plane.
//!
//! [`run_fleet_chaos`] runs one seeded scenario with a [`Fleet`]
//! controller in the loop: heartbeat-fed failure detection, a bounded
//! pool of concurrent migration drivers, and the suspicion-driven
//! rebalancer — under continuous host churn. Each round applies guest
//! traffic, takes one seeded action (a manual drive, a deliberate
//! *double-drive* of the same VM, a fabric fault, a host crash that
//! stays down for a seeded number of rounds, or a host join), then
//! runs the controller for a few ticks so in-flight migrations
//! genuinely interleave.
//!
//! The run-end sweep is the point: every down host is revived, the
//! pool drained, every VM resolved — and then the harness requires
//! **zero lost, duplicated, or orphaned vTPMs**, every journal
//! settled, every injected conflict resolved to at most one winner,
//! and every at-rest VM byte-equal to its differential oracle. Running
//! the same seed twice must produce byte-identical reports.
//!
//! The sentinel watches the whole run through the same exhaust as the
//! migration family, plus crash-recovery markers; its churn-storm
//! detector is wired back into the controller's rebalance-pause latch
//! via [`crate::sentinel_feed::apply_fleet_alerts`] — the closed loop
//! under test, not a bolt-on.

use std::collections::BTreeMap;

use tpm_crypto::drbg::Drbg;
use tpm_crypto::sha256;
use vtpm_cluster::{Cluster, ClusterConfig, FabricFault, FabricStats};
use vtpm_fleet::{DriveDecision, DriveOutcome, Fleet, FleetConfig, Submitted, CONTROLLER_HOST};
use vtpm_observatory::Observatory;
use vtpm_sentinel::{Sentinel, SentinelConfig, Severity, StreamEvent};
use workload::{generate_trace, TpmOracle};
use xen_sim::Result as XenResult;

use crate::sentinel_feed::{apply_fleet_alerts, apply_slo_alerts, audit_event};
use crate::{json_str, json_str_array};

/// Tunables for one fleet-chaos scenario.
#[derive(Debug, Clone)]
pub struct FleetChaosConfig {
    /// Hosts booted up front.
    pub hosts: usize,
    /// Cap on joins (the fleet may grow to this many hosts).
    pub max_hosts: usize,
    /// VMs created up front.
    pub vms: usize,
    /// Rounds of traffic + one action + controller ticks.
    pub rounds: usize,
    /// Controller ticks per round.
    pub ticks_per_round: usize,
    /// Trace events per at-rest VM per round.
    pub events_per_round: usize,
    /// Ship sealed packages.
    pub sealed: bool,
    /// Dom0 frame budget per host.
    pub frames_per_host: usize,
    /// Diff every at-rest VM against its oracle each round (always done
    /// in the final sweep; disable per-round for large sweeps).
    pub oracle_checks: bool,
    /// Run the fleet observatory in the loop: per-round metric scrapes
    /// over the fabric, SLO burn-rate evaluation, and the burn →
    /// sentinel → rebalance-pause bridge. On by default; the replay
    /// determinism gate covers it either way.
    pub observatory: bool,
    /// Controller tuning.
    pub fleet: FleetConfig,
    /// Sentinel tuning. The default raises `replay_burst` above the
    /// driver pool's concurrency: a control plane running
    /// `max_in_flight` racing drives *legitimately* loses epoch races
    /// in bursts, and the serial-migration threshold (4) would read
    /// every double-drive flurry as a replay storm. An actual replayer
    /// produces dozens of rejections, so detection keeps its teeth.
    pub sentinel: SentinelConfig,
}

impl Default for FleetChaosConfig {
    fn default() -> Self {
        FleetChaosConfig {
            hosts: 3,
            max_hosts: 5,
            vms: 4,
            rounds: 10,
            ticks_per_round: 3,
            events_per_round: 4,
            sealed: true,
            frames_per_host: 1024,
            oracle_checks: true,
            observatory: true,
            fleet: FleetConfig::default(),
            sentinel: SentinelConfig {
                replay_burst: 2 * FleetConfig::default().max_in_flight,
                ..SentinelConfig::default()
            },
        }
    }
}

/// Everything observable about one fleet-chaos run; two runs of the
/// same seed and config must compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetChaosReport {
    /// Hex of the seed.
    pub seed: String,
    /// Rounds executed.
    pub rounds: usize,
    /// Controller ticks run.
    pub ticks: u64,
    /// Drives that committed.
    pub committed: u64,
    /// Drives that aborted.
    pub aborted: u64,
    /// Drives refused stale (lost an epoch race).
    pub rejected_stale: u64,
    /// Drives abandoned to host crashes.
    pub abandoned: u64,
    /// Submissions refused before entering the pool.
    pub refused: u64,
    /// Submissions that raced another in-flight drive of the same VM.
    pub conflicts: u64,
    /// Deliberate double-drives injected (both sides admitted).
    pub conflict_pairs: u64,
    /// Injected conflicts that ended with more than one committed
    /// winner — must be zero, always.
    pub multi_winner_conflicts: u64,
    /// Host crashes injected.
    pub crashes: u64,
    /// Host revivals (every crash is revived by run end).
    pub revivals: u64,
    /// Hosts joined mid-run.
    pub joins: u64,
    /// Suspicions the detector raised.
    pub suspects_raised: u64,
    /// Suspicions against hosts that were actually alive.
    pub false_suspects: u64,
    /// Rebalance-pause latches applied by the churn-storm bridge.
    pub storm_pauses: u64,
    /// Latch releases applied by the bridge.
    pub storm_resumes: u64,
    /// Observatory metric scrape passes completed.
    pub scrapes: u64,
    /// SLO burn raises the observatory evaluated over the run — zero on
    /// an attack-free run with healthy objectives.
    pub slo_burns: u64,
    /// Matching burn clears.
    pub slo_clears: u64,
    /// Rebalance pauses applied by the SLO-burn bridge
    /// (migration-blackout burns pause the planner like churn storms
    /// do).
    pub slo_pauses: u64,
    /// Latch releases applied by the SLO-burn bridge.
    pub slo_resumes: u64,
    /// VMs runnable nowhere after the final sweep (must be 0).
    pub lost: u64,
    /// VMs runnable on more than one host at any check (must be 0).
    pub duplicated: u64,
    /// Manager instances without a journal mapping after the final
    /// sweep (must be 0).
    pub orphaned: u64,
    /// Journal runs still in doubt (open quiesce/prepare) after the
    /// final sweep (must be 0).
    pub unsettled: u64,
    /// p99 of quiesce→commit downtime over committed drives.
    pub downtime_p99_ns: u64,
    /// Max of the same histogram.
    pub downtime_max_ns: u64,
    /// Every driver decision, in submission order — per-attempt trace
    /// ids, winner/loser outcomes, refusal reasons.
    pub drives: Vec<DriveDecision>,
    /// Fabric counters at run end.
    pub fabric: FabricStats,
    /// Invariant violations and oracle divergences (empty when correct).
    pub divergences: Vec<String>,
    /// Sentinel alert lines over the whole run.
    pub sentinel_alerts: Vec<String>,
    /// Critical (attack-class) alerts — must be zero on clean seeds
    /// (churn-storm alerts are Warning by design).
    pub sentinel_critical: u64,
    /// SHA-256 over the run transcript.
    pub transcript: [u8; 32],
}

impl FleetChaosReport {
    /// One machine-readable JSON object (single line, stable field
    /// order) — the `--json` chaos CLI output format.
    pub fn to_json(&self) -> String {
        let drives: Vec<String> = self
            .drives
            .iter()
            .map(|d| {
                format!(
                    "{{\"vm\":{},\"src\":{},\"dst\":{},\"epoch\":{},\"trace\":{},\
                     \"reason\":{},\"conflict\":{},\"outcome\":{},\"downtime_ns\":{},\"why\":{}}}",
                    d.vm,
                    d.src,
                    d.dst,
                    d.epoch,
                    d.trace,
                    json_str(d.reason.label()),
                    d.conflict,
                    json_str(d.outcome.label()),
                    d.downtime_ns,
                    json_str(d.why),
                )
            })
            .collect();
        let f = self.fabric;
        format!(
            "{{\"family\":\"fleet\",\"seed\":{},\"rounds\":{},\"ticks\":{},\"committed\":{},\
             \"aborted\":{},\"rejected_stale\":{},\"abandoned\":{},\"refused\":{},\
             \"conflicts\":{},\"conflict_pairs\":{},\"multi_winner_conflicts\":{},\
             \"crashes\":{},\"revivals\":{},\"joins\":{},\"suspects_raised\":{},\
             \"false_suspects\":{},\"storm_pauses\":{},\"storm_resumes\":{},\"scrapes\":{},\
             \"slo_burns\":{},\"slo_clears\":{},\"slo_pauses\":{},\"slo_resumes\":{},\"lost\":{},\
             \"duplicated\":{},\"orphaned\":{},\"unsettled\":{},\"downtime_p99_ns\":{},\
             \"downtime_max_ns\":{},\"drives\":[{}],\"fabric\":{{\"sent\":{},\"delivered\":{},\
             \"dropped\":{},\"duplicated\":{},\"reordered\":{},\"crash_lost\":{}}},\
             \"divergences\":{},\"sentinel_alerts\":{},\"sentinel_critical\":{},\"transcript\":{}}}",
            json_str(&self.seed),
            self.rounds,
            self.ticks,
            self.committed,
            self.aborted,
            self.rejected_stale,
            self.abandoned,
            self.refused,
            self.conflicts,
            self.conflict_pairs,
            self.multi_winner_conflicts,
            self.crashes,
            self.revivals,
            self.joins,
            self.suspects_raised,
            self.false_suspects,
            self.storm_pauses,
            self.storm_resumes,
            self.scrapes,
            self.slo_burns,
            self.slo_clears,
            self.slo_pauses,
            self.slo_resumes,
            self.lost,
            self.duplicated,
            self.orphaned,
            self.unsettled,
            self.downtime_p99_ns,
            self.downtime_max_ns,
            drives.join(","),
            f.sent,
            f.delivered,
            f.dropped,
            f.duplicated,
            f.reordered,
            f.crash_lost,
            json_str_array(&self.divergences),
            json_str_array(&self.sentinel_alerts),
            self.sentinel_critical,
            json_str(&hex(&self.transcript)),
        )
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Run one seeded fleet-chaos scenario. Deterministic in `seed` and
/// `cfg`.
pub fn run_fleet_chaos(seed: &[u8], cfg: &FleetChaosConfig) -> XenResult<FleetChaosReport> {
    let mut rng = Drbg::new(&[seed, b"/fleet-chaos"].concat());
    let mut cluster = Cluster::new(
        &[seed, b"/cluster"].concat(),
        ClusterConfig {
            hosts: cfg.hosts,
            sealed: cfg.sealed,
            frames_per_host: cfg.frames_per_host,
            ..Default::default()
        },
    )?;
    let mut fleet = Fleet::new(cfg.fleet, &cluster);
    let mut sentinel = Sentinel::new(cfg.sentinel);
    let mut observatory = cfg.observatory.then(|| Observatory::new(Default::default()));

    let mut report = FleetChaosReport {
        seed: hex(seed),
        rounds: cfg.rounds,
        ticks: 0,
        committed: 0,
        aborted: 0,
        rejected_stale: 0,
        abandoned: 0,
        refused: 0,
        conflicts: 0,
        conflict_pairs: 0,
        multi_winner_conflicts: 0,
        crashes: 0,
        revivals: 0,
        joins: 0,
        suspects_raised: 0,
        false_suspects: 0,
        storm_pauses: 0,
        storm_resumes: 0,
        scrapes: 0,
        slo_burns: 0,
        slo_clears: 0,
        slo_pauses: 0,
        slo_resumes: 0,
        lost: 0,
        duplicated: 0,
        orphaned: 0,
        unsettled: 0,
        downtime_p99_ns: 0,
        downtime_max_ns: 0,
        drives: Vec::new(),
        fabric: FabricStats::default(),
        divergences: Vec::new(),
        sentinel_alerts: Vec::new(),
        sentinel_critical: 0,
        transcript: [0; 32],
    };
    let mut transcript: Vec<u8> = Vec::new();

    let mut oracles: Vec<TpmOracle> = Vec::new();
    for _ in 0..cfg.vms {
        let vm = cluster.create_vm()?;
        oracles.push(cluster.with_vm(vm, |i| TpmOracle::capture(&i.tpm)).expect("fresh vm"));
    }

    // Down hosts and the round each revives in (harness fiat: a down
    // host is not stepped, pumped, or heartbeated until revival).
    let mut down: BTreeMap<usize, usize> = BTreeMap::new();
    // Injected double-drives, as decision-index pairs.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    // Stream cursors so the sentinel sees each record exactly once.
    let mut audit_fed = vec![0usize; cfg.hosts];
    let mut spans_fed = 0usize;
    let mut alerts_fed = 0usize;

    let revive =
        |cluster: &mut Cluster, fleet: &mut Fleet, sentinel: &mut Sentinel, h: usize| -> XenResult<()> {
            cluster.recover_host(h)?;
            fleet.host_up(cluster, h);
            sentinel.observe(StreamEvent::CrashRecovery {
                host: h as u32,
                at_ns: cluster.hosts[h].platform.hv.clock.now_ns(),
            });
            Ok(())
        };

    for round in 0..cfg.rounds {
        transcript.extend_from_slice(&(round as u32).to_be_bytes());

        // Revivals due this round.
        let due: Vec<usize> =
            down.iter().filter(|&(_, &at)| at <= round).map(|(&h, _)| h).collect();
        let mut revived: Vec<usize> = Vec::new();
        for h in due {
            revive(&mut cluster, &mut fleet, &mut sentinel, h)?;
            down.remove(&h);
            revived.push(h);
            report.revivals += 1;
            transcript.extend_from_slice(&[b'U', h as u8]);
        }

        // Traffic against every at-rest VM on a live host.
        for vm in 0..cfg.vms as u32 {
            let runnable = cluster.runnable_hosts(vm);
            let [home] = runnable[..] else { continue };
            if down.contains_key(&home) || fleet.pool().has_vm(vm) {
                continue;
            }
            let trace_seed =
                [seed, b"/traffic/", &(round as u32).to_be_bytes(), &vm.to_be_bytes()].concat();
            for ev in generate_trace(&trace_seed, cfg.events_per_round) {
                if cluster.apply_event(vm, &ev) {
                    oracles[vm as usize].apply(&ev);
                } else {
                    report
                        .divergences
                        .push(format!("round {round}: vm {vm} refused traffic at rest"));
                }
            }
            // Traffic advances virtual time; keep heartbeats flowing
            // through long stages so silence stays an evidence of
            // failure, not of a busy harness (the R-M2 false-suspect
            // fix). The call is interval-gated, so this is cheap.
            fleet.pump_heartbeats(&mut cluster);
        }

        let homes: Vec<Option<usize>> =
            (0..cfg.vms as u32).map(|v| cluster.home_of(v)).collect();

        // One seeded action. Drives only touch VMs homed on live hosts
        // and live destinations — a dead toolstack daemon submits
        // nothing; everything else is fair game.
        let up: Vec<usize> =
            (0..cluster.hosts.len()).filter(|h| !down.contains_key(h)).collect();
        let drivable: Vec<u32> = (0..cfg.vms as u32)
            .filter(|&vm| {
                cluster.home_of(vm).is_some_and(|h| !down.contains_key(&h))
                    && !fleet.pool().has_vm(vm)
            })
            .collect();
        match rng.below(6) {
            // Single drive.
            0 | 1 if !drivable.is_empty() && up.len() >= 2 => {
                let vm = drivable[rng.below(drivable.len() as u64) as usize];
                let home = cluster.home_of(vm).expect("drivable");
                let others: Vec<usize> = up.iter().copied().filter(|&h| h != home).collect();
                let dst = others[rng.below(others.len() as u64) as usize];
                fleet.drive(&mut cluster, vm, dst);
                transcript.extend_from_slice(&[b'D', vm as u8, dst as u8]);
            }
            // Double-drive: the same VM toward two destinations in the
            // same breath — the epoch-arbitration race on purpose.
            2 if !drivable.is_empty() && up.len() >= 3 => {
                let vm = drivable[rng.below(drivable.len() as u64) as usize];
                let home = cluster.home_of(vm).expect("drivable");
                let others: Vec<usize> = up.iter().copied().filter(|&h| h != home).collect();
                let d1 = others[rng.below(others.len() as u64) as usize];
                let mut d2 = others[rng.below(others.len() as u64) as usize];
                if d2 == d1 {
                    d2 = others[(others.iter().position(|&h| h == d1).unwrap() + 1)
                        % others.len()];
                }
                let a = fleet.drive(&mut cluster, vm, d1);
                let b = fleet.drive(&mut cluster, vm, d2);
                if let (Submitted::Admitted { idx: ia, .. }, Submitted::Admitted { idx: ib, .. }) =
                    (a, b)
                {
                    pairs.push((ia, ib));
                    report.conflict_pairs += 1;
                }
                transcript.extend_from_slice(&[b'W', vm as u8, d1 as u8, d2 as u8]);
            }
            // Fabric fault armed on an upcoming send (control-plane
            // heartbeats ride the same counter, so drops here are how
            // false suspects happen).
            3 => {
                let kind = match rng.below(3) {
                    0 => FabricFault::Drop,
                    1 => FabricFault::Duplicate,
                    _ => FabricFault::Reorder,
                };
                let at = cluster.fabric.stats().sent + rng.below(8);
                cluster.fabric.inject_fault(at, kind);
                transcript.push(b'F');
            }
            // Crash a host; it stays down for a seeded number of
            // rounds. Never the last live host.
            4 if up.len() > 1 => {
                let h = up[rng.below(up.len() as u64) as usize];
                cluster.fabric.crash_host(h);
                fleet.host_down(&mut cluster, h);
                down.insert(h, round + 1 + rng.below(3) as usize);
                report.crashes += 1;
                transcript.extend_from_slice(&[b'X', h as u8]);
            }
            // Join a host (until the cap).
            5 if cluster.hosts.len() < cfg.max_hosts => {
                let h = cluster.add_host()?;
                fleet.host_joined(&cluster, h);
                audit_fed.push(0);
                report.joins += 1;
                transcript.extend_from_slice(&[b'J', h as u8]);
            }
            _ => transcript.push(b'Q'),
        }

        // Run the controller.
        for _ in 0..cfg.ticks_per_round {
            fleet.tick(&mut cluster);
        }
        // Adoption is a restore (fresh TPM boot over preserved state),
        // and so is recovery: sync the oracles' active-counter latches.
        for vm in 0..cfg.vms as u32 {
            let now = cluster.home_of(vm);
            let moved = now != homes[vm as usize];
            let revived_home = now.is_some_and(|h| revived.contains(&h));
            if moved || revived_home {
                oracles[vm as usize].note_reboot();
            }
        }

        // Per-round invariants: no VM may ever be runnable twice; VMs
        // at rest on live hosts must match their oracles.
        for vm in 0..cfg.vms as u32 {
            let runnable = cluster.runnable_hosts(vm);
            if runnable.len() > 1 {
                report.duplicated += 1;
                report
                    .divergences
                    .push(format!("round {round}: vm {vm} runnable on {runnable:?}"));
            }
            transcript.push(cluster.home_of(vm).map_or(0xFF, |h| h as u8));
            if cfg.oracle_checks {
                let [home] = runnable[..] else { continue };
                if down.contains_key(&home) || fleet.pool().has_vm(vm) {
                    continue;
                }
                match cluster.with_vm(vm, |i| oracles[vm as usize].diff(&i.tpm)) {
                    Some(d) if d.is_empty() => {}
                    Some(d) => report
                        .divergences
                        .push(format!("round {round}: vm {vm} diverged: {}", d.join("; "))),
                    None => report
                        .divergences
                        .push(format!("round {round}: vm {vm} has no live instance")),
                }
            }
        }

        // Observatory pass: scrape every host's registry over the
        // fabric, evaluate the SLO burn rules on the merged fleet
        // series, and publish burn transitions to the sentinel as
        // `slo_burn:<rule>` gauges (worst-window ratio in percent;
        // zero on a clear).
        if let Some(obs) = observatory.as_mut() {
            fleet.scrape(&mut cluster, obs);
            report.scrapes += 1;
            for ev in obs.evaluate(cluster.clock.now_ns()) {
                if ev.burning {
                    report.slo_burns += 1;
                } else {
                    report.slo_clears += 1;
                }
                sentinel.observe(StreamEvent::Gauge {
                    host: CONTROLLER_HOST,
                    at_ns: ev.at_ns,
                    name: ev.gauge,
                    value: (ev.burn_ratio * 100.0) as u64,
                });
            }
        }

        // Feed the round's exhaust to the sentinel, then close the
        // loop: churn-storm alerts drive the rebalance-pause latch,
        // and migration-blackout SLO burns drive the same latch
        // through their own bridge.
        for (h, fed) in audit_fed.iter_mut().enumerate() {
            let entries = cluster.hosts[h].audit.entries();
            for e in &entries[*fed..] {
                sentinel.observe(audit_event(h as u32, e));
            }
            *fed = entries.len();
        }
        let spans = cluster.telemetry().spans();
        for m in &spans[spans_fed..] {
            sentinel.observe(StreamEvent::MigrationSpan(m.clone()));
        }
        spans_fed = spans.len();
        let alerts = sentinel.alerts();
        let fresh = &alerts[alerts_fed..];
        let (p, r) = apply_fleet_alerts(&mut fleet, fresh);
        let (sp, sr) = apply_slo_alerts(&mut fleet, fresh);
        alerts_fed = alerts.len();
        report.storm_pauses += p as u64;
        report.storm_resumes += r as u64;
        report.slo_pauses += sp as u64;
        report.slo_resumes += sr as u64;
    }

    // Final sweep: revive everything, drain the pool, settle every VM,
    // then account for each one exactly once.
    let still_down: Vec<usize> = down.keys().copied().collect();
    for h in still_down {
        revive(&mut cluster, &mut fleet, &mut sentinel, h)?;
        down.remove(&h);
        report.revivals += 1;
    }
    let drained_homes: Vec<Option<usize>> =
        (0..cfg.vms as u32).map(|v| cluster.home_of(v)).collect();
    fleet.drain(&mut cluster);
    for vm in 0..cfg.vms as u32 {
        cluster.resolve(vm);
        if cluster.home_of(vm) != drained_homes[vm as usize] {
            oracles[vm as usize].note_reboot();
        }
    }
    for vm in 0..cfg.vms as u32 {
        let runnable = cluster.runnable_hosts(vm);
        match runnable.len() {
            0 => {
                report.lost += 1;
                report.divergences.push(format!("final: vm {vm} runnable nowhere"));
            }
            1 => match cluster.with_vm(vm, |i| oracles[vm as usize].diff(&i.tpm)) {
                Some(d) if d.is_empty() => {}
                Some(d) => report
                    .divergences
                    .push(format!("final: vm {vm} diverged: {}", d.join("; "))),
                None => report.divergences.push(format!("final: vm {vm} has no live instance")),
            },
            _ => {
                report.duplicated += 1;
                report.divergences.push(format!("final: vm {vm} runnable on {runnable:?}"));
            }
        }
    }
    // Orphans (instances without a journal mapping), in-doubt journal
    // runs, audit chain integrity — per host.
    for h in 0..cluster.hosts.len() {
        let mapped: Vec<_> =
            cluster.hosts[h].journal.mapped_vms().iter().map(|&(_, l)| l).collect();
        for id in cluster.hosts[h].platform.manager.instance_ids() {
            if !mapped.contains(&id) {
                report.orphaned += 1;
                report.divergences.push(format!("final: host {h} orphaned instance {id:?}"));
            }
        }
        for vm in 0..cfg.vms as u32 {
            if cluster.hosts[h].journal.open_quiesce(vm).is_some()
                || cluster.hosts[h].journal.open_prepare(vm).is_some()
            {
                report.unsettled += 1;
                report
                    .divergences
                    .push(format!("final: host {h} journal still in doubt for vm {vm}"));
            }
        }
        let entries = cluster.hosts[h].audit.entries();
        if !vtpm_ac::AuditLog::verify(&entries) {
            report.divergences.push(format!("final: host {h} audit chain broken"));
        }
        transcript.extend_from_slice(&(entries.len() as u32).to_be_bytes());
        transcript
            .extend_from_slice(&(cluster.hosts[h].journal.records().len() as u32).to_be_bytes());
    }
    // Every injected conflict: at most one winner, ever.
    for &(ia, ib) in &pairs {
        let d = fleet.pool().decisions();
        let winners = [d[ia], d[ib]]
            .iter()
            .filter(|d| d.outcome == DriveOutcome::Committed)
            .count();
        if winners > 1 {
            report.multi_winner_conflicts += 1;
            report.divergences.push(format!(
                "final: conflict over vm {} produced {winners} winners",
                d[ia].vm
            ));
        }
    }

    // Fold the controller's own accounting into the report.
    let snap = fleet.snapshot();
    report.ticks = snap.ticks;
    report.committed = snap.drives_committed;
    report.aborted = snap.drives_aborted;
    report.rejected_stale = snap.drives_rejected_stale;
    report.abandoned = snap.drives_abandoned;
    report.refused = snap.drives_refused;
    report.conflicts = snap.conflicts;
    report.suspects_raised = snap.suspects_raised;
    report.false_suspects = snap.false_suspects;
    report.downtime_p99_ns = snap.downtime.p99;
    report.downtime_max_ns = snap.downtime.max;
    report.drives = fleet.pool().decisions().to_vec();
    report.fabric = cluster.fabric.stats();

    for d in &report.drives {
        transcript.extend_from_slice(&d.vm.to_be_bytes());
        transcript.extend_from_slice(&d.epoch.to_be_bytes());
        transcript.extend_from_slice(&d.trace.to_be_bytes());
        transcript.extend_from_slice(d.outcome.label().as_bytes());
    }
    for n in [
        report.fabric.sent,
        report.fabric.delivered,
        report.fabric.dropped,
        report.fabric.duplicated,
        report.fabric.reordered,
        report.fabric.crash_lost,
        snap.heartbeats_seen,
    ] {
        transcript.extend_from_slice(&n.to_be_bytes());
    }
    if let Some(obs) = &observatory {
        let (scraped, rejects, resets) = obs.stats();
        for n in [scraped, rejects, resets, report.slo_burns, report.slo_clears] {
            transcript.extend_from_slice(&n.to_be_bytes());
        }
    }
    report.sentinel_alerts = sentinel.alerts().iter().map(|a| a.line()).collect();
    report.sentinel_critical =
        sentinel.alerts().iter().filter(|a| a.severity == Severity::Critical).count() as u64;
    for line in &report.sentinel_alerts {
        transcript.extend_from_slice(line.as_bytes());
    }
    report.transcript = sha256(&transcript);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_chaos_is_deterministic_and_accounts_for_every_vm() {
        let cfg = FleetChaosConfig { rounds: 8, ..Default::default() };
        let a = run_fleet_chaos(b"fleet-chaos-unit", &cfg).unwrap();
        let b = run_fleet_chaos(b"fleet-chaos-unit", &cfg).unwrap();
        assert_eq!(a, b, "replay must be byte-identical");
        assert!(a.divergences.is_empty(), "divergences: {:?}", a.divergences);
        assert_eq!((a.lost, a.duplicated, a.orphaned, a.unsettled), (0, 0, 0, 0));
        assert_eq!(a.multi_winner_conflicts, 0);
        assert!(a.ticks > 0 && a.committed + a.aborted + a.rejected_stale + a.crashes > 0);
        let c = run_fleet_chaos(b"fleet-chaos-unit-2", &cfg).unwrap();
        assert_ne!(a.transcript, c.transcript, "different seeds, different transcripts");
    }

    #[test]
    fn double_drives_surface_in_the_decision_log() {
        // Sweep seeds until one injects a double-drive, then check the
        // decision log tells the winner/loser story end to end.
        for s in 0..16u8 {
            let cfg = FleetChaosConfig { rounds: 12, ..Default::default() };
            let r = run_fleet_chaos(&[&b"fleet-pair-"[..], &[s]].concat(), &cfg).unwrap();
            assert!(r.divergences.is_empty(), "seed {s}: {:?}", r.divergences);
            if r.conflict_pairs == 0 {
                continue;
            }
            assert!(r.conflicts >= r.conflict_pairs);
            let conflicted: Vec<_> = r.drives.iter().filter(|d| d.conflict).collect();
            assert!(conflicted.len() >= 2);
            assert!(conflicted.iter().all(|d| d.trace != 0), "admitted drives carry trace ids");
            return;
        }
        panic!("no seed injected a double-drive in 16 tries");
    }

    #[test]
    fn report_json_is_one_line_and_tagged() {
        let cfg = FleetChaosConfig { rounds: 3, vms: 2, ..Default::default() };
        let r = run_fleet_chaos(b"fleet-json-unit", &cfg).unwrap();
        let json = r.to_json();
        assert!(json.starts_with("{\"family\":\"fleet\","));
        assert!(!json.contains('\n'));
        assert!(json.contains("\"drives\":["));
        assert!(json.contains("\"downtime_p99_ns\":"));
    }
}
