//! # vtpm-xen
//!
//! Umbrella crate for the reproduction of *Improvement for vTPM Access
//! Control on Xen* (Morikawa, Ebara, Onishi, Nakano — ICPPW 2010).
//!
//! Re-exports the whole stack so examples and integration tests can work
//! against one crate:
//!
//! * [`crypto`] — from-scratch SHA-1/SHA-256, HMAC, bignum/RSA, AES-CTR,
//!   DRBG ([`tpm_crypto`]);
//! * [`xen`] — the Xen simulator: domains, memory + dump facility, grant
//!   tables, event channels, rings, XenStore, scheduler ([`xen_sim`]);
//! * [`tpm12`] — the software TPM 1.2 emulator and client ([`tpm`]);
//! * [`vtpm_stack`] — the stock vTPM subsystem: manager, split driver,
//!   persistence, migration, platform assembly ([`vtpm`]);
//! * [`access_control`] — **the paper's contribution**: AC1–AC4 and
//!   [`vtpm_ac::SecurePlatform`] ([`vtpm_ac`]);
//! * [`attack`] — the evaluation's attacker toolkit ([`attacks`]);
//! * [`bench_workload`] — command mixes, drivers, runners ([`workload`]);
//! * [`telemetry`] — lock-free spans, metrics, and exporters threaded
//!   through the whole request path ([`vtpm_telemetry`]);
//! * [`cluster`] — multi-host fabric and the live-migration protocol:
//!   exactly-once hand-off, epoch anti-rollback, placement/rebalance
//!   ([`vtpm_cluster`]);
//! * [`sentinel`] — the streaming security-detection plane: detectors
//!   over the span/audit/gauge/dump-trail/attest stream, a bounded
//!   flight recorder, and a Prometheus-style exporter
//!   ([`vtpm_sentinel`]);
//! * [`attest`] — the cloud-scale attestation plane: nonce-window
//!   batched deep-quote issuance with a generation-keyed cache, and a
//!   batch-verifying pool with freshness policy, replay ledger, and
//!   audited refusals ([`vtpm_attest`]);
//! * [`fleet`] — the fleet control plane: phi-accrual failure
//!   detection over fabric heartbeats, a bounded pool of concurrent
//!   migration drivers with epoch arbitration, and the
//!   suspicion-driven rebalancer ([`vtpm_fleet`]);
//! * [`observatory`] — the fleet-wide metrics plane: cross-host
//!   histogram aggregation over scraped fabric frames, downsampling
//!   rollups in virtual time, the multi-window SLO burn-rate engine
//!   feeding the sentinel's closed loops, and per-subsystem profiling
//!   attribution from one text/JSON endpoint ([`vtpm_observatory`]).
//!
//! ## Quickstart
//!
//! ```
//! use vtpm_xen::access_control::SecurePlatform;
//!
//! // The paper's improved system: encrypted state, scrubbed rings,
//! // credentialed guests, command policy, audit log.
//! let platform = SecurePlatform::full(b"my-host").unwrap();
//! let mut guest = platform.launch_guest("web1").unwrap();
//! let mut tpm = guest.client(b"app");
//! tpm.startup_clear().unwrap();
//! let nonce = tpm.get_random(16).unwrap();
//! assert_eq!(nonce.len(), 16);
//! ```

pub use attacks as attack;
pub use tpm as tpm12;
pub use vtpm_attest as attest;
pub use tpm_crypto as crypto;
pub use vtpm_cluster as cluster;
pub use vtpm_fleet as fleet;
pub use vtpm_observatory as observatory;
pub use vtpm_sentinel as sentinel;
pub use vtpm as vtpm_stack;
pub use vtpm_ac as access_control;
pub use vtpm_telemetry as telemetry;
pub use workload as bench_workload;
pub use xen_sim as xen;

/// The commonly used types, one import away.
pub mod prelude {
    pub use attacks::{AttackMatrix, MemoryDump};
    pub use tpm::{handle, ordinal, rc, PcrSelection, Tpm, TpmClient, TpmConfig};
    pub use vtpm::{Guest, ManagerConfig, MirrorMode, Platform, VtpmManager};
    pub use vtpm_ac::{AcConfig, PolicyEngine, SecurePlatform};
    pub use vtpm_attest::{
        Evidence, IssuerConfig, QuoteIssuer, Submission, Verdict, VerifierConfig, VerifierPool,
    };
    pub use vtpm_cluster::{Cluster, ClusterConfig, MigrateOutcome};
    pub use vtpm_fleet::{Fleet, FleetConfig};
    pub use vtpm_observatory::{Observatory, ObservatoryConfig, SloRule};
    pub use vtpm_sentinel::{Sentinel, SentinelConfig, StreamEvent};
    pub use workload::{run_concurrent, CommandMix, GuestSession, Op};
    pub use xen_sim::{DomainConfig, DomainId, Hypervisor};
}
