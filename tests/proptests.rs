//! Property-based tests on the core data structures and invariants,
//! spanning crates.

use proptest::prelude::*;

use vtpm_xen::crypto::{BigUint, Drbg};
use vtpm_xen::tpm12::buffer::{Reader, Writer};
use vtpm_xen::tpm12::PcrSelection;
use vtpm_xen::vtpm_stack::{Envelope, ResponseEnvelope, ResponseStatus};
use vtpm_xen::xen::{ByteRing, DomainId, MachineMemory, PageRegion, RingDir};

// ---- bignum arithmetic laws -------------------------------------------------

fn biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..48).prop_map(|v| BigUint::from_bytes_be(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bytes_roundtrip(v in biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
    }

    #[test]
    fn add_commutative(a in biguint(), b in biguint()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_sub_inverse(a in biguint(), b in biguint()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_distributes(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn div_rem_law(a in biguint(), b in biguint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn shifts_inverse(a in biguint(), n in 0usize..200) {
        prop_assert_eq!(a.shl(n).shr(n), a);
    }

    #[test]
    fn mod_pow_multiplicative(a in biguint(), b in biguint(), m in biguint()) {
        // (a*b)^1 mod m == (a mod m)(b mod m) mod m, m odd & > 1
        let m = { let mut m2 = m; m2.set_bit(0); m2 };
        prop_assume!(m > BigUint::one());
        let lhs = a.mul(&b).rem(&m);
        let rhs = a.rem(&m).mul_mod(&b.rem(&m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn montgomery_modexp_matches_naive(a in biguint(), e in biguint(), m in biguint()) {
        // mod_pow (Montgomery for odd m) against a reference
        // square-and-multiply built from mul_mod only.
        let m = { let mut m2 = m; m2.set_bit(0); m2 };
        prop_assume!(m > BigUint::one());
        let fast = a.mod_pow(&e, &m);
        let mut acc = BigUint::one().rem(&m);
        let mut base = a.rem(&m);
        for i in 0..e.bits() {
            if e.bit(i) {
                acc = acc.mul_mod(&base, &m);
            }
            base = base.mul_mod(&base, &m);
        }
        prop_assert_eq!(fast, acc);
    }

    #[test]
    fn mod_inverse_correct(a in biguint(), m in biguint()) {
        let m = { let mut m2 = m; m2.set_bit(0); m2 }; // odd modulus
        prop_assume!(m > BigUint::one());
        if let Some(inv) = a.mod_inverse(&m) {
            prop_assert!(a.mul_mod(&inv, &m).is_one());
        }
    }
}

// ---- hashes: streaming == one-shot, any split --------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sha1_split_invariant(data in proptest::collection::vec(any::<u8>(), 0..300), split in 0usize..300) {
        use vtpm_xen::crypto::{Digest, sha1};
        let split = split.min(data.len());
        let mut h = vtpm_xen::crypto::sha1::Sha1::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha1(&data).to_vec());
    }

    #[test]
    fn hmac_verifies_only_same_key_and_message(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
        flip in any::<u8>(),
    ) {
        use vtpm_xen::crypto::hmac_sha256;
        let mac = hmac_sha256(&key, &msg);
        prop_assert_eq!(hmac_sha256(&key, &msg), mac);
        if !msg.is_empty() {
            let mut msg2 = msg.clone();
            let idx = flip as usize % msg2.len();
            msg2[idx] ^= 0x01;
            prop_assert_ne!(hmac_sha256(&key, &msg2), mac);
        }
    }

    #[test]
    fn aes_ctr_is_involutive(
        key in proptest::array::uniform16(any::<u8>()),
        nonce in proptest::array::uniform8(any::<u8>()),
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        use vtpm_xen::crypto::AesCtr;
        let ctr = AesCtr::new(&key, nonce);
        let mut buf = data.clone();
        ctr.apply_keystream(&mut buf);
        ctr.apply_keystream(&mut buf);
        prop_assert_eq!(buf, data);
    }
}

// ---- TPM wire marshalling ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn writer_reader_roundtrip(a in any::<u8>(), b in any::<u16>(), c in any::<u32>(),
                               blob in proptest::collection::vec(any::<u8>(), 0..100)) {
        let mut w = Writer::new();
        w.u8(a).u16(b).u32(c).sized_u32(&blob).sized_u16(&blob);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        prop_assert_eq!(r.u8().unwrap(), a);
        prop_assert_eq!(r.u16().unwrap(), b);
        prop_assert_eq!(r.u32().unwrap(), c);
        prop_assert_eq!(r.sized_u32().unwrap(), blob.as_slice());
        prop_assert_eq!(r.sized_u16().unwrap(), blob.as_slice());
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn pcr_selection_roundtrip(indices in proptest::collection::btree_set(0usize..24, 0..24)) {
        let v: Vec<usize> = indices.iter().copied().collect();
        let sel = PcrSelection::of(&v);
        let enc = sel.encode();
        let (dec, used) = PcrSelection::decode(&enc).unwrap();
        prop_assert_eq!(used, enc.len());
        prop_assert_eq!(dec, sel);
        prop_assert_eq!(dec.indices(), v);
    }

    #[test]
    fn envelope_roundtrip(domain in any::<u32>(), instance in any::<u32>(), seq in any::<u64>(),
                          locality in 0u8..5, tagged in any::<bool>(),
                          cmd in proptest::collection::vec(any::<u8>(), 0..200)) {
        let e = Envelope {
            domain, instance, seq, locality,
            tag: if tagged { Some([7; 32]) } else { None },
            command: cmd,
        };
        prop_assert_eq!(Envelope::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn envelope_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Envelope::decode(&bytes);
        let _ = ResponseEnvelope::decode(&bytes);
    }

    #[test]
    fn response_envelope_roundtrip(seq in any::<u64>(),
                                   body in proptest::collection::vec(any::<u8>(), 0..100)) {
        let r = ResponseEnvelope { seq, status: ResponseStatus::Ok, body };
        prop_assert_eq!(ResponseEnvelope::decode(&r.encode()).unwrap(), r);
    }
}

// ---- shared ring under arbitrary message sequences -----------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ring_fifo_under_arbitrary_traffic(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..400), 1..30)
    ) {
        let mut mem = MachineMemory::new(3);
        let mfns = mem.alloc_frames(DomainId(1), 2).unwrap();
        let ring = ByteRing::new(PageRegion::new(mfns)).unwrap();
        ring.init(&mut mem).unwrap();

        // Interleave writes and reads; whenever the ring is full, drain one.
        let mut expect = std::collections::VecDeque::new();
        for (i, msg) in msgs.iter().enumerate() {
            loop {
                match ring.write_msg(&mut mem, RingDir::FrontToBack, i as u32, msg) {
                    Ok(()) => { expect.push_back((i as u32, msg.clone())); break; }
                    Err(vtpm_xen::xen::XenError::RingFull) => {
                        let got = ring.read_msg(&mut mem, RingDir::FrontToBack).unwrap().unwrap();
                        let want = expect.pop_front().unwrap();
                        prop_assert_eq!(got, want);
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
        }
        while let Some(got) = ring.read_msg(&mut mem, RingDir::FrontToBack).unwrap() {
            let want = expect.pop_front().unwrap();
            prop_assert_eq!(got, want);
        }
        prop_assert!(expect.is_empty());
    }
}

// ---- policy language: parse is total over generated rule sets -------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn policy_generated_rules_parse_and_decide(
        rules in proptest::collection::vec((any::<bool>(), 0u32..8, 0usize..10), 0..40),
        default_allow in any::<bool>(),
        query_dom in 0u32..8,
    ) {
        use vtpm_xen::access_control::PolicyEngine;
        const GROUPS: [&str; 10] = ["owner", "nv-admin", "nv", "pcr", "sealing",
                                    "attestation", "keys", "session", "random", "other"];
        let mut text = String::new();
        for (allow, dom, group) in &rules {
            text.push_str(&format!(
                "{} dom {} group {}\n",
                if *allow { "allow" } else { "deny" },
                dom,
                GROUPS[*group],
            ));
        }
        text.push_str(if default_allow { "default allow\n" } else { "default deny\n" });
        let engine = PolicyEngine::parse(&text).unwrap();
        prop_assert_eq!(engine.rule_count(), rules.len());
        // Decisions are deterministic and cache-consistent.
        for ord in [0x17u32, 0x16, 0x46, 0x0D] {
            let d1 = engine.check(query_dom, ord);
            prop_assert_eq!(d1, engine.check_uncached(query_dom, ord));
            prop_assert_eq!(d1, engine.check(query_dom, ord));
        }
    }
}

// ---- seal/unseal over arbitrary payloads ---------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn seal_unseal_arbitrary_payloads(data in proptest::collection::vec(any::<u8>(), 0..40)) {
        use vtpm_xen::tpm12::{DirectTransport, Tpm, TpmClient, handle};
        let mut tpm = Tpm::new(b"prop-seal");
        let mut c = TpmClient::new(DirectTransport { tpm: &mut tpm, locality: 0 }, b"c");
        c.startup_clear().unwrap();
        c.take_ownership(&[1; 20], &[2; 20]).unwrap();
        let blob = c.seal(handle::SRK, &[2; 20], &[3; 20], None, &data).unwrap();
        prop_assert_eq!(c.unseal(handle::SRK, &[2; 20], &[3; 20], &blob).unwrap(), data);
    }
}

// ---- robustness: untrusted-input parsers never panic -----------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blob_decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        use vtpm_xen::tpm12::{KeyBlob, SealedBlob};
        use vtpm_xen::vtpm_stack::MigrationPackage;
        let _ = KeyBlob::decode(&bytes);
        let _ = SealedBlob::decode(&bytes);
        let _ = MigrationPackage::decode(&bytes);
        let _ = PcrSelection::decode(&bytes);
    }

    #[test]
    fn migration_package_roundtrips_and_rejects_trailing_bytes(
        state in proptest::collection::vec(any::<u8>(), 0..200),
        enc_session_key in proptest::collection::vec(any::<u8>(), 0..160),
        nonce_bytes in proptest::collection::vec(any::<u8>(), 8..9),
        ciphertext in proptest::collection::vec(any::<u8>(), 0..200),
        digest_bytes in proptest::collection::vec(any::<u8>(), 32..33),
        trailer in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        use vtpm_xen::vtpm_stack::MigrationPackage;
        let nonce: [u8; 8] = nonce_bytes.try_into().unwrap();
        let digest: [u8; 32] = digest_bytes.try_into().unwrap();
        let packages = [
            MigrationPackage::Clear(state),
            MigrationPackage::Sealed { enc_session_key, nonce, ciphertext, digest },
        ];
        for p in packages {
            let wire = p.encode();
            // A package is a complete wire object: it round-trips, and
            // any appended bytes make the whole blob malformed.
            prop_assert_eq!(MigrationPackage::decode(&wire).as_ref(), Ok(&p));
            let mut padded = wire;
            padded.extend_from_slice(&trailer);
            prop_assert!(MigrationPackage::decode(&padded).is_err());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tpm_execute_never_panics_on_fuzz(
        cmds in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..12),
        locality in 0u8..5,
    ) {
        use vtpm_xen::tpm12::Tpm;
        let mut tpm = Tpm::new(b"fuzz-tpm");
        // Start it so commands reach the dispatcher proper.
        tpm.execute(0, &[0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1]);
        for cmd in &cmds {
            let resp = tpm.execute(locality, cmd);
            // Every response parses and carries a code.
            let (_, _code, _) = vtpm_xen::tpm12::parse_response(&resp).unwrap();
        }
    }

    #[test]
    fn tpm_execute_never_panics_on_near_valid_fuzz(
        ord_idx in 0usize..24,
        tag_sel in 0u8..4,
        body in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // Valid header (tag, size, real ordinal) + arbitrary body: the
        // deepest parser paths.
        use vtpm_xen::tpm12::{ordinal, Tpm};
        const ORDS: [u32; 24] = [
            ordinal::OIAP, ordinal::OSAP, ordinal::TAKE_OWNERSHIP, ordinal::EXTEND,
            ordinal::PCR_READ, ordinal::QUOTE, ordinal::SEAL, ordinal::UNSEAL,
            ordinal::CREATE_WRAP_KEY, ordinal::GET_CAPABILITY, ordinal::LOAD_KEY2,
            ordinal::GET_RANDOM, ordinal::SIGN, ordinal::STARTUP, ordinal::FLUSH_SPECIFIC,
            ordinal::READ_PUBEK, ordinal::OWNER_CLEAR, ordinal::NV_DEFINE_SPACE,
            ordinal::NV_WRITE_VALUE, ordinal::NV_READ_VALUE, ordinal::PCR_RESET,
            ordinal::CREATE_COUNTER, ordinal::INCREMENT_COUNTER, ordinal::READ_COUNTER,
        ];
        let tag: u16 = match tag_sel {
            0 => 0x00C1,
            1 => 0x00C2,
            2 => 0x00C3,
            _ => 0x1234,
        };
        let mut cmd = Vec::with_capacity(10 + body.len());
        cmd.extend_from_slice(&tag.to_be_bytes());
        cmd.extend_from_slice(&((10 + body.len()) as u32).to_be_bytes());
        cmd.extend_from_slice(&ORDS[ord_idx].to_be_bytes());
        cmd.extend_from_slice(&body);
        let mut tpm = Tpm::new(b"fuzz-tpm2");
        tpm.execute(0, &[0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1]);
        let resp = tpm.execute(0, &cmd);
        let _ = vtpm_xen::tpm12::parse_response(&resp).unwrap();
    }
}

// ---- mirror hygiene under random mutation sequences ------------------------------

fn dump_dom0(hv: &vtpm_xen::xen::Hypervisor) -> Vec<u8> {
    let mut dump = Vec::new();
    for (_, _, page) in hv.dump_memory(DomainId::DOM0).unwrap() {
        dump.extend_from_slice(&page[..]);
    }
    dump
}

fn chaos_manager(
    mode: vtpm_xen::vtpm_stack::MirrorMode,
    seed: &[u8],
) -> (std::sync::Arc<vtpm_xen::xen::Hypervisor>, vtpm_xen::vtpm_stack::VtpmManager) {
    use vtpm_xen::vtpm_stack::{ManagerConfig, VtpmManager};
    use vtpm_xen::xen::Hypervisor;
    let hv = std::sync::Arc::new(Hypervisor::boot(4096, 8).unwrap());
    let mgr = VtpmManager::new(
        std::sync::Arc::clone(&hv),
        seed,
        ManagerConfig {
            mirror_mode: mode,
            vtpm_config: vtpm_xen::tpm12::TpmConfig { nv_budget: 32 * 1024, ..Default::default() },
            ..Default::default()
        },
    )
    .unwrap();
    (hv, mgr)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random extend / NV-provision / NV-release / reboot sequences, in
    /// Encrypted mode with the CTR nonce audit armed: no (page, counter)
    /// nonce pair is ever consumed twice, whatever the resize pattern.
    #[test]
    fn mirror_nonces_never_repeat_under_random_mutation(
        ops in proptest::collection::vec((0u8..4, any::<u8>(), 1u16..6000), 1..24),
    ) {
        use vtpm_xen::bench_workload::trace::apply_to_tpm;
        use vtpm_xen::bench_workload::TraceEvent;
        use vtpm_xen::vtpm_stack::MirrorMode;

        let (_hv, mgr) = chaos_manager(MirrorMode::Encrypted, b"prop-nonce");
        mgr.enable_nonce_audit();
        let id = mgr.create_instance().unwrap();
        mgr.with_instance(id, |i| apply_to_tpm(&mut i.tpm, &TraceEvent::Startup)).unwrap();
        for (kind, b, len) in &ops {
            let ev = match kind {
                0 => TraceEvent::Extend { pcr: (*b % 16) as u32, digest: [*b; 20] },
                1 => TraceEvent::ProvisionNv {
                    index: 0x0100 + (*b % 6) as u32,
                    fill: *b,
                    len: *len,
                },
                2 => TraceEvent::ReleaseNv { index: 0x0100 + (*b % 6) as u32 },
                _ => TraceEvent::Startup,
            };
            mgr.with_instance(id, |i| apply_to_tpm(&mut i.tpm, &ev)).unwrap();
        }
        prop_assert_eq!(mgr.nonce_reuses(), 0);
    }

    /// After an NV area is released (the serialized image shrinks), a
    /// full Dom0 dump contains no run of the area's fill bytes: dropped
    /// pages of prior image generations are scrubbed, not just unlinked.
    #[test]
    fn shrink_leaves_no_prior_generation_bytes_in_dump(
        fill in 1u8..=255,
        pages in 2usize..5,
        encrypted in any::<bool>(),
    ) {
        use vtpm_xen::bench_workload::trace::apply_to_tpm;
        use vtpm_xen::bench_workload::TraceEvent;
        use vtpm_xen::vtpm_stack::MirrorMode;

        let mode = if encrypted { MirrorMode::Encrypted } else { MirrorMode::Cleartext };
        let (hv, mgr) = chaos_manager(mode, b"prop-shrink");
        let id = mgr.create_instance().unwrap();
        mgr.with_instance(id, |i| apply_to_tpm(&mut i.tpm, &TraceEvent::Startup)).unwrap();
        mgr.with_instance(id, |i| {
            i.tpm.provision_nv(0x70, &vec![fill; pages * 4096]).unwrap();
        })
        .unwrap();
        mgr.with_instance(id, |i| i.tpm.release_nv(0x70).unwrap()).unwrap();

        let probe = vec![fill; 64];
        let dump = dump_dom0(&hv);
        prop_assert!(
            !dump.windows(probe.len()).any(|w| w == &probe[..]),
            "fill byte {fill:#x} from a released {pages}-page NV area survived in the dump"
        );
        // The shrunken image is still coherent.
        let image = mgr.resident_image(id).unwrap();
        prop_assert_eq!(image, mgr.export_instance_state(id).unwrap());
    }
}

// ---- migration package robustness ------------------------------------------------

/// A valid sealed package + its EK and plaintext, built once (RSA keygen
/// is too slow per-case).
fn sealed_fixture() -> &'static (
    vtpm_xen::vtpm_stack::MigrationPackage,
    vtpm_xen::crypto::RsaPrivateKey,
    Vec<u8>,
) {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(
        vtpm_xen::vtpm_stack::MigrationPackage,
        vtpm_xen::crypto::RsaPrivateKey,
        Vec<u8>,
    )> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = Drbg::new(b"prop-mig-ek");
        let ek = vtpm_xen::crypto::RsaPrivateKey::generate(1024, &mut rng);
        let state: Vec<u8> = (0..700u32).map(|i| (i * 31 % 251) as u8).collect();
        let pkg = vtpm_xen::vtpm_stack::migration::package_sealed(&state, &ek.public, &mut rng);
        (pkg, ek, state)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decoding + opening arbitrary mutations of a real sealed package
    /// never panics, and no single-byte corruption ever opens.
    #[test]
    fn mutated_sealed_packages_never_open(
        flip_at in any::<u16>(),
        flip_bit in 0u8..8,
        truncate_at in any::<u16>(),
    ) {
        use vtpm_xen::vtpm_stack::MigrationPackage;
        let (pkg, ek, state) = sealed_fixture();
        let good = pkg.encode();

        // Truncation: decode must reject or the opened result must be an
        // error — a short read can never produce the original state.
        let t = truncate_at as usize % good.len();
        if let Ok(p) = MigrationPackage::decode(&good[..t]) {
            prop_assert!(vtpm_xen::vtpm_stack::migration::open_package(&p, ek).is_err());
        }

        // Single-bit corruption anywhere in the package: every byte of a
        // sealed package is load-bearing, so opening must fail.
        let mut bad = good.clone();
        let at = flip_at as usize % bad.len();
        bad[at] ^= 1 << flip_bit;
        if let Ok(p) = MigrationPackage::decode(&bad) {
            match vtpm_xen::vtpm_stack::migration::open_package(&p, ek) {
                Ok(opened) => prop_assert_ne!(
                    opened, state.clone(),
                    "corrupted package opened to the original state"
                ),
                Err(_) => {}
            }
        }
    }
}

// ---- telemetry histogram merge ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Folding one log-linear histogram into another is indistinguishable
    /// from recording every value into a single histogram: count, sum and
    /// max combine losslessly, and every reported quantile stays within
    /// the structural <= 1/16 relative-error bound of the true quantile
    /// of the combined value multiset. This is the invariant the cluster
    /// roll-up (per-host histograms merged into one view) depends on.
    #[test]
    fn histogram_merge_conserves_mass_and_error_bound(
        xs in proptest::collection::vec(any::<u64>(), 0..300),
        ys in proptest::collection::vec(any::<u64>(), 0..300),
    ) {
        use vtpm_xen::telemetry::Histogram;

        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for &v in &xs {
            a.record(v);
            whole.record(v);
        }
        for &v in &ys {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        let merged = a.snapshot();

        // Merge == single-histogram recording, bit for bit.
        prop_assert_eq!(merged, whole.snapshot());

        // Mass conservation against ground truth (sum wraps like the
        // underlying atomic counter does).
        prop_assert_eq!(merged.count, (xs.len() + ys.len()) as u64);
        let true_sum = xs.iter().chain(&ys).fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(merged.sum, true_sum);
        prop_assert_eq!(merged.max, xs.iter().chain(&ys).copied().max().unwrap_or(0));

        // Each quantile of the merged histogram is within 1/16 relative
        // error of the true order statistic at the same rank (exact in
        // the linear range).
        let mut all: Vec<u64> = xs.iter().chain(&ys).copied().collect();
        all.sort_unstable();
        if !all.is_empty() {
            for (q, got) in [(0.50, merged.p50), (0.90, merged.p90),
                             (0.99, merged.p99), (0.999, merged.p999)] {
                let rank = ((q * all.len() as f64).ceil() as usize).max(1);
                let want = all[rank - 1];
                if want < 16 {
                    prop_assert_eq!(got, want, "q{} exact below linear max", q);
                } else {
                    let err = (got as f64 - want as f64).abs() / want as f64;
                    prop_assert!(
                        err <= 1.0 / 16.0 + 1e-9,
                        "q{}: got {}, want {}, relative error {}", q, got, want, err
                    );
                }
            }
        }
    }
}

// ---- DRBG determinism -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn drbg_chunking_invariant(seed in proptest::collection::vec(any::<u8>(), 0..32),
                               chunks in proptest::collection::vec(1usize..50, 1..8)) {
        let total: usize = chunks.iter().sum();
        let mut a = Drbg::new(&seed);
        let bulk = a.bytes(total);
        let mut b = Drbg::new(&seed);
        let mut pieced = Vec::new();
        for c in &chunks {
            pieced.extend(b.bytes(*c));
        }
        prop_assert_eq!(bulk, pieced);
    }
}
