//! Concurrency stress: the platform under simultaneous legitimate load,
//! attack traffic, and toolstack activity — the actual operating
//! conditions of a consolidation host.

use std::sync::Arc;

use vtpm_xen::prelude::*;
use vtpm_xen::vtpm_stack::{Envelope, ResponseEnvelope, ResponseStatus};

#[test]
fn workload_and_attacks_interleaved() {
    let sp = SecurePlatform::full(b"conc-mixed").unwrap();
    let guests: Vec<Guest> = (0..4).map(|i| sp.launch_guest(&format!("g{i}")).unwrap()).collect();
    let victim_instance = guests[0].instance;
    let victim_domain = guests[0].domain;

    // Legit guests hammer their vTPMs...
    let worker_handles: Vec<_> = guests
        .into_iter()
        .enumerate()
        .map(|(i, mut g)| {
            std::thread::spawn(move || {
                let mut tpm = g.client(format!("w{i}").as_bytes());
                tpm.startup_clear().unwrap();
                for r in 0..20u8 {
                    tpm.extend(0, &[r; 20]).unwrap();
                    tpm.get_random(8).unwrap();
                }
            })
        })
        .collect();

    // ...while an attacker floods forged envelopes at the victim.
    let manager = Arc::clone(&sp.platform.manager);
    let attacker = std::thread::spawn(move || {
        let mut denied = 0;
        for seq in 0..200u64 {
            let forged = Envelope {
                domain: victim_domain.0,
                instance: victim_instance,
                seq: 10_000 + seq,
                locality: 0,
                tag: None,
                command: vec![0x00, 0xC1, 0, 0, 0, 14, 0, 0, 0, 0x14, 0, 0, 0, 0],
            };
            let resp = manager.handle(victim_domain, &forged.encode());
            if ResponseEnvelope::decode(&resp).unwrap().status == ResponseStatus::Denied {
                denied += 1;
            }
        }
        denied
    });

    for h in worker_handles {
        h.join().unwrap();
    }
    let denied = attacker.join().unwrap();
    assert_eq!(denied, 200, "every forged envelope denied under load");
    // The legit traffic all succeeded: 4 guests * (1 + 40) commands.
    let (handled, denied_stat, _) = sp.platform.manager.stats.snapshot();
    assert_eq!(handled, 4 * 41);
    assert_eq!(denied_stat, 200);
    // Audit chain intact after the concurrent barrage.
    let audit = sp.hook.audit.entries();
    assert!(vtpm_xen::access_control::AuditLog::verify(&audit));

    // The telemetry registry observed the same world: conservation over
    // outcomes, histograms consistent with the manager's own counters,
    // and every audit entry joinable back to a span via its request id.
    let snap = sp.platform.manager.metrics_snapshot().expect("telemetry on by default");
    assert_eq!(snap.in_flight, 0, "quiescent manager has no open spans");
    assert_eq!(snap.allowed + snap.denied + snap.malformed, snap.finished);
    assert_eq!(snap.stage_exec.count, handled, "one execute-stage sample per handled command");
    assert_eq!(snap.denied, denied_stat);
    assert_eq!(snap.stage_ac.count, snap.allowed + snap.denied);
    assert_eq!(snap.total.count, snap.finished);
    for e in &audit {
        assert!(e.request_id > 0, "audit entry without a span join key");
        assert!(e.request_id <= snap.begun, "audit entry cites an unminted request id");
    }
}

/// N concurrent guest domains against one manager with a deliberately
/// tiny span ring: the decision counters must conserve exactly, the
/// stage histograms must agree with `ManagerStats`, and the overflow
/// drop count must be exact (kept + dropped == finished), not an
/// estimate.
#[test]
fn telemetry_conserves_and_counts_drops_exactly() {
    use vtpm_xen::access_control::ImprovedHook;
    use vtpm_xen::vtpm_stack::Envelope;

    const GUESTS: u32 = 4;
    const EXTENDS: u64 = 100;
    const FORGED: u64 = 150;
    const GARBAGE: u64 = 50;

    let hv = Arc::new(Hypervisor::boot(4096, 16).unwrap());
    let mgr = Arc::new(
        VtpmManager::new(
            Arc::clone(&hv),
            b"conc-telemetry",
            ManagerConfig {
                charge_virtual_time: false,
                // 16 stripes x 4 slots: far fewer than the spans this
                // test finishes, so the ring must overflow.
                telemetry_span_capacity: 4,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let hook = Arc::new(ImprovedHook::new(Arc::clone(&hv), b"conc-telemetry", AcConfig::default()));
    let keyed: Vec<(u32, u32, Vec<u8>)> = (1..=GUESTS)
        .map(|dom| {
            let inst = mgr.create_instance().unwrap();
            (dom, inst, hook.credentials.provision(dom, inst).to_vec())
        })
        .collect();
    mgr.set_hook(Arc::clone(&hook) as _);

    let cmd = |ordinal: u32, body: &[u8]| {
        let mut c = Vec::new();
        c.extend_from_slice(&0x00C1u16.to_be_bytes());
        c.extend_from_slice(&((10 + body.len()) as u32).to_be_bytes());
        c.extend_from_slice(&ordinal.to_be_bytes());
        c.extend_from_slice(body);
        c
    };
    let extend_body = {
        let mut b = Vec::new();
        b.extend_from_slice(&3u32.to_be_bytes());
        b.extend_from_slice(&[0x5Au8; 20]);
        b
    };

    let mut handles = Vec::new();
    for (dom, inst, key) in keyed.clone() {
        let mgr = Arc::clone(&mgr);
        let startup = cmd(ordinal::STARTUP, &1u16.to_be_bytes());
        let extend = cmd(ordinal::EXTEND, &extend_body);
        handles.push(std::thread::spawn(move || {
            for seq in 1..=(1 + EXTENDS) {
                let command = if seq == 1 { startup.clone() } else { extend.clone() };
                let env = Envelope { domain: dom, instance: inst, seq, locality: 0, tag: None, command }
                    .sign(&key);
                mgr.handle(DomainId(dom), &env.encode());
            }
        }));
    }
    // An attacker floods unsigned envelopes (denied: bad-tag)...
    {
        let mgr = Arc::clone(&mgr);
        let (dom, inst, _) = keyed[0].clone();
        let extend = cmd(ordinal::EXTEND, &extend_body);
        handles.push(std::thread::spawn(move || {
            for seq in 0..FORGED {
                let env = Envelope {
                    domain: dom,
                    instance: inst,
                    seq: 1_000_000 + seq,
                    locality: 0,
                    tag: None,
                    command: extend.clone(),
                };
                mgr.handle(DomainId(dom), &env.encode());
            }
        }));
    }
    // ...while garbage bytes exercise the malformed path.
    {
        let mgr = Arc::clone(&mgr);
        handles.push(std::thread::spawn(move || {
            for _ in 0..GARBAGE {
                mgr.handle(DomainId(1), &[0xFF; 16]);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let total = GUESTS as u64 * (1 + EXTENDS) + FORGED + GARBAGE;
    let snap = mgr.metrics_snapshot().expect("telemetry enabled");
    assert_eq!(snap.begun, total);
    assert_eq!(snap.finished, total);
    assert_eq!(snap.in_flight, 0);
    // Exact conservation over outcomes.
    assert_eq!(snap.allowed, GUESTS as u64 * (1 + EXTENDS));
    assert_eq!(snap.denied, FORGED);
    assert_eq!(snap.malformed, GARBAGE);
    assert_eq!(snap.allowed + snap.denied + snap.malformed, snap.finished);
    assert_eq!(snap.deny_reasons[1], ("bad-tag", FORGED));
    // Histograms agree with the manager's own counters.
    let stats = mgr.stats_snapshot();
    assert_eq!(snap.stage_exec.count, stats.handled);
    assert_eq!(snap.stage_mirror.count, stats.handled);
    assert_eq!(snap.stage_ac.count, snap.allowed + snap.denied);
    assert_eq!(snap.total.count, snap.finished);
    assert_eq!(snap.denied, stats.denied);
    // Overflow accounting is exact: every finished span was either kept
    // in the ring or counted as dropped, nothing in between.
    let kept = mgr.telemetry().expect("enabled").drain_spans().len() as u64;
    assert!(snap.dropped_events > 0, "tiny ring must overflow under this load");
    assert_eq!(kept + snap.dropped_events, snap.finished);
}

/// A sampler thread reads `stats_snapshot()` continuously while mixed
/// traffic (ok, denied, error, throttled) hammers the manager: every
/// snapshot must satisfy handled + denied + errors + throttled ==
/// finished. Before the seqlock, independent Relaxed loads let a
/// mid-command sample violate that conservation.
#[test]
fn stats_snapshots_conserve_while_mixed_traffic_runs() {
    use vtpm_xen::vtpm_stack::{AdmissionConfig, Envelope};

    let hv = Arc::new(Hypervisor::boot(4096, 16).unwrap());
    let mgr = Arc::new(
        VtpmManager::new(
            Arc::clone(&hv),
            b"conc-conserve",
            ManagerConfig {
                charge_virtual_time: false,
                admission: AdmissionConfig { enabled: true, ..Default::default() },
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let inst = mgr.create_instance().unwrap();
    let startup = vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1];
    mgr.handle(
        DomainId(1),
        &Envelope { domain: 1, instance: inst, seq: 1, locality: 0, tag: None, command: startup }
            .encode(),
    );

    let pcr_read = {
        let mut c = Vec::new();
        c.extend_from_slice(&0x00C1u16.to_be_bytes());
        c.extend_from_slice(&14u32.to_be_bytes());
        c.extend_from_slice(&ordinal::PCR_READ.to_be_bytes());
        c.extend_from_slice(&0u32.to_be_bytes());
        c
    };

    const WORKERS: u64 = 3;
    const REQUESTS: u64 = 300;
    let mut handles = Vec::new();
    for t in 0..WORKERS {
        let mgr = Arc::clone(&mgr);
        let cmd = pcr_read.clone();
        handles.push(std::thread::spawn(move || {
            for s in 0..REQUESTS {
                // Ok traffic, NoInstance errors, and malformed garbage
                // interleave so every outcome counter is in motion.
                match s % 3 {
                    0 => {
                        mgr.handle(DomainId(1), &[0xEE; 11]);
                    }
                    1 => {
                        let env = Envelope {
                            domain: 1,
                            instance: 9999,
                            seq: 10_000 * t + s,
                            locality: 0,
                            tag: None,
                            command: cmd.clone(),
                        };
                        mgr.handle(DomainId(1), &env.encode());
                    }
                    _ => {
                        let env = Envelope {
                            domain: 1,
                            instance: inst,
                            seq: 10_000 * t + s,
                            locality: 0,
                            tag: None,
                            command: cmd.clone(),
                        };
                        mgr.handle(DomainId(1), &env.encode());
                    }
                }
            }
        }));
    }
    // Throttled exits too: latch domain 5 and bounce requests off it.
    {
        let mgr = Arc::clone(&mgr);
        let cmd = pcr_read.clone();
        handles.push(std::thread::spawn(move || {
            mgr.admission().throttle(5);
            for s in 0..REQUESTS {
                let env = Envelope {
                    domain: 5,
                    instance: inst,
                    seq: 50_000 + s,
                    locality: 0,
                    tag: None,
                    command: cmd.clone(),
                };
                mgr.handle(DomainId(5), &env.encode());
            }
        }));
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let mgr = Arc::clone(&mgr);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut samples = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let s = mgr.stats_snapshot();
                assert_eq!(
                    s.handled + s.denied + s.errors + s.throttled,
                    s.finished,
                    "mid-traffic snapshot violated outcome conservation"
                );
                samples += 1;
            }
            samples
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    assert!(sampler.join().unwrap() > 0);

    let s = mgr.stats_snapshot();
    assert_eq!(s.finished, 1 + (WORKERS + 1) * REQUESTS);
    assert!(s.throttled > 0, "the throttled domain must have been refused at ingress");
    assert_eq!(s.handled + s.denied + s.errors + s.throttled, s.finished);
}

#[test]
fn xenstore_transactions_race_correctly() {
    let hv = Arc::new(Hypervisor::boot(256, 8).unwrap());
    hv.xs_write(DomainId::DOM0, "/shared/counter", b"0").unwrap();

    // N threads each perform M read-modify-write transactions with the
    // EAGAIN retry loop; the final counter must equal N*M exactly.
    const THREADS: usize = 4;
    const INCREMENTS: usize = 25;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let hv = Arc::clone(&hv);
            std::thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    loop {
                        let txn = hv.xs_txn_begin(DomainId::DOM0).unwrap();
                        let cur: u64 = String::from_utf8(
                            hv.xs_txn_read(txn, "/shared/counter").unwrap(),
                        )
                        .unwrap()
                        .parse()
                        .unwrap();
                        hv.xs_txn_write(txn, "/shared/counter", (cur + 1).to_string().as_bytes())
                            .unwrap();
                        if hv.xs_txn_commit(txn).unwrap() {
                            break; // committed
                        }
                        // EAGAIN: retry
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let final_value: u64 = hv
        .xs_read_string(DomainId::DOM0, "/shared/counter")
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(final_value, (THREADS * INCREMENTS) as u64);
}

#[test]
fn launches_and_destroys_race_with_traffic() {
    let p = Platform::baseline(b"conc-churn").unwrap();
    // A stable guest runs traffic while other guests churn.
    let mut stable = p.launch_guest("stable").unwrap();
    let p = Arc::new(p);
    let churn = {
        let p = Arc::clone(&p);
        std::thread::spawn(move || {
            for round in 0..5 {
                let g = p.launch_guest(&format!("churn{round}")).unwrap();
                let mut tpm_client = vtpm_xen::tpm12::TpmClient::new(g.front, b"churn");
                tpm_client.startup_clear().unwrap();
                // Destroy the instance out from under future traffic.
                p.manager.destroy_instance(g.instance).unwrap();
            }
        })
    };
    let mut tpm = stable.client(b"stable");
    tpm.startup_clear().unwrap();
    for r in 0..30u8 {
        tpm.extend(1, &[r; 20]).unwrap();
    }
    churn.join().unwrap();
    // The stable guest never saw interference.
    assert_ne!(tpm.pcr_read(1).unwrap(), [0; 20]);
}
