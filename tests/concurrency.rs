//! Concurrency stress: the platform under simultaneous legitimate load,
//! attack traffic, and toolstack activity — the actual operating
//! conditions of a consolidation host.

use std::sync::Arc;

use vtpm_xen::prelude::*;
use vtpm_xen::vtpm_stack::{Envelope, ResponseEnvelope, ResponseStatus};

#[test]
fn workload_and_attacks_interleaved() {
    let sp = SecurePlatform::full(b"conc-mixed").unwrap();
    let guests: Vec<Guest> = (0..4).map(|i| sp.launch_guest(&format!("g{i}")).unwrap()).collect();
    let victim_instance = guests[0].instance;
    let victim_domain = guests[0].domain;

    // Legit guests hammer their vTPMs...
    let worker_handles: Vec<_> = guests
        .into_iter()
        .enumerate()
        .map(|(i, mut g)| {
            std::thread::spawn(move || {
                let mut tpm = g.client(format!("w{i}").as_bytes());
                tpm.startup_clear().unwrap();
                for r in 0..20u8 {
                    tpm.extend(0, &[r; 20]).unwrap();
                    tpm.get_random(8).unwrap();
                }
            })
        })
        .collect();

    // ...while an attacker floods forged envelopes at the victim.
    let manager = Arc::clone(&sp.platform.manager);
    let attacker = std::thread::spawn(move || {
        let mut denied = 0;
        for seq in 0..200u64 {
            let forged = Envelope {
                domain: victim_domain.0,
                instance: victim_instance,
                seq: 10_000 + seq,
                locality: 0,
                tag: None,
                command: vec![0x00, 0xC1, 0, 0, 0, 14, 0, 0, 0, 0x14, 0, 0, 0, 0],
            };
            let resp = manager.handle(victim_domain, &forged.encode());
            if ResponseEnvelope::decode(&resp).unwrap().status == ResponseStatus::Denied {
                denied += 1;
            }
        }
        denied
    });

    for h in worker_handles {
        h.join().unwrap();
    }
    let denied = attacker.join().unwrap();
    assert_eq!(denied, 200, "every forged envelope denied under load");
    // The legit traffic all succeeded: 4 guests * (1 + 40) commands.
    let (handled, denied_stat, _) = sp.platform.manager.stats.snapshot();
    assert_eq!(handled, 4 * 41);
    assert_eq!(denied_stat, 200);
    // Audit chain intact after the concurrent barrage.
    assert!(vtpm_xen::access_control::AuditLog::verify(&sp.hook.audit.entries()));
}

#[test]
fn xenstore_transactions_race_correctly() {
    let hv = Arc::new(Hypervisor::boot(256, 8).unwrap());
    hv.xs_write(DomainId::DOM0, "/shared/counter", b"0").unwrap();

    // N threads each perform M read-modify-write transactions with the
    // EAGAIN retry loop; the final counter must equal N*M exactly.
    const THREADS: usize = 4;
    const INCREMENTS: usize = 25;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let hv = Arc::clone(&hv);
            std::thread::spawn(move || {
                for _ in 0..INCREMENTS {
                    loop {
                        let txn = hv.xs_txn_begin(DomainId::DOM0).unwrap();
                        let cur: u64 = String::from_utf8(
                            hv.xs_txn_read(txn, "/shared/counter").unwrap(),
                        )
                        .unwrap()
                        .parse()
                        .unwrap();
                        hv.xs_txn_write(txn, "/shared/counter", (cur + 1).to_string().as_bytes())
                            .unwrap();
                        if hv.xs_txn_commit(txn).unwrap() {
                            break; // committed
                        }
                        // EAGAIN: retry
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let final_value: u64 = hv
        .xs_read_string(DomainId::DOM0, "/shared/counter")
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(final_value, (THREADS * INCREMENTS) as u64);
}

#[test]
fn launches_and_destroys_race_with_traffic() {
    let p = Platform::baseline(b"conc-churn").unwrap();
    // A stable guest runs traffic while other guests churn.
    let mut stable = p.launch_guest("stable").unwrap();
    let p = Arc::new(p);
    let churn = {
        let p = Arc::clone(&p);
        std::thread::spawn(move || {
            for round in 0..5 {
                let g = p.launch_guest(&format!("churn{round}")).unwrap();
                let mut tpm_client = vtpm_xen::tpm12::TpmClient::new(g.front, b"churn");
                tpm_client.startup_clear().unwrap();
                // Destroy the instance out from under future traffic.
                p.manager.destroy_instance(g.instance).unwrap();
            }
        })
    };
    let mut tpm = stable.client(b"stable");
    tpm.startup_clear().unwrap();
    for r in 0..30u8 {
        tpm.extend(1, &[r; 20]).unwrap();
    }
    churn.join().unwrap();
    // The stable guest never saw interference.
    assert_ne!(tpm.pcr_read(1).unwrap(), [0; 20]);
}
