//! Crash/recovery correctness of the mirror pipeline.
//!
//! The mirror commits an update as: dirty data pages → shadow slots,
//! then one metadata page write (the atomic commit point), then
//! post-commit scrubs. A manager crash between *any* two of those page
//! writes must be recoverable from the Dom0 frames alone, and the
//! recovered TPM must equal exactly the pre-command or the post-command
//! state — nothing in between, nothing else.
//!
//! The k-of-n matrix below enumerates every crash point: a fault-free
//! twin run counts the command's Dom0 page writes (n), then one fresh
//! platform per k ∈ [0, n] crashes after exactly k writes and recovers.

use std::sync::Arc;

use vtpm_xen::bench_workload::TpmOracle;
use vtpm_xen::tpm12::TpmConfig;
use vtpm_xen::vtpm_stack::{ManagerConfig, MirrorMode, Platform, VtpmManager};
use vtpm_xen::xen::{DomainId, Hypervisor};

fn cfg() -> ManagerConfig {
    ManagerConfig {
        mirror_mode: MirrorMode::Encrypted,
        vtpm_config: TpmConfig { nv_budget: 32 * 1024, ..Default::default() },
        ..Default::default()
    }
}

/// Deterministically rebuild the same pre-command world: a started
/// instance whose state spans several mirror pages.
fn build_world(seed: &[u8]) -> (Arc<Hypervisor>, VtpmManager, u32) {
    use vtpm_xen::bench_workload::trace::apply_to_tpm;
    use vtpm_xen::bench_workload::TraceEvent;
    let hv = Arc::new(Hypervisor::boot(4096, 8).unwrap());
    let mgr = VtpmManager::new(Arc::clone(&hv), seed, cfg()).unwrap();
    let id = mgr.create_instance().unwrap();
    mgr.with_instance(id, |i| {
        apply_to_tpm(&mut i.tpm, &TraceEvent::Startup);
        i.tpm.provision_nv(0x50, &vec![0xB7; 10 * 1024]).unwrap();
    })
    .unwrap();
    (hv, mgr, id)
}

/// The command under test: an NV provision that grows the image across
/// page boundaries — several dirty data pages plus the meta commit plus
/// post-commit scrubs, i.e. the longest write sequence the mirror does.
fn target_command(mgr: &VtpmManager, id: u32) {
    mgr.with_instance(id, |i| {
        let _ = i.tpm.provision_nv(0x51, &vec![0xC9; 6 * 1024]);
        let _ = i.tpm.pcrs_mut().extend(4, &[0x5C; 20]);
    })
    .unwrap();
}

#[test]
fn crash_matrix_every_k_recovers_to_pre_or_post() {
    const SEED: &[u8] = b"crash-matrix";

    // Fault-free twin run: count the command's Dom0 page writes (n) and
    // capture the two legal outcome states + oracles.
    let (hv, mgr, id) = build_world(SEED);
    let pre_state = mgr.export_instance_state(id).unwrap();
    let pre_oracle = mgr.with_instance(id, |i| TpmOracle::capture(&i.tpm)).unwrap();
    let writes_before = hv.dom0_page_writes();
    target_command(&mgr, id);
    let n = hv.dom0_page_writes() - writes_before;
    let post_state = mgr.export_instance_state(id).unwrap();
    let post_oracle = mgr.with_instance(id, |i| TpmOracle::capture(&i.tpm)).unwrap();
    assert!(n >= 3, "target command must span several page writes (got {n})");
    assert_ne!(pre_state, post_state);
    drop(mgr);

    let (mut saw_pre, mut saw_post) = (0u64, 0u64);
    for k in 0..=n {
        let (hv, mgr, id2) = build_world(SEED);
        assert_eq!(id2, id, "world rebuild must be deterministic");
        assert_eq!(mgr.export_instance_state(id).unwrap(), pre_state);

        hv.inject_write_crash(DomainId::DOM0, k);
        target_command(&mgr, id);
        hv.clear_faults();
        drop(mgr);

        let (rec, report) = VtpmManager::recover(Arc::clone(&hv), SEED, cfg()).unwrap();
        assert_eq!(report.resumed, vec![id], "k={k}");
        assert_eq!(report.failed, Vec::<u32>::new(), "k={k}");

        let got = rec.export_instance_state(id).unwrap();
        if got == pre_state {
            saw_pre += 1;
            assert_eq!(
                rec.with_instance(id, |i| pre_oracle.diff(&i.tpm)).unwrap(),
                Vec::<String>::new(),
                "k={k}: recovered state equals pre bytes but diverges from pre oracle"
            );
        } else if got == post_state {
            saw_post += 1;
            assert_eq!(
                rec.with_instance(id, |i| post_oracle.diff(&i.tpm)).unwrap(),
                Vec::<String>::new(),
                "k={k}: recovered state equals post bytes but diverges from post oracle"
            );
        } else {
            panic!("k={k}/{n}: recovered state is neither pre- nor post-command");
        }

        // The recovered manager keeps working: the generation burn means
        // further mutations never reuse a crash-consumed CTR nonce.
        rec.enable_nonce_audit();
        rec.with_instance(id, |i| i.tpm.pcrs_mut().extend(9, &[k as u8; 20]).unwrap())
            .unwrap();
        assert_eq!(rec.nonce_reuses(), 0, "k={k}");
        assert_eq!(
            rec.resident_image(id).unwrap(),
            rec.export_instance_state(id).unwrap(),
            "k={k}: mirror incoherent after post-recovery mutation"
        );
    }

    // k=0 dies before the first write (old image intact); k=n never
    // trips (update commits). Both legal outcomes must appear.
    assert!(saw_pre >= 1, "no crash point preserved the pre-state");
    assert!(saw_post >= 1, "no crash point reached the post-state");
    assert_eq!(saw_pre + saw_post, n + 1);
}

#[test]
fn group_commit_crash_matrix_recovers_each_instance_to_pre_or_post_batch() {
    // Group-commit variant of the k-of-n matrix: three instances stage
    // dirty pages under a batched flush policy, then one explicit flush
    // commits them in ascending-id order. A crash after any k of the
    // batch's page writes must recover every instance to exactly its
    // pre- or post-batch state, and the committed set must be an
    // ascending-id prefix of the batch (the flush stops on the first
    // failed meta write, so no instance can commit before a lower id).
    const SEED: &[u8] = b"group-commit-matrix";
    use vtpm_xen::bench_workload::trace::apply_to_tpm;
    use vtpm_xen::bench_workload::TraceEvent;
    use vtpm_xen::vtpm_stack::FlushPolicy;

    fn gc_cfg() -> ManagerConfig {
        ManagerConfig {
            mirror_mode: MirrorMode::Encrypted,
            vtpm_config: TpmConfig { nv_budget: 32 * 1024, ..Default::default() },
            flush_policy: FlushPolicy::batched(0, 64, 0),
            ..Default::default()
        }
    }

    fn build_world(seed: &[u8]) -> (Arc<Hypervisor>, VtpmManager, Vec<u32>) {
        let hv = Arc::new(Hypervisor::boot(8192, 8).unwrap());
        let mgr = VtpmManager::new(Arc::clone(&hv), seed, gc_cfg()).unwrap();
        let ids: Vec<u32> = (0..3).map(|_| mgr.create_instance().unwrap()).collect();
        for (j, &id) in ids.iter().enumerate() {
            mgr.with_instance(id, |i| {
                apply_to_tpm(&mut i.tpm, &TraceEvent::Startup);
                i.tpm.provision_nv(0x40 + j as u32, &vec![0xA0 + j as u8; 4 * 1024]).unwrap();
            })
            .unwrap();
        }
        mgr.flush_mirror().unwrap();
        assert_eq!(mgr.pending_mirror_instances(), Vec::<u32>::new());
        (hv, mgr, ids)
    }

    // The batch under test: one distinct mutation per instance (all
    // staged), then the explicit flush that commits the whole batch.
    fn run_batch(mgr: &VtpmManager, ids: &[u32]) {
        for (j, &id) in ids.iter().enumerate() {
            mgr.with_instance(id, |i| {
                let _ = i.tpm.provision_nv(0x60 + j as u32, &vec![0xC0 + j as u8; 3 * 1024]);
                let _ = i.tpm.pcrs_mut().extend(j, &[0x70 + j as u8; 20]);
            })
            .unwrap();
        }
        let _ = mgr.flush_mirror();
    }

    // Fault-free twin run: count the batch's Dom0 page writes and
    // capture the legal per-instance outcome states.
    let (hv, mgr, ids) = build_world(SEED);
    let pre: Vec<Vec<u8>> =
        ids.iter().map(|&id| mgr.export_instance_state(id).unwrap()).collect();
    let pre_oracle: Vec<TpmOracle> = ids
        .iter()
        .map(|&id| mgr.with_instance(id, |i| TpmOracle::capture(&i.tpm)).unwrap())
        .collect();
    let writes_before = hv.dom0_page_writes();
    run_batch(&mgr, &ids);
    let n = hv.dom0_page_writes() - writes_before;
    let post: Vec<Vec<u8>> =
        ids.iter().map(|&id| mgr.export_instance_state(id).unwrap()).collect();
    let post_oracle: Vec<TpmOracle> = ids
        .iter()
        .map(|&id| mgr.with_instance(id, |i| TpmOracle::capture(&i.tpm)).unwrap())
        .collect();
    assert!(n >= 6, "a three-instance batch must span many page writes (got {n})");
    for j in 0..ids.len() {
        assert_ne!(pre[j], post[j], "instance {j} must change in the batch");
    }
    drop(mgr);

    let (mut saw_all_pre, mut saw_all_post) = (0u64, 0u64);
    for k in 0..=n {
        let (hv, mgr, ids2) = build_world(SEED);
        assert_eq!(ids2, ids, "world rebuild must be deterministic");

        hv.inject_write_crash(DomainId::DOM0, k);
        run_batch(&mgr, &ids);
        hv.clear_faults();
        drop(mgr);

        let (rec, report) = VtpmManager::recover(Arc::clone(&hv), SEED, gc_cfg()).unwrap();
        assert_eq!(report.resumed, ids, "k={k}");
        assert_eq!(report.failed, Vec::<u32>::new(), "k={k}");

        let mut committed = Vec::new();
        for (j, &id) in ids.iter().enumerate() {
            let got = rec.export_instance_state(id).unwrap();
            if got == pre[j] {
                committed.push(false);
                assert_eq!(
                    rec.with_instance(id, |i| pre_oracle[j].diff(&i.tpm)).unwrap(),
                    Vec::<String>::new(),
                    "k={k} instance {j}: pre bytes but pre-oracle divergence"
                );
            } else if got == post[j] {
                committed.push(true);
                assert_eq!(
                    rec.with_instance(id, |i| post_oracle[j].diff(&i.tpm)).unwrap(),
                    Vec::<String>::new(),
                    "k={k} instance {j}: post bytes but post-oracle divergence"
                );
            } else {
                panic!("k={k}/{n} instance {j}: state is neither pre- nor post-batch");
            }
        }
        // Ascending-id commit order: the committed set is a prefix.
        assert!(
            committed.windows(2).all(|w| w[0] || !w[1]),
            "k={k}: non-prefix commit pattern {committed:?} — flush order violated"
        );
        if committed.iter().all(|&c| !c) {
            saw_all_pre += 1;
        }
        if committed.iter().all(|&c| c) {
            saw_all_post += 1;
        }

        // The recovered manager keeps its nonce-burn discipline: fresh
        // mutations (staged + flushed) never reuse a consumed nonce.
        rec.enable_nonce_audit();
        for &id in &ids {
            rec.with_instance(id, |i| i.tpm.pcrs_mut().extend(9, &[k as u8; 20]).unwrap())
                .unwrap();
        }
        rec.flush_mirror().unwrap();
        assert_eq!(rec.nonce_reuses(), 0, "k={k}");
        for &id in &ids {
            assert_eq!(
                rec.resident_image(id).unwrap(),
                rec.export_instance_state(id).unwrap(),
                "k={k}: mirror incoherent after post-recovery batch"
            );
        }
    }
    assert!(saw_all_pre >= 1, "no crash point preserved the whole pre-batch");
    assert!(saw_all_post >= 1, "no crash point committed the whole batch");
}

#[test]
fn crash_during_destroy_then_recovery_keeps_instance() {
    // A scrub crash during destroy_instance must not lose the instance:
    // the failed destroy leaves it routed, and a subsequent manager
    // crash + recovery still resumes it from its committed region.
    const SEED: &[u8] = b"destroy-crash";
    let (hv, mgr, id) = build_world(SEED);
    let state = mgr.export_instance_state(id).unwrap();
    hv.inject_write_crash(DomainId::DOM0, 0);
    assert!(mgr.destroy_instance(id).is_err());
    hv.clear_faults();
    drop(mgr);
    let (rec, report) = VtpmManager::recover(Arc::clone(&hv), SEED, cfg()).unwrap();
    assert_eq!(report.resumed, vec![id]);
    assert_eq!(rec.export_instance_state(id).unwrap(), state);
}

#[test]
fn export_crash_before_destroy_leaves_source_usable() {
    // Migration source side: a crash between building the sealed package
    // and destroying the source instance must leave the source instance
    // intact and serving — the package is simply not handed out.
    let platform = Platform::improved(b"mig-crash-host").unwrap();
    let guest = platform.launch_guest("mig-src").unwrap();
    let id = guest.instance;
    let state = platform.manager.export_instance_state(id).unwrap();
    let dst_ek = platform.hw_ek_public();

    platform.hv.inject_write_crash(DomainId::DOM0, 0);
    assert!(
        platform.export_instance(id, true, Some(&dst_ek)).is_none(),
        "export must fail while the scrub cannot complete"
    );
    platform.hv.clear_faults();

    // Source untouched and still mutable.
    assert_eq!(platform.manager.export_instance_state(id).unwrap(), state);
    platform
        .manager
        .with_instance(id, |i| i.tpm.pcrs_mut().extend(2, &[0x21; 20]).unwrap())
        .unwrap();

    // With the fault gone the export completes and the source is gone.
    assert!(platform.export_instance(id, true, Some(&dst_ek)).is_some());
    assert!(platform.manager.export_instance_state(id).is_none());
    platform.shutdown();
}

#[test]
fn persist_truncation_sweep_never_panics() {
    // Every strict prefix of a valid encrypted database must be rejected
    // with a typed error — no panic, no partial restore.
    use vtpm_xen::tpm12::{DirectTransport, Tpm, TpmClient};
    use vtpm_xen::vtpm_stack::persist::{persist, restore};

    let (_hv, mgr, _id) = build_world(b"persist-sweep");
    let mut hw = Tpm::new(b"sweep-hw");
    let mut c = TpmClient::new(DirectTransport { tpm: &mut hw, locality: 0 }, b"boot");
    c.startup_clear().unwrap();
    c.take_ownership(&[1; 20], &[2; 20]).unwrap();
    let db = persist(&mgr, &mut hw, &[2; 20]).unwrap();

    // Dense sweep over the header + strided sweep over the body.
    let lens: Vec<usize> = (0..db.len().min(160))
        .chain((160..db.len()).step_by(41))
        .chain(db.len().saturating_sub(48)..db.len())
        .collect();
    for len in lens {
        let hv = Arc::new(Hypervisor::boot(1024, 8).unwrap());
        let r = restore(hv, b"persist-sweep", ManagerConfig::default(), &db[..len], &mut hw, &[2; 20]);
        assert!(r.is_err(), "truncated db (len {len}/{}) must be rejected", db.len());
    }
}

#[test]
fn chaos_harness_smoke() {
    // One seeded chaos scenario end to end, replayed for determinism —
    // the full harness lives in crates/harness; this keeps a sentinel in
    // the root test suite.
    use vtpm_harness::{run_chaos, ChaosConfig};
    let cfg = ChaosConfig { events: 32, faults: 3, ..ChaosConfig::default() };
    let a = run_chaos(b"root-smoke", &cfg).unwrap();
    let b = run_chaos(b"root-smoke", &cfg).unwrap();
    assert_eq!(a, b, "chaos replay must be deterministic");
    assert_eq!(a.divergences, Vec::<String>::new());
    assert_eq!(a.nonce_reuses, 0);
}
