//! The paper's security claims as integration tests: every attack in the
//! suite succeeds against the stock system and is blocked by the
//! improved one, and the mechanisms compose correctly.

use vtpm_xen::attack::{self, AttackMatrix, MemoryDump};
use vtpm_xen::prelude::*;
use vtpm_xen::vtpm_stack::{Envelope, ResponseEnvelope, ResponseStatus};

fn warm(guest: &mut Guest) {
    let mut tpm = guest.client(b"warm");
    tpm.startup_clear().unwrap();
    tpm.take_ownership(&[1; 20], &[2; 20]).unwrap();
    tpm.seal(handle::SRK, &[2; 20], &[3; 20], None, b"victim secret").unwrap();
}

#[test]
fn headline_claim_baseline_vulnerable_improved_not() {
    let base = Platform::baseline(b"sec-head-base").unwrap();
    let mut victim = base.launch_guest("victim").unwrap();
    let mut attacker = base.launch_guest("attacker").unwrap();
    warm(&mut victim);
    {
        let mut c = attacker.client(b"a");
        c.startup_clear().unwrap();
    }
    let m = AttackMatrix::run("baseline", &base, &victim, &mut attacker);
    assert_eq!(m.successes(), m.outcomes.len(), "baseline fully vulnerable: {m:#?}");

    let sp = SecurePlatform::full(b"sec-head-imp").unwrap();
    let mut victim = sp.launch_guest("victim").unwrap();
    let mut attacker = sp.launch_guest("attacker").unwrap();
    warm(&mut victim);
    {
        let mut c = attacker.client(b"a");
        c.startup_clear().unwrap();
    }
    let m = AttackMatrix::run("improved", &sp.platform, &victim, &mut attacker);
    assert_eq!(m.successes(), 0, "improved fully protected: {m:#?}");
}

/// Plant-and-scan with real key material: the victim vTPM's serialized
/// EK prime region (offset 50, after magic+flags+ownerAuth+tpmProof).
fn ek_material_dumpable(platform: &Platform, victim: &mut Guest) -> bool {
    warm(victim);
    let state = platform.manager.export_instance_state(victim.instance).unwrap();
    let probe = &state[50..114];
    let dump = MemoryDump::capture(platform.manager.hypervisor(), DomainId::DOM0).unwrap();
    dump.contains_any(&[probe])
}

#[test]
fn dump_finds_ek_material_only_on_baseline() {
    let base = Platform::baseline(b"sec-dump-base").unwrap();
    let mut victim = base.launch_guest("victim").unwrap();
    assert!(ek_material_dumpable(&base, &mut victim), "baseline leaks EK material");
    let sp = SecurePlatform::full(b"sec-dump-imp").unwrap();
    let mut victim = sp.launch_guest("victim").unwrap();
    assert!(!ek_material_dumpable(&sp.platform, &mut victim), "improved hides EK material");
}

#[test]
fn forged_envelope_rejected_even_with_stolen_seq() {
    let sp = SecurePlatform::full(b"sec-forge").unwrap();
    let mut victim = sp.launch_guest("victim").unwrap();
    warm(&mut victim);
    // The attacker knows everything except the credential: domain,
    // instance, next sequence number, valid command bytes.
    let forged = Envelope {
        domain: victim.domain.0,
        instance: victim.instance,
        seq: victim.front.seq() + 1,
        locality: 0,
        tag: Some([0xAB; 32]), // guessed tag
        command: attack::extend_command(0, [0xEE; 20]),
    };
    let resp = sp.platform.manager.handle(victim.domain, &forged.encode());
    assert_eq!(
        ResponseEnvelope::decode(&resp).unwrap().status,
        ResponseStatus::Denied
    );
}

#[test]
fn credential_is_per_domain_not_global() {
    let sp = SecurePlatform::full(b"sec-percred").unwrap();
    let g1 = sp.launch_guest("g1").unwrap();
    let mut g2 = sp.launch_guest("g2").unwrap();
    // g2 steals g1's... no wait, it can't; but even if it *replays its
    // own* credential against g1's instance, the binding check fails.
    g2.front.instance = g1.instance;
    let mut tpm = g2.client(b"g2");
    assert!(tpm.startup_clear().is_err());
    // Back on its own instance everything works.
    g2.front.instance = g2.instance;
    let mut tpm = g2.client(b"g2b");
    tpm.startup_clear().unwrap();
}

#[test]
fn audit_log_records_attack_evidence() {
    let sp = SecurePlatform::full(b"sec-audit").unwrap();
    let mut victim = sp.launch_guest("victim").unwrap();
    warm(&mut victim);
    let before = sp.hook.audit.len();
    // Inject three forgeries.
    for seq in 1..=3u64 {
        let forged = Envelope {
            domain: victim.domain.0,
            instance: victim.instance,
            seq: seq + 10_000,
            locality: 0,
            tag: None,
            command: attack::bare_command(ordinal::GET_RANDOM),
        };
        sp.platform.manager.handle(victim.domain, &forged.encode());
    }
    let entries = sp.hook.audit.entries();
    assert_eq!(entries.len(), before + 3);
    assert_eq!(sp.hook.audit.denials(), 3);
    // The chain is intact, and tampering with the evidence is detectable.
    assert!(vtpm_xen::access_control::AuditLog::verify(&entries));
    let mut tampered = entries.clone();
    let last = tampered.len() - 1;
    tampered[last].outcome = vtpm_xen::access_control::AuditOutcome::Allowed;
    assert!(!vtpm_xen::access_control::AuditLog::verify(&tampered));
}

#[test]
fn scrubbing_limits_attack_window_to_in_flight_messages() {
    let sp = SecurePlatform::full(b"sec-window").unwrap();
    let mut victim = sp.launch_guest("victim").unwrap();
    {
        let mut tpm = victim.client(b"v");
        tpm.startup_clear().unwrap();
        for _ in 0..10 {
            tpm.get_random(8).unwrap();
        }
    }
    // After the exchange completes nothing remains to sniff.
    let dump = MemoryDump::capture(sp.platform.manager.hypervisor(), DomainId::DOM0).unwrap();
    assert!(attack::sniff_envelopes(&dump).is_empty());
}

#[test]
fn locality_escalation_blocked() {
    let sp = SecurePlatform::full(b"sec-locality").unwrap();
    let mut g = sp.launch_guest("g").unwrap();
    {
        let mut tpm = g.client(b"g");
        tpm.startup_clear().unwrap();
    }
    // Hand-craft an envelope claiming locality 4 (which would permit
    // PCR_Reset on resettable PCRs) with a *valid* credential tag.
    let key = sp.hook.credentials.key_for(g.domain.0, g.instance).unwrap();
    let mut w = Vec::new();
    w.extend_from_slice(&0x00C1u16.to_be_bytes());
    w.extend_from_slice(&15u32.to_be_bytes());
    w.extend_from_slice(&ordinal::PCR_RESET.to_be_bytes());
    w.extend_from_slice(&PcrSelection::of(&[16]).encode());
    let env = Envelope {
        domain: g.domain.0,
        instance: g.instance,
        seq: g.front.seq() + 1,
        locality: 4,
        tag: None,
        command: w,
    }
    .sign(&key);
    let resp = sp.platform.manager.handle(g.domain, &env.encode());
    assert_eq!(
        ResponseEnvelope::decode(&resp).unwrap().status,
        ResponseStatus::Denied,
        "locality 4 exceeds the guest cap"
    );
}
