//! Cross-crate integration: the whole stack (crypto → TPM → Xen sim →
//! vTPM → access control) driven through public APIs only.

use vtpm_xen::prelude::*;
use vtpm_xen::tpm12::KeyUsage;

const OWNER: [u8; 20] = [1; 20];
const SRK: [u8; 20] = [2; 20];

#[test]
fn guest_lifecycle_on_baseline() {
    let p = Platform::baseline(b"it-lifecycle").unwrap();
    let mut g = p.launch_guest("it").unwrap();
    let mut tpm = g.client(b"it");
    tpm.startup_clear().unwrap();
    tpm.take_ownership(&OWNER, &SRK).unwrap();

    // Key hierarchy through the full transport.
    let storage_blob = tpm
        .create_wrap_key(handle::SRK, &SRK, KeyUsage::Storage, 1024, &[3; 20], None)
        .unwrap();
    let storage = tpm.load_key2(handle::SRK, &SRK, &storage_blob).unwrap();
    let sign_blob = tpm
        .create_wrap_key(storage, &[3; 20], KeyUsage::Signing, 512, &[4; 20], None)
        .unwrap();
    let signer = tpm.load_key2(storage, &[3; 20], &sign_blob).unwrap();
    let sig = tpm.sign(signer, &[4; 20], b"deep hierarchy").unwrap();
    assert_eq!(sig.len(), 64);

    // Seal bound to a PCR through the full transport.
    tpm.extend(14, &[7; 20]).unwrap();
    let blob = tpm
        .seal(handle::SRK, &SRK, &[5; 20], Some(&PcrSelection::of(&[14])), b"bound")
        .unwrap();
    assert_eq!(tpm.unseal(handle::SRK, &SRK, &[5; 20], &blob).unwrap(), b"bound");
    tpm.extend(14, &[8; 20]).unwrap();
    assert!(tpm.unseal(handle::SRK, &SRK, &[5; 20], &blob).is_err());
}

#[test]
fn sixteen_guests_concurrently() {
    let p = Platform::baseline(b"it-sixteen").unwrap();
    let guests: Vec<Guest> = (0..16).map(|i| p.launch_guest(&format!("g{i}")).unwrap()).collect();
    let handles: Vec<_> = guests
        .into_iter()
        .enumerate()
        .map(|(i, mut g)| {
            std::thread::spawn(move || {
                let mut tpm = g.client(format!("c{i}").as_bytes());
                tpm.startup_clear().unwrap();
                for r in 0..5u8 {
                    tpm.extend(0, &[r; 20]).unwrap();
                }
                tpm.pcr_read(0).unwrap()
            })
        })
        .collect();
    let values: Vec<[u8; 20]> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // All guests ran the same extends -> identical PCRs, all isolated.
    assert!(values.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(p.manager.stats.snapshot().0, 16 * 7);
}

#[test]
fn secure_platform_full_workflow_with_policy() {
    let sp = SecurePlatform::full(b"it-secure").unwrap();
    let mut g = sp.launch_guest("it").unwrap();
    let mut tpm = g.client(b"it");
    tpm.startup_clear().unwrap();
    tpm.take_ownership(&OWNER, &SRK).unwrap();
    // Allowed path works end to end.
    let blob = tpm.seal(handle::SRK, &SRK, &[5; 20], None, b"ok").unwrap();
    assert_eq!(tpm.unseal(handle::SRK, &SRK, &[5; 20], &blob).unwrap(), b"ok");
    // Denied path (nv-admin group) is filtered before the vTPM sees it.
    assert!(tpm.nv_define(&OWNER, 0x10, 16, 1).is_err());
    assert!(sp.hook.audit.denials() > 0);
    // Live policy update: deny sealing, see it enforced immediately.
    sp.hook.policy.replace("deny group sealing\ndefault allow\n").unwrap();
    assert!(tpm.seal(handle::SRK, &SRK, &[5; 20], None, b"now denied").is_err());
    // And re-allow.
    sp.hook.policy.replace("default allow\n").unwrap();
    tpm.seal(handle::SRK, &SRK, &[5; 20], None, b"allowed again").unwrap();
}

#[test]
fn virtual_time_accounts_hardware_costs() {
    let p = Platform::baseline(b"it-vtime").unwrap();
    let mut g = p.launch_guest("it").unwrap();
    let clock = &p.hv.clock;
    let mut tpm = g.client(b"it");
    tpm.startup_clear().unwrap();

    let t0 = clock.now_ns();
    tpm.pcr_read(0).unwrap();
    let cheap = clock.now_ns() - t0;

    tpm.take_ownership(&OWNER, &SRK).unwrap();
    let t1 = clock.now_ns();
    tpm.seal(handle::SRK, &SRK, &[5; 20], None, b"x").unwrap();
    let seal = clock.now_ns() - t1;

    // A Seal (OSAP + TPM_Seal, RSA inside) must cost far more virtual
    // time than a PcrRead.
    assert!(seal > 10 * cheap, "seal {seal} vs pcr_read {cheap}");
}

#[test]
fn manager_reboot_cycle_via_persistence() {
    use vtpm_xen::vtpm_stack::{persist, restore, ManagerConfig, MirrorMode};

    let sp = SecurePlatform::full(b"it-reboot").unwrap();
    let mut g = sp.launch_guest("it").unwrap();
    {
        let mut tpm = g.client(b"it");
        tpm.startup_clear().unwrap();
        tpm.extend(2, &[0xBB; 20]).unwrap();
    }
    let pcr2 = sp
        .platform
        .manager
        .with_instance(g.instance, |i| i.tpm.pcrs().read(2).unwrap())
        .unwrap();

    // "Shut down": persist the database sealed to the hardware TPM.
    let db = {
        let mut hw = sp.platform.hw_tpm.lock();
        persist(&sp.platform.manager, &mut hw, &vtpm_xen::vtpm_stack::HW_SRK_AUTH).unwrap()
    };

    // "Reboot": fresh hypervisor, same hardware TPM, restore.
    let hv2 = std::sync::Arc::new(Hypervisor::boot(4096, 16).unwrap());
    let mgr2 = {
        let mut hw = sp.platform.hw_tpm.lock();
        restore(
            hv2,
            b"it-reboot",
            ManagerConfig { mirror_mode: MirrorMode::Encrypted, ..Default::default() },
            &db,
            &mut hw,
            &vtpm_xen::vtpm_stack::HW_SRK_AUTH,
        )
        .unwrap()
    };
    let pcr2_restored = mgr2.with_instance(g.instance, |i| i.tpm.pcrs().read(2).unwrap()).unwrap();
    assert_eq!(pcr2, pcr2_restored);
}

#[test]
fn migration_preserves_sealed_data() {
    let src = SecurePlatform::full(b"it-mig-src").unwrap();
    let dst = SecurePlatform::full(b"it-mig-dst").unwrap();

    let mut g = src.launch_guest("it").unwrap();
    let instance = g.instance;
    let blob = {
        let mut tpm = g.client(b"it");
        tpm.startup_clear().unwrap();
        tpm.take_ownership(&OWNER, &SRK).unwrap();
        tpm.seal(handle::SRK, &SRK, &[5; 20], None, b"travels").unwrap()
    };

    let pkg = src
        .platform
        .export_instance(instance, true, Some(&dst.platform.hw_ek_public()))
        .unwrap();
    let new_id = dst.platform.import_instance(&pkg).unwrap();

    // Attach a fresh guest to the migrated instance on the destination
    // and unseal the blob sealed on the source.
    let unsealed = dst
        .platform
        .manager
        .with_instance(new_id, |i| {
            let mut c = vtpm_xen::tpm12::TpmClient::new(
                vtpm_xen::tpm12::DirectTransport { tpm: &mut i.tpm, locality: 0 },
                b"dst",
            );
            c.startup_state().unwrap();
            c.unseal(handle::SRK, &SRK, &[5; 20], &blob).unwrap()
        })
        .unwrap();
    assert_eq!(unsealed, b"travels");
}
