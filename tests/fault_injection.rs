//! Fault injection: the stack must degrade cleanly, never panic, when
//! components misbehave — garbage on the wire, dead backends, exhausted
//! resources.

use std::time::Duration;

use vtpm_xen::prelude::*;
use vtpm_xen::vtpm_stack::{Envelope, ResponseEnvelope, ResponseStatus};

#[test]
fn garbage_envelopes_get_malformed_responses() {
    let p = Platform::baseline(b"fault-garbage").unwrap();
    let _g = p.launch_guest("g").unwrap();
    // A compromised component floods the manager with junk.
    for len in [0usize, 1, 7, 50, 300] {
        let junk = vec![0xA5u8; len];
        let resp = p.manager.handle(DomainId(1), &junk);
        let renv = ResponseEnvelope::decode(&resp).unwrap();
        assert_eq!(renv.status, ResponseStatus::Malformed, "len {len}");
    }
    // Legitimate traffic still flows afterwards.
    let mut g2 = p.launch_guest("g2").unwrap();
    let mut tpm = g2.client(b"c");
    tpm.startup_clear().unwrap();
}

#[test]
fn garbage_tpm_commands_get_tpm_errors_not_panics() {
    // Valid envelope, garbage command bytes: the TPM must answer with an
    // error response for every mutation.
    let p = Platform::baseline(b"fault-cmd").unwrap();
    let g = p.launch_guest("g").unwrap();
    let mut rng = vtpm_xen::crypto::Drbg::new(b"fuzz");
    for i in 0..200u64 {
        let len = (rng.next_u32() % 64) as usize;
        let cmd = rng.bytes(len);
        let env = Envelope {
            domain: g.domain.0,
            instance: g.instance,
            seq: i + 1,
            locality: 0,
            tag: None,
            command: cmd,
        };
        let resp = p.manager.handle(g.domain, &env.encode());
        let renv = ResponseEnvelope::decode(&resp).unwrap();
        assert_eq!(renv.status, ResponseStatus::Ok, "manager dispatched");
        let (_, code, _) = vtpm_xen::tpm12::parse_response(&renv.body).unwrap();
        assert_ne!(code, 0, "garbage must not succeed");
    }
}

#[test]
fn dead_backend_times_out_cleanly() {
    let p = Platform::baseline(b"fault-dead").unwrap();
    let mut g = p.launch_guest("g").unwrap();
    {
        let mut tpm = g.client(b"c");
        tpm.startup_clear().unwrap();
    }
    // Kill every backend thread, then call again with a short timeout.
    p.shutdown();
    g.front.timeout = Duration::from_millis(100);
    let mut tpm = g.client(b"c2");
    let t0 = std::time::Instant::now();
    let result = tpm.get_random(8);
    assert!(matches!(result, Err(vtpm_xen::tpm12::ClientError::Tpm(_))));
    assert!(t0.elapsed() < Duration::from_secs(5), "bounded timeout");
}

#[test]
fn frame_exhaustion_fails_gracefully() {
    use vtpm_xen::vtpm_stack::ManagerConfig;
    // A host too small for many guests: launches fail with OutOfMemory,
    // nothing panics, earlier guests keep working.
    let p = vtpm_xen::vtpm_stack::Platform::with_config(
        b"fault-oom",
        128, // tiny machine
        ManagerConfig::default(),
        false,
    )
    .unwrap();
    let mut launched = Vec::new();
    let mut failures = 0;
    for i in 0..8 {
        match p.launch_guest(&format!("g{i}")) {
            Ok(g) => launched.push(g),
            Err(e) => {
                failures += 1;
                assert!(matches!(e, vtpm_xen::xen::XenError::OutOfMemory), "{e}");
            }
        }
    }
    assert!(failures > 0, "the tiny machine must run out");
    assert!(!launched.is_empty(), "at least one guest fits");
    let mut tpm = launched[0].client(b"c");
    tpm.startup_clear().unwrap();
}

#[test]
fn session_exhaustion_and_recovery_through_full_stack() {
    let p = Platform::baseline(b"fault-sessions").unwrap();
    let g = p.launch_guest("g").unwrap();
    let session_slots = p.manager.config().vtpm_config.session_slots;
    // Drive raw OIAP commands until the vTPM runs out of session slots.
    let mut handles = Vec::new();
    let mut seq = 0u64;
    let send = |seq: &mut u64, cmd: Vec<u8>| {
        *seq += 1;
        let env = Envelope {
            domain: g.domain.0,
            instance: g.instance,
            seq: *seq,
            locality: 0,
            tag: None,
            command: cmd,
        };
        let resp = p.manager.handle(g.domain, &env.encode());
        ResponseEnvelope::decode(&resp).unwrap().body
    };
    // Startup first.
    send(&mut seq, vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1]);
    let oiap = |_: usize| {
        let mut c = vec![0x00, 0xC1, 0, 0, 0, 10];
        c.extend_from_slice(&vtpm_xen::tpm12::ordinal::OIAP.to_be_bytes());
        c
    };
    for i in 0..session_slots {
        let body = send(&mut seq, oiap(i));
        let (_, code, out) = vtpm_xen::tpm12::parse_response(&body).unwrap();
        assert_eq!(code, 0);
        handles.push(u32::from_be_bytes(out[..4].try_into().unwrap()));
    }
    // One more is refused with RESOURCES.
    let body = send(&mut seq, oiap(99));
    let (_, code, _) = vtpm_xen::tpm12::parse_response(&body).unwrap();
    assert_eq!(code, vtpm_xen::tpm12::rc::RESOURCES);
    // Flush one session; capacity returns.
    let mut flush = vec![0x00, 0xC1, 0, 0, 0, 18];
    flush.extend_from_slice(&vtpm_xen::tpm12::ordinal::FLUSH_SPECIFIC.to_be_bytes());
    flush.extend_from_slice(&handles[0].to_be_bytes());
    flush.extend_from_slice(&2u32.to_be_bytes());
    let body = send(&mut seq, flush);
    assert_eq!(vtpm_xen::tpm12::parse_response(&body).unwrap().1, 0);
    let body = send(&mut seq, oiap(100));
    assert_eq!(vtpm_xen::tpm12::parse_response(&body).unwrap().1, 0);
}

#[test]
fn destroyed_instance_leaves_no_residue() {
    let p = Platform::baseline(b"fault-residue").unwrap();
    let mut g = p.launch_guest("g").unwrap();
    {
        let mut tpm = g.client(b"c");
        tpm.startup_clear().unwrap();
    }
    let state = p.manager.export_instance_state(g.instance).unwrap();
    let probe = &state[50..114]; // EK prime region: high-entropy
    // Present in the dump while alive (baseline).
    let dump = vtpm_xen::attack::MemoryDump::capture(p.manager.hypervisor(), DomainId::DOM0)
        .unwrap();
    assert!(dump.contains_any(&[probe]));
    // Destroy: the mirror is scrubbed, nothing remains.
    assert!(p.manager.destroy_instance(g.instance).unwrap());
    let dump = vtpm_xen::attack::MemoryDump::capture(p.manager.hypervisor(), DomainId::DOM0)
        .unwrap();
    assert!(!dump.contains_any(&[probe]), "destroyed instance must be scrubbed");
    // Requests to the dead instance answer NoInstance.
    let env = Envelope {
        domain: g.domain.0,
        instance: g.instance,
        seq: 999,
        locality: 0,
        tag: None,
        command: vec![0x00, 0xC1, 0, 0, 0, 12, 0, 0, 0, 0x99, 0, 1],
    };
    let resp = p.manager.handle(g.domain, &env.encode());
    assert_eq!(
        ResponseEnvelope::decode(&resp).unwrap().status,
        ResponseStatus::NoInstance
    );
}

#[test]
fn failed_initial_mirror_leaves_no_tracked_region() {
    // Regression: create_instance mirrors the fresh instance's first
    // image before routing it. If that update dies partway (Dom0 write
    // fault), the half-written region used to stay *tracked* — never
    // routed, never scrubbed, and squatting on the id. The error path
    // must untrack it so the failed create leaves nothing behind.
    // Sweep the crash point across every write of the initial mirror.
    use std::sync::Arc;
    use vtpm_xen::vtpm_stack::{ManagerConfig, MirrorMode, VtpmManager};

    let cfg = ManagerConfig { mirror_mode: MirrorMode::Encrypted, ..Default::default() };
    let mut k = 0u64;
    loop {
        let hv = Arc::new(Hypervisor::boot(4096, 8).unwrap());
        let mgr =
            VtpmManager::new(Arc::clone(&hv), b"fault-create-leak", cfg.clone()).unwrap();
        let first = mgr.create_instance().unwrap();
        hv.inject_write_crash(DomainId::DOM0, k);
        let res = mgr.create_instance();
        hv.clear_faults();
        match res {
            Err(_) => {
                // The failed create's id (allocated monotonically) must
                // not keep a mirror region, and the survivor is intact.
                assert!(
                    mgr.mirror_frames(first + 1).is_none(),
                    "k={k}: failed create leaked a tracked mirror region"
                );
                assert_eq!(mgr.instance_ids(), vec![first]);
                assert!(mgr.mirror_frames(first).is_some());
                // Recovery from the frames alone agrees: only the
                // survivor comes back, nothing half-written resurrects.
                drop(mgr);
                let (rec, report) =
                    VtpmManager::recover(Arc::clone(&hv), b"fault-create-leak", cfg.clone())
                        .unwrap();
                assert_eq!(report.resumed, vec![first], "k={k}");
                assert_eq!(report.failed, Vec::<u32>::new(), "k={k}");
                // The recovered world can reuse the id space freely.
                let next = rec.create_instance().unwrap();
                assert!(rec.mirror_frames(next).is_some());
            }
            Ok(id) => {
                // Enough budget for a full create: the sweep is done.
                assert!(mgr.mirror_frames(id).is_some());
                assert!(k > 0, "k=0 must fail the create");
                break;
            }
        }
        k += 1;
        assert!(k < 200, "initial mirror should not take 200 writes");
    }
}

#[test]
fn oversized_command_rejected_at_the_ring() {
    let p = Platform::baseline(b"fault-oversize").unwrap();
    let mut g = p.launch_guest("g").unwrap();
    // Larger than the ring's capacity: write_msg refuses, transact errors.
    let huge = vec![0u8; 16 * 1024];
    let env = g.front.build_envelope(&huge);
    assert!(g.front.transact_envelope(&env).is_err());
    // The frontend remains usable for sane commands.
    let mut tpm = g.client(b"c");
    tpm.startup_clear().unwrap();
}
