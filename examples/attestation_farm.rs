//! A consolidated web farm using vTPM-based remote attestation — the
//! scenario the paper's introduction motivates (many VMs on one host,
//! each needing its own TPM) — served through the attestation plane.
//!
//! Eight guests boot and measure a (simulated) software stack into
//! their vTPM PCRs; the platform's [`QuoteIssuer`] enrolls each one and
//! answers the whole farm's challenges out of its nonce-window cache
//! (one signing pass per guest, no matter how many verifiers ask). A
//! [`VerifierPool`] pinned to the golden measurements batch-verifies
//! every quote chain and catches the one guest whose measurement was
//! tampered with.
//!
//! ```text
//! cargo run --release --example attestation_farm
//! ```

use vtpm_xen::crypto::sha1;
use vtpm_xen::prelude::*;

const FARM_SIZE: usize = 8;

/// "Boot" a guest: measure kernel + app into PCRs 0 and 1. Every farm
/// member runs the same stack, so honest guests produce identical PCRs.
fn boot_and_measure(guest: &mut Guest, tamper: bool) {
    let mut tpm = guest.client(b"boot");
    tpm.startup_clear().expect("startup");
    let owner = [1u8; 20];
    let srk = [2u8; 20];
    tpm.take_ownership(&owner, &srk).expect("ownership");
    tpm.extend(0, &sha1(b"kernel-5.0-golden")).expect("measure kernel");
    let app = if tamper { b"app-1.0-BACKDOORED".as_slice() } else { b"app-1.0-golden".as_slice() };
    tpm.extend(1, &sha1(app)).expect("measure app");
}

/// What the honest stack's PCRs 0 and 1 extend to.
fn golden_pcrs() -> Vec<[u8; 20]> {
    [b"kernel-5.0-golden".as_slice(), b"app-1.0-golden".as_slice()]
        .iter()
        .map(|m| {
            let mut buf = [0u8; 40];
            buf[20..].copy_from_slice(&sha1(m));
            sha1(&buf)
        })
        .collect()
}

fn main() {
    let platform = SecurePlatform::full(b"attestation-farm").expect("platform");
    println!("farm host up; launching {FARM_SIZE} guests...");

    // Launch and measure concurrently — each guest on its own thread,
    // exactly how a consolidation host behaves.
    let handles: Vec<_> = (0..FARM_SIZE)
        .map(|i| {
            let tampered = i == 5; // one compromised guest
            let mut guest = platform.launch_guest(&format!("web{i}")).expect("guest");
            std::thread::spawn(move || {
                boot_and_measure(&mut guest, tampered);
                guest
            })
        })
        .collect();
    let guests: Vec<Guest> = handles.into_iter().map(|h| h.join().expect("guest thread")).collect();

    // Enroll every guest with the platform's attestation agent. The
    // guests took ownership themselves, so enrollment reuses their SRK.
    let issuer = QuoteIssuer::new(IssuerConfig::default());
    for g in &guests {
        issuer
            .enroll_with_auths(&platform.platform, g.instance, &[2u8; 20], &[3u8; 20])
            .expect("enroll");
    }

    // The relying party pins the golden measurements; everything else —
    // chain verification down to the hardware EK, freshness, replay —
    // is the pool's standing policy.
    let pool = VerifierPool::new(VerifierConfig {
        golden_pcrs: Some(golden_pcrs()),
        ..Default::default()
    });

    // Four independent verifiers each challenge the whole farm in the
    // same nonce-window: one signing pass per guest serves all of them,
    // the rest comes straight from the issued-quote cache.
    const VERIFIERS: u32 = 4;
    let now = platform.platform.hv.clock.now_ns();
    let batch: Vec<Submission> = (0..VERIFIERS)
        .flat_map(|v| {
            guests.iter().map(move |g| (v, g.instance)).collect::<Vec<_>>()
        })
        .map(|(v, instance)| {
            let evidence = issuer.issue(&platform.platform, instance, now).expect("issue");
            Submission::from_evidence(v, &evidence)
        })
        .collect();
    let verdicts = pool.verify_batch(&batch, now);

    let mut failed = 0;
    for (i, g) in guests.iter().enumerate() {
        let verdict = &verdicts[i]; // verifier 0's round, one row per guest
        if verdict.accepted() {
            println!("  web{} (instance {:<2}) ATTESTED", i, g.instance);
        } else {
            println!("  web{} (instance {:<2}) REJECTED  ({verdict})", i, g.instance);
        }
    }
    failed += verdicts.iter().filter(|v| !v.accepted()).count();
    println!(
        "\n{} of {} challenges attested, {failed} rejected",
        verdicts.len() - failed,
        verdicts.len()
    );
    assert_eq!(
        failed,
        VERIFIERS as usize,
        "exactly the tampered guest fails, for every verifier"
    );

    let snap = issuer.telemetry().snapshot();
    println!(
        "issuer: {} requests, {} signing passes, {} served from cache (audit denials: {})",
        snap.requested,
        snap.signing_passes,
        snap.cache_hits + snap.coalesced,
        platform.hook.audit.denials()
    );
}
