//! A consolidated web farm using vTPM-based remote attestation — the
//! scenario the paper's introduction motivates (many VMs on one host,
//! each needing its own TPM).
//!
//! Eight guests boot, measure a (simulated) software stack into their
//! vTPM PCRs, and answer attestation challenges concurrently; a verifier
//! checks every quote signature and catches one guest whose measurement
//! was tampered with.
//!
//! ```text
//! cargo run --release --example attestation_farm
//! ```

use vtpm_xen::crypto::{sha1, BigUint, RsaPublicKey};
use vtpm_xen::prelude::*;
use vtpm_xen::tpm12::{quote_info_digest, KeyUsage};

const FARM_SIZE: usize = 8;

struct AttestationReport {
    name: String,
    pcr_values: Vec<[u8; 20]>,
    signature: Vec<u8>,
    public_modulus: Vec<u8>,
    nonce: [u8; 20],
}

fn run_guest(mut guest: Guest, name: String, tamper: bool) -> AttestationReport {
    let mut tpm = guest.client(name.as_bytes());
    tpm.startup_clear().expect("startup");
    let owner = [1u8; 20];
    let srk = [2u8; 20];
    tpm.take_ownership(&owner, &srk).expect("ownership");

    // "Boot": measure kernel + app into PCRs 0 and 1. Every farm member
    // runs the same stack, so honest guests produce identical PCRs.
    tpm.extend(0, &sha1(b"kernel-5.0-golden")).expect("measure kernel");
    let app = if tamper { b"app-1.0-BACKDOORED".as_slice() } else { b"app-1.0-golden".as_slice() };
    tpm.extend(1, &sha1(app)).expect("measure app");

    // Create an attestation key and answer the challenge.
    let key_auth = [3u8; 20];
    let blob = tpm
        .create_wrap_key(handle::SRK, &srk, KeyUsage::Signing, 512, &key_auth, None)
        .expect("aik");
    let key = tpm.load_key2(handle::SRK, &srk, &blob).expect("load");
    let mut nonce = [0u8; 20];
    nonce[..name.len().min(20)].copy_from_slice(&name.as_bytes()[..name.len().min(20)]);
    let (pcr_values, signature) = tpm
        .quote(key, &key_auth, &nonce, &PcrSelection::of(&[0, 1]))
        .expect("quote");

    AttestationReport { name, pcr_values, signature, public_modulus: blob.n, nonce }
}

fn verify(report: &AttestationReport, golden: &[[u8; 20]; 2]) -> Result<(), String> {
    // 1. Signature check.
    let sel = PcrSelection::of(&[0, 1]);
    let mut buf = Vec::new();
    buf.extend_from_slice(&sel.encode());
    buf.extend_from_slice(&40u32.to_be_bytes());
    for v in &report.pcr_values {
        buf.extend_from_slice(v);
    }
    let composite = sha1(&buf);
    let digest = quote_info_digest(&composite, &report.nonce);
    let pk = RsaPublicKey {
        n: BigUint::from_bytes_be(&report.public_modulus),
        e: BigUint::from_u64(vtpm_xen::crypto::rsa::E),
    };
    pk.verify_pkcs1_sha1(&digest, &report.signature)
        .map_err(|_| "signature invalid".to_string())?;
    // 2. Measurement check against the golden values.
    if report.pcr_values.as_slice() != golden {
        return Err("measurements differ from golden stack".to_string());
    }
    Ok(())
}

fn main() {
    let platform = SecurePlatform::full(b"attestation-farm").expect("platform");
    println!("farm host up; launching {FARM_SIZE} guests...");

    // Launch and attest concurrently — each guest on its own thread,
    // exactly how a consolidation host behaves.
    let handles: Vec<_> = (0..FARM_SIZE)
        .map(|i| {
            let name = format!("web{i}");
            let tampered = i == 5; // one compromised guest
            let guest = platform.launch_guest(&name).expect("guest");
            std::thread::spawn(move || run_guest(guest, name, tampered))
        })
        .collect();
    let reports: Vec<AttestationReport> =
        handles.into_iter().map(|h| h.join().expect("guest thread")).collect();

    // Golden measurements: what the honest stack extends to.
    let golden = {
        let mut pcr0 = [0u8; 20];
        let mut buf = [0u8; 40];
        buf[20..].copy_from_slice(&sha1(b"kernel-5.0-golden"));
        pcr0.copy_from_slice(&sha1(&buf));
        let mut pcr1 = [0u8; 20];
        let mut buf = [0u8; 40];
        buf[20..].copy_from_slice(&sha1(b"app-1.0-golden"));
        pcr1.copy_from_slice(&sha1(&buf));
        [pcr0, pcr1]
    };

    let mut passed = 0;
    let mut failed = 0;
    for report in &reports {
        match verify(report, &golden) {
            Ok(()) => {
                println!("  {:<6} ATTESTED  (PCR1 {})", report.name, hex(&report.pcr_values[1][..6]));
                passed += 1;
            }
            Err(why) => {
                println!("  {:<6} REJECTED  ({why})", report.name);
                failed += 1;
            }
        }
    }
    println!("\n{passed} guests attested, {failed} rejected");
    assert_eq!(failed, 1, "exactly the tampered guest fails");
    println!(
        "manager handled {} requests, 0 cross-guest leaks possible (audit denials: {})",
        platform.platform.manager.stats.snapshot().0,
        platform.hook.audit.denials()
    );
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
