//! Ride out a churn storm on a 100-host fleet: the phi-accrual
//! failure detector, the concurrent migration driver pool, and the
//! suspicion-driven rebalancer keep working while 10 hosts crash in
//! the middle of an active rebalance — and at the end every vTPM in
//! the fleet exists exactly once.
//!
//! ```text
//! cargo run --release --example fleet_storm
//! ```
//!
//! The storm also exercises the sentinel closed loop: the burst of
//! crash-recoveries trips the churn-storm detector (a `Warning` — an
//! operational condition, not a page), which pauses the rebalancer
//! via the same alert-bridge the chaos harness drives; when the churn
//! subsides the detector emits its `cleared` alert and the rebalancer
//! resumes.

use vtpm_fleet::{Fleet, FleetConfig};
use vtpm_harness::apply_fleet_alerts;
use vtpm_sentinel::{Sentinel, SentinelConfig, StreamEvent};
use vtpm_xen::cluster::{Cluster, ClusterConfig};

fn main() {
    // 90 loaded hosts; 10 more join empty in a moment, so the
    // rebalancer has real work in flight when the storm hits.
    let mut cluster = Cluster::new(
        b"fleet-storm",
        ClusterConfig { hosts: 90, frames_per_host: 2048, ..Default::default() },
    )
    .expect("cluster");
    let vms = 270;
    for _ in 0..vms {
        cluster.create_vm().expect("vm");
    }
    let mut fleet = Fleet::new(
        FleetConfig { max_in_flight: 16, max_plan_per_tick: 8, ..FleetConfig::default() },
        &cluster,
    );
    let mut sentinel = Sentinel::new(SentinelConfig::default());
    let mut alerts_fed = 0usize;

    for _ in 0..10 {
        let h = cluster.add_host().expect("join");
        fleet.host_joined(&cluster, h);
    }
    println!(
        "fleet: {} hosts / {vms} vTPMs; 10 empty hosts just joined — rebalancing begins",
        cluster.hosts.len()
    );

    // Let the rebalancer get properly underway.
    for _ in 0..3 {
        fleet.tick(&mut cluster);
    }
    println!(
        "rebalance active: {} drives in flight, {} committed so far",
        fleet.pool().in_flight(),
        fleet.snapshot().drives_committed,
    );

    // The storm: 10 loaded hosts drop dead mid-rebalance. In-flight
    // drives touching them are abandoned; their VMs are stranded until
    // revival.
    let doomed: Vec<usize> = (0..90).step_by(9).collect();
    for &h in &doomed {
        cluster.fabric.crash_host(h);
        fleet.host_down(&mut cluster, h);
    }
    println!("storm: hosts {doomed:?} crashed during the rebalance");

    // The control plane keeps running on what's left; the detector
    // starts suspecting the silent hosts from their missing heartbeats.
    for _ in 0..6 {
        fleet.tick(&mut cluster);
    }
    println!(
        "after the storm: {} suspects ({} drives abandoned, {} committed)",
        fleet.suspects().len(),
        fleet.snapshot().drives_abandoned,
        fleet.snapshot().drives_committed,
    );

    // Revival burst: every recovery is a CrashRecovery marker on the
    // sentinel's stream — ten inside one window is a churn storm.
    for &h in &doomed {
        cluster.recover_host(h).expect("recovery");
        fleet.host_up(&mut cluster, h);
        sentinel.observe(StreamEvent::CrashRecovery {
            host: h as u32,
            at_ns: cluster.hosts[h].platform.hv.clock.now_ns(),
        });
    }
    let (paused, _) = apply_fleet_alerts(&mut fleet, &sentinel.alerts()[alerts_fed..]);
    alerts_fed = sentinel.alerts().len();
    assert!(paused > 0 && fleet.paused(), "ten recoveries in a window must trip the storm");
    println!(
        "churn-storm alert raised: \"{}\" — rebalancer paused",
        sentinel.alerts().last().map(|a| a.detail.as_str()).unwrap_or(""),
    );

    // Ticks continue while paused: evacuations and in-flight drives
    // still run; only new rebalance plans are held back.
    for _ in 0..4 {
        fleet.tick(&mut cluster);
    }

    // Quiet returns: the next event after the window drains clears the
    // storm, and the bridge resumes the rebalancer.
    sentinel.observe(StreamEvent::Gauge {
        host: 0,
        at_ns: cluster.clock.now_ns() + 50_000_000,
        name: "fleet_quiet",
        value: 0,
    });
    let (_, resumed) = apply_fleet_alerts(&mut fleet, &sentinel.alerts()[alerts_fed..]);
    assert!(resumed > 0 && !fleet.paused(), "quiet window must clear the storm");
    println!(
        "churn cleared: \"{}\" — rebalancer resumed",
        sentinel.alerts().last().map(|a| a.detail.as_str()).unwrap_or(""),
    );

    // Finish the rebalance, settle every journal, then account for
    // every vTPM in the fleet.
    for _ in 0..30 {
        fleet.tick(&mut cluster);
        if fleet.pool().in_flight() == 0 && fleet.suspects().is_empty() {
            break;
        }
    }
    fleet.drain(&mut cluster);
    for vm in 0..vms {
        cluster.resolve(vm);
    }

    let mut lost = 0usize;
    let mut duplicated = 0usize;
    for vm in 0..vms {
        match cluster.runnable_hosts(vm).len() {
            0 => lost += 1,
            1 => {}
            _ => duplicated += 1,
        }
    }
    let mut orphaned = 0usize;
    for h in 0..cluster.hosts.len() {
        let mapped: Vec<_> =
            cluster.hosts[h].journal.mapped_vms().iter().map(|&(_, id)| id).collect();
        orphaned += cluster.hosts[h]
            .platform
            .manager
            .instance_ids()
            .iter()
            .filter(|id| !mapped.contains(id))
            .count();
    }
    let snap = fleet.snapshot();
    println!(
        "settled: {} drives committed / {} aborted / {} abandoned across the run",
        snap.drives_committed, snap.drives_aborted, snap.drives_abandoned,
    );
    println!(
        "accounting over {vms} vTPMs on {} hosts: {lost} lost, {duplicated} duplicated, \
         {orphaned} orphaned",
        cluster.hosts.len(),
    );
    assert_eq!((lost, duplicated, orphaned), (0, 0, 0), "every vTPM exactly once");
    println!("every vTPM accounted for exactly once — the storm cost nothing");
}
