//! Deep attestation through the attestation plane: prove to a remote
//! verifier that (a) a guest's software stack measures correctly in its
//! vTPM, AND (b) that vTPM is a registered instance running on this
//! physical platform — by chaining the guest's vTPM quote into a
//! hardware-TPM quote over the binding PCR.
//!
//! The [`QuoteIssuer`] assembles the whole chain as wire-format
//! [`Evidence`]; the [`VerifierPool`] judges it. Three submissions show
//! the three outcomes that matter:
//!
//! 1. the registered guest's evidence is **accepted**;
//! 2. the same evidence re-presented by the same verifier is refused as
//!    a **replay** (the pool's ledger burned it);
//! 3. a spoofed vTPM (same software, same measurements, a valid
//!    self-quote, even a genuine hardware countersignature) is refused
//!    because its EK was never registered with the platform's manager.
//!
//! ```text
//! cargo run --release --example deep_attestation
//! ```

use vtpm_xen::attest::window_nonce;
use vtpm_xen::prelude::*;
use vtpm_xen::tpm12::{DirectTransport, KeyUsage};
use vtpm_xen::vtpm_stack::deep_quote::DeepQuote;

fn main() {
    let platform = SecurePlatform::full(b"deep-attest-host").expect("platform");
    let mut guest = platform.launch_guest("prod-db").expect("guest");
    println!(
        "guest {} launched; registration log now has {} entries",
        guest.domain,
        platform.platform.registration_log().len()
    );

    // The guest measures its stack into PCR 0.
    {
        let mut tpm = guest.client(b"app");
        tpm.startup_clear().expect("startup");
        tpm.extend(0, &vtpm_xen::crypto::sha1(b"trusted-stack-v1")).expect("measure");
    }

    // The platform's attestation agent enrolls the instance and issues
    // the deep quote for the current nonce-window.
    let issuer = QuoteIssuer::new(IssuerConfig { selection: vec![0], ..Default::default() });
    issuer.provision(&platform.platform, guest.instance).expect("enroll");
    let now = platform.platform.hv.clock.now_ns();
    let evidence = issuer.issue(&platform.platform, guest.instance, now).expect("issue");

    let pool = VerifierPool::new(VerifierConfig::default());
    const VERIFIER: u32 = 1;

    // 1. The registered guest verifies end to end.
    let verdict = pool.verify_one(&Submission::from_evidence(VERIFIER, &evidence), now);
    println!("verifier: registered guest {verdict} (vTPM quote + platform binding)");
    assert!(verdict.accepted(), "registered guest must verify");

    // 2. The same evidence again, same verifier: the ledger refuses it.
    let verdict = pool.verify_one(&Submission::from_evidence(VERIFIER, &evidence), now);
    println!("verifier: re-presented evidence {verdict}");
    assert!(matches!(verdict, Verdict::Replayed), "second presentation must be refused");

    // --- the spoof --------------------------------------------------------
    // An attacker stands up their own software TPM (identical code!)
    // with identical measurements and a valid self-quote, claims this
    // platform, and even obtains a genuine hardware countersignature.
    // Its EK was never registered with the manager, so the hardware-
    // attested registration log refuses the chain.
    let nonce = window_nonce(evidence.window);
    let mut rogue_tpm = vtpm_xen::tpm12::Tpm::new(b"rogue-vtpm");
    let (rogue_values, rogue_sig, rogue_aik) = {
        let mut c = vtpm_xen::tpm12::TpmClient::new(
            DirectTransport { tpm: &mut rogue_tpm, locality: 0 },
            b"rogue",
        );
        c.startup_clear().expect("startup");
        c.take_ownership(&[1; 20], &[2; 20]).expect("own");
        c.extend(0, &vtpm_xen::crypto::sha1(b"trusted-stack-v1")).expect("measure");
        let blob = c
            .create_wrap_key(handle::SRK, &[2; 20], KeyUsage::Signing, 512, &[3; 20], None)
            .expect("aik");
        let aik = c.load_key2(handle::SRK, &[2; 20], &blob).expect("load");
        let (values, sig) = c.quote(aik, &[3; 20], &nonce, &PcrSelection::of(&[0])).expect("quote");
        (values, sig, blob.n)
    };
    let (hw_pcr, hw_sig, hw_aik) =
        platform.platform.hw_countersign(&nonce, &rogue_sig).expect("countersign");
    let spoofed = Evidence {
        instance: guest.instance,
        window: evidence.window,
        quote: DeepQuote {
            vtpm_pcr_values: rogue_values,
            vtpm_selection: vec![0],
            vtpm_signature: rogue_sig,
            vtpm_aik_modulus: rogue_aik,
            vtpm_ek_modulus: rogue_tpm.ek_public().n.to_bytes_be(),
            hw_binding_pcr: hw_pcr,
            hw_signature: hw_sig,
            hw_aik_modulus: hw_aik,
            registration_log: platform.platform.registration_log(),
        },
    };
    let verdict = pool.verify_one(&Submission::from_evidence(2, &spoofed), now);
    println!("verifier: rogue vTPM {verdict}");
    assert!(!verdict.accepted(), "spoof must fail");
}
