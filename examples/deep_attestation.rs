//! Deep attestation: prove to a remote verifier that (a) a guest's
//! software stack measures correctly in its vTPM, AND (b) that vTPM is a
//! registered instance running on this physical platform — by chaining
//! the guest's vTPM quote into a hardware-TPM quote over the binding PCR.
//!
//! A spoofed vTPM (same software, same measurements, but never registered
//! with the platform's manager) is rejected even though its own quote
//! signature verifies.
//!
//! ```text
//! cargo run --release --example deep_attestation
//! ```

use vtpm_xen::prelude::*;
use vtpm_xen::tpm12::KeyUsage;
use vtpm_xen::vtpm_stack::deep_quote::{self, DeepQuote};

struct GuestQuote {
    pcr_values: Vec<[u8; 20]>,
    signature: Vec<u8>,
    aik_modulus: Vec<u8>,
}

fn guest_quote(guest: &mut Guest, nonce: &[u8; 20]) -> GuestQuote {
    let mut tpm = guest.client(b"app");
    tpm.startup_clear().expect("startup");
    let owner = [1u8; 20];
    let srk = [2u8; 20];
    let key_auth = [3u8; 20];
    tpm.take_ownership(&owner, &srk).expect("ownership");
    tpm.extend(0, &vtpm_xen::crypto::sha1(b"trusted-stack-v1")).expect("measure");
    let blob = tpm
        .create_wrap_key(handle::SRK, &srk, KeyUsage::Signing, 512, &key_auth, None)
        .expect("aik");
    let aik = tpm.load_key2(handle::SRK, &srk, &blob).expect("load");
    let (pcr_values, signature) = tpm
        .quote(aik, &key_auth, nonce, &PcrSelection::of(&[0]))
        .expect("quote");
    GuestQuote { pcr_values, signature, aik_modulus: blob.n }
}

fn main() {
    let platform = SecurePlatform::full(b"deep-attest-host").expect("platform");
    let mut guest = platform.launch_guest("prod-db").expect("guest");
    println!(
        "guest {} launched; registration log now has {} entries",
        guest.domain,
        platform.platform.registration_log().len()
    );

    // The verifier issues a fresh nonce.
    let nonce = [0x5Au8; 20];

    // The guest quotes; the platform countersigns with the hardware TPM.
    let gq = guest_quote(&mut guest, &nonce);
    let (hw_pcr, hw_sig, hw_aik) =
        platform.platform.hw_countersign(&nonce, &gq.signature).expect("countersign");

    let bundle = DeepQuote {
        vtpm_pcr_values: gq.pcr_values.clone(),
        vtpm_selection: vec![0],
        vtpm_signature: gq.signature.clone(),
        vtpm_aik_modulus: gq.aik_modulus.clone(),
        vtpm_ek_modulus: platform.platform.instance_ek_modulus(guest.instance).expect("ek"),
        hw_binding_pcr: hw_pcr,
        hw_signature: hw_sig.clone(),
        hw_aik_modulus: hw_aik.clone(),
        registration_log: platform.platform.registration_log(),
    };
    match deep_quote::verify(&bundle, &nonce) {
        Ok(()) => println!("verifier: registered guest ACCEPTED (vTPM quote + platform binding)"),
        Err(e) => unreachable!("must verify: {e}"),
    }

    // --- the spoof -----------------------------------------------------------
    // An attacker stands up their own software TPM (identical code!) with
    // identical measurements and a valid self-quote, claiming it runs on
    // this platform. Its EK was never registered with the manager, so the
    // hardware-attested log refuses it.
    let mut rogue_tpm = vtpm_xen::tpm12::Tpm::new(b"rogue-vtpm");
    let rogue = {
        let mut c = vtpm_xen::tpm12::TpmClient::new(
            vtpm_xen::tpm12::DirectTransport { tpm: &mut rogue_tpm, locality: 0 },
            b"rogue",
        );
        c.startup_clear().expect("startup");
        c.take_ownership(&[1; 20], &[2; 20]).expect("own");
        c.extend(0, &vtpm_xen::crypto::sha1(b"trusted-stack-v1")).expect("measure");
        let blob = c
            .create_wrap_key(handle::SRK, &[2; 20], KeyUsage::Signing, 512, &[3; 20], None)
            .expect("aik");
        let aik = c.load_key2(handle::SRK, &[2; 20], &blob).expect("load");
        let (values, sig) = c.quote(aik, &[3; 20], &nonce, &PcrSelection::of(&[0])).expect("quote");
        (values, sig, blob.n)
    };
    let (hw_pcr2, hw_sig2, hw_aik2) =
        platform.platform.hw_countersign(&nonce, &rogue.1).expect("countersign");
    let spoofed = DeepQuote {
        vtpm_pcr_values: rogue.0,
        vtpm_selection: vec![0],
        vtpm_signature: rogue.1,
        vtpm_aik_modulus: rogue.2,
        vtpm_ek_modulus: rogue_tpm.ek_public().n.to_bytes_be(),
        hw_binding_pcr: hw_pcr2,
        hw_signature: hw_sig2,
        hw_aik_modulus: hw_aik2,
        registration_log: platform.platform.registration_log(),
    };
    match deep_quote::verify(&spoofed, &nonce) {
        Err(e) => println!("verifier: rogue vTPM REJECTED ({e})"),
        Ok(()) => unreachable!("spoof must fail"),
    }
}
