//! Live-migrate a VM's vTPM between two physical hosts, comparing the
//! baseline cleartext protocol against the improved destination-bound
//! sealed protocol — including what an on-path attacker sees, and why a
//! third host cannot steal the package.
//!
//! ```text
//! cargo run --release --example secure_migration
//! ```

use vtpm_xen::prelude::*;
use vtpm_xen::vtpm_stack::MigrationPackage;

fn seed_guest(platform: &SecurePlatform) -> (u32, [u8; 20]) {
    let mut guest = platform.launch_guest("mig-vm").expect("guest");
    let mut tpm = guest.client(b"app");
    tpm.startup_clear().expect("startup");
    let owner = [1u8; 20];
    let srk = [2u8; 20];
    tpm.take_ownership(&owner, &srk).expect("ownership");
    tpm.extend(7, &[0x5E; 20]).expect("measure");
    let pcr7 = tpm.pcr_read(7).expect("read");
    (guest.instance, pcr7)
}

fn main() {
    let source = SecurePlatform::full(b"host-A").expect("source host");
    let destination = SecurePlatform::full(b"host-B").expect("destination host");
    let mallory = SecurePlatform::full(b"host-M").expect("attacker host");

    let (instance, pcr7_before) = seed_guest(&source);
    println!("source: vTPM instance {instance} with PCR7 = {}", hex(&pcr7_before[..8]));

    // --- baseline protocol for comparison -----------------------------------
    let state = source.platform.manager.export_instance_state(instance).expect("state");
    let clear_pkg = vtpm_xen::vtpm_stack::migration::package_clear(&state);
    println!(
        "baseline package: {} bytes, state visible to on-path observer: {}",
        clear_pkg.encode().len(),
        clear_pkg.exposes(&state[..64]),
    );

    // --- improved protocol ---------------------------------------------------
    let dst_ek = destination.platform.hw_ek_public();
    let sealed_pkg: MigrationPackage = source
        .platform
        .export_instance(instance, true, Some(&dst_ek))
        .expect("export");
    println!(
        "sealed package:   {} bytes, state visible to on-path observer: {}",
        sealed_pkg.encode().len(),
        sealed_pkg.exposes(&state[..64]),
    );
    println!("source instance destroyed: {}", !source
        .platform
        .manager
        .instance_ids()
        .contains(&instance));

    // A stolen package is useless on any other physical host: the session
    // key is bound to the destination's hardware TPM EK.
    match mallory.platform.import_instance(&sealed_pkg) {
        Err(e) => println!("mallory's import fails: {e}"),
        Ok(_) => unreachable!("package must be destination-bound"),
    }

    // The rightful destination imports and the vTPM state survives intact.
    let new_id = destination.platform.import_instance(&sealed_pkg).expect("import");
    let pcr7_after = destination
        .platform
        .manager
        .with_instance(new_id, |i| i.tpm.pcrs().read(7).expect("pcr"))
        .expect("instance");
    println!(
        "destination: instance {new_id} restored, PCR7 = {} (match: {})",
        hex(&pcr7_after[..8]),
        pcr7_after == pcr7_before
    );
    assert_eq!(pcr7_after, pcr7_before);
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
