//! The paper's motivating attack, end to end: an administrator-level
//! attacker runs memory-dump software against the host and tries to
//! steal vTPM secrets — first on the stock Xen vTPM (it works), then on
//! the improved system (it doesn't).
//!
//! ```text
//! cargo run --release --example dump_attack
//! ```

use vtpm_xen::attack::{AttackMatrix, MemoryDump};
use vtpm_xen::prelude::*;

fn warm_up(guest: &mut Guest) {
    let mut tpm = guest.client(b"victim-app");
    tpm.startup_clear().expect("startup");
    let owner = [1u8; 20];
    let srk = [2u8; 20];
    tpm.take_ownership(&owner, &srk).expect("ownership");
    tpm.extend(0, &[9; 20]).expect("measure");
    // The victim seals something valuable.
    tpm.seal(handle::SRK, &srk, &[3; 20], None, b"CUSTOMER-DATABASE-KEY").expect("seal");
}

fn attack(label: &str, platform: &Platform, victim: &Guest, attacker: &mut Guest) {
    println!("=== {label} ===");
    // Raw dump statistics first: how much RAM can the attacker see?
    let dump = MemoryDump::capture(platform.manager.hypervisor(), DomainId::DOM0)
        .expect("dump as Dom0");
    println!("dump: {} pages ({} KiB) visible to Dom0 tooling", dump.pages.len(), dump.len() / 1024);

    let matrix = AttackMatrix::run(label, platform, victim, attacker);
    for row in matrix.rows() {
        println!("  {row}");
    }
    println!(
        "  => {}/{} attacks succeeded\n",
        matrix.successes(),
        matrix.outcomes.len()
    );
}

fn main() {
    // --- Stock Xen vTPM ---------------------------------------------------
    let baseline = Platform::baseline(b"dump-attack-baseline").expect("platform");
    let mut victim = baseline.launch_guest("victim").expect("guest");
    let mut attacker = baseline.launch_guest("attacker").expect("guest");
    warm_up(&mut victim);
    {
        let mut c = attacker.client(b"attacker");
        c.startup_clear().expect("startup");
    }
    attack("stock Xen vTPM (baseline)", &baseline, &victim, &mut attacker);

    // --- Improved access control -------------------------------------------
    let improved = SecurePlatform::full(b"dump-attack-improved").expect("platform");
    let mut victim = improved.launch_guest("victim").expect("guest");
    let mut attacker = improved.launch_guest("attacker").expect("guest");
    warm_up(&mut victim);
    {
        let mut c = attacker.client(b"attacker");
        c.startup_clear().expect("startup");
    }
    attack(
        "improved vTPM access control",
        &improved.platform,
        &victim,
        &mut attacker,
    );

    println!(
        "improved platform audit log: {} entries, {} denials (hash chain valid: {})",
        improved.hook.audit.len(),
        improved.hook.audit.denials(),
        vtpm_xen::access_control::AuditLog::verify(&improved.hook.audit.entries()),
    );
}
