//! Quickstart: boot the improved platform, launch a guest, and use its
//! vTPM for the three canonical TPM tasks — random numbers, sealed
//! storage, and a signed attestation quote.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vtpm_xen::prelude::*;

fn main() {
    // A simulated physical host running the paper's improved vTPM stack:
    // encrypted resident state, scrubbed rings, credentialed guests,
    // command policy, audit log.
    let platform = SecurePlatform::full(b"quickstart-host").expect("platform boots");
    println!("host up: hook = {}", platform.platform.manager.hook_name());

    // Launch a guest. The domain builder provisions its vTPM credential.
    let mut guest = platform.launch_guest("web1").expect("guest launches");
    println!(
        "guest {} launched with vTPM instance {}",
        guest.domain, guest.instance
    );

    // Inside the guest: a TPM 1.2 client over the split driver.
    let mut tpm = guest.client(b"quickstart-app");
    tpm.startup_clear().expect("vTPM starts");

    // 1. Random numbers.
    let nonce = tpm.get_random(16).expect("random");
    println!("random nonce: {}", hex(&nonce));

    // 2. Sealed storage: take ownership, then seal a secret to PCR 10.
    let owner_auth = [0x0Au8; 20];
    let srk_auth = [0x0Bu8; 20];
    tpm.take_ownership(&owner_auth, &srk_auth).expect("ownership");
    tpm.extend(10, &[0x42; 20]).expect("measure the application");
    let data_auth = [0x0Cu8; 20];
    let sealed = tpm
        .seal(handle::SRK, &srk_auth, &data_auth, Some(&PcrSelection::of(&[10])), b"db-password")
        .expect("seal");
    let recovered = tpm.unseal(handle::SRK, &srk_auth, &data_auth, &sealed).expect("unseal");
    println!("sealed + unsealed secret: {}", String::from_utf8_lossy(&recovered));

    // 3. Attestation: create a signing key and quote PCR 10.
    let key_auth = [0x0Du8; 20];
    let blob = tpm
        .create_wrap_key(handle::SRK, &srk_auth, tpm12_usage_signing(), 512, &key_auth, None)
        .expect("create key");
    let key = tpm.load_key2(handle::SRK, &srk_auth, &blob).expect("load key");
    let external = [0x77u8; 20];
    let (pcrs, sig) = tpm
        .quote(key, &key_auth, &external, &PcrSelection::of(&[10]))
        .expect("quote");
    println!("quoted PCR10 = {}", hex(&pcrs[0]));
    println!("signature ({} bytes): {}...", sig.len(), hex(&sig[..8]));

    // The verifier side: check the signature against the key's public half.
    let composite = {
        // Recompute TPM_COMPOSITE_HASH from the quoted values.
        let sel = PcrSelection::of(&[10]);
        let mut buf = Vec::new();
        buf.extend_from_slice(&sel.encode());
        buf.extend_from_slice(&20u32.to_be_bytes());
        buf.extend_from_slice(&pcrs[0]);
        vtpm_xen::crypto::sha1(&buf)
    };
    let digest = vtpm_xen::tpm12::quote_info_digest(&composite, &external);
    let pk = vtpm_xen::crypto::RsaPublicKey {
        n: vtpm_xen::crypto::BigUint::from_bytes_be(&blob.n),
        e: vtpm_xen::crypto::BigUint::from_u64(vtpm_xen::crypto::rsa::E),
    };
    pk.verify_pkcs1_sha1(&digest, &sig).expect("quote verifies");
    println!("remote verifier: quote signature VALID");

    // Every request above went through the access-control hook.
    println!(
        "audit log: {} entries, {} denials",
        platform.hook.audit.len(),
        platform.hook.audit.denials()
    );

    // Observability: every command above was also traced by the
    // telemetry registry. Dump the coherent metrics snapshot (counters,
    // per-stage latency histograms, mirror bytes) as JSON and the
    // buffered spans as a Chrome trace — load the latter in
    // chrome://tracing or https://ui.perfetto.dev to see the request
    // timeline per stage, joinable to the audit log via request id.
    let manager = &platform.platform.manager;
    let snapshot = manager.metrics_snapshot().expect("telemetry enabled by default");
    let spans = manager.telemetry().expect("telemetry enabled by default").drain_spans();
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write("target/quickstart-metrics.json", snapshot.to_json()).expect("write metrics");
    std::fs::write("target/quickstart-trace.json", vtpm_xen::telemetry::chrome_trace(&spans))
        .expect("write trace");
    println!(
        "telemetry: {} requests traced ({} allowed, {} denied), \
         metrics -> target/quickstart-metrics.json, \
         trace ({} spans) -> target/quickstart-trace.json",
        snapshot.finished, snapshot.allowed, snapshot.denied, spans.len(),
    );

    // Fleet-wide view: the same registry, scraped into the observatory.
    // On a real fleet the controller decodes every host's encoded
    // frames off the fabric; a single host feeds the identical
    // merge/rollup/SLO path through the local ingest hooks. Both the
    // per-host snapshot above and the fleet endpoint below render
    // through the shared telemetry encoders, so the two formats cannot
    // drift apart.
    let telemetry = manager.telemetry().expect("telemetry enabled by default");
    let mut observatory = Observatory::default();
    let scrape_ns = 1_000_000u64;
    telemetry.visit_histograms(|name, h| observatory.ingest_local(0, scrape_ns, name, h));
    telemetry.visit_counters(|name, v| observatory.ingest_counter(0, scrape_ns, name, v));
    let burns = observatory.evaluate(scrape_ns);
    let p99 = observatory.fleet_total("total").map(|h| h.snapshot().p99).unwrap_or(0);
    std::fs::write("target/quickstart-fleet.prom", observatory.render_text(scrape_ns))
        .expect("write fleet exposition");
    std::fs::write("target/quickstart-fleet.json", observatory.render_json(scrape_ns))
        .expect("write fleet json");
    println!(
        "observatory: fleet p99 total latency {p99} ns, {} SLO transitions, \
         endpoints -> target/quickstart-fleet.prom + .json",
        burns.len(),
    );
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn tpm12_usage_signing() -> vtpm_xen::tpm12::KeyUsage {
    vtpm_xen::tpm12::KeyUsage::Signing
}
