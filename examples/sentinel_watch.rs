//! Watch a three-host cluster through the observability plane: stitch
//! every host's request spans and a live migration into one causal
//! Chrome trace, then run the A7 migration-window dump attack and let
//! the streaming sentinel catch it from the same exhaust.
//!
//! ```text
//! cargo run --release --example sentinel_watch
//! ```
//!
//! Writes `target/cluster-trace.json` — open it in `chrome://tracing`
//! or Perfetto: one process lane per host, the migration's stage spans
//! laid across source and destination, every slice carrying the
//! `trace_id` both hosts' audit hash-chains recorded.

use vtpm_harness::{audit_event, dump_event};
use vtpm_xen::attack::migration_window_dump;
use vtpm_xen::bench_workload::generate_trace;
use vtpm_xen::prelude::*;
use vtpm_xen::telemetry::cluster_chrome_trace;

fn main() {
    // Three sealed-transfer hosts on a deterministic fabric.
    let mut cluster = Cluster::new(
        b"sentinel-demo",
        ClusterConfig { hosts: 3, ..ClusterConfig::default() },
    )
    .expect("cluster");
    let vm = cluster.create_vm().expect("vm");
    for ev in generate_trace(b"sentinel-demo/warm", 8) {
        cluster.apply_event(vm, &ev);
    }

    // A committed live hand-off to the next host over.
    let src = cluster.home_of(vm).expect("placed");
    let dst = (src + 1) % 3;
    assert_eq!(cluster.migrate(vm, dst), MigrateOutcome::Committed);

    // Stitch the cluster into one causal trace: per-host request spans
    // plus the migration attempt, joined by trace_id to both hosts'
    // audit chains.
    let host_spans: Vec<(u32, Vec<_>)> = cluster
        .hosts
        .iter()
        .enumerate()
        .map(|(h, host)| {
            let spans = host
                .platform
                .manager
                .telemetry()
                .map(|t| t.drain_spans())
                .unwrap_or_default();
            (h as u32, spans)
        })
        .collect();
    let migrations = cluster.telemetry().spans();
    let trace = cluster_chrome_trace(&host_spans, &migrations);
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write("target/cluster-trace.json", &trace).expect("write trace");
    println!(
        "stitched trace: target/cluster-trace.json ({} bytes, {} hosts, {} migration)",
        trace.len(),
        host_spans.len(),
        migrations.len(),
    );
    let mig = &migrations[0];
    println!(
        "  trace_id {:#018x}: vm {} epoch {} host {} -> host {} ({} ns downtime)",
        mig.trace_id, mig.vm, mig.epoch, mig.src_host, mig.dst_host, mig.downtime_ns
    );

    // Now the attack: mid-transfer, dump Dom0 RAM on both ends and
    // record the fabric. Sealed transfer + encrypted mirrors keep the
    // state out of reach...
    let outcome = migration_window_dump(&mut cluster, vm, src);
    println!("\nA7 migration-window dump: succeeded = {}", outcome.succeeded);
    println!("  {}", outcome.detail);
    assert!(!outcome.succeeded, "sealed transfer must hide the state");

    // ...and the sentinel, replaying the very same audit + dump-trail
    // exhaust as a virtual-time stream, flags the attempt.
    let mut sentinel = Sentinel::new(SentinelConfig::default());
    for (h, host) in cluster.hosts.iter().enumerate() {
        for e in host.audit.entries() {
            sentinel.observe(audit_event(h as u32, &e));
        }
        for d in host.platform.hv.dump_events() {
            sentinel.observe(dump_event(h as u32, &d));
        }
    }
    println!("\nsentinel: {} events, alerts:", sentinel.events_seen());
    for a in sentinel.alerts() {
        println!("  {}", a.line());
    }
    assert!(
        sentinel.critical_alerts().any(|a| a.detector == "dump-signature"),
        "the dump-signature detector must fire on the attack's dumps"
    );
    println!("\nthe attack was blocked AND detected.");
}
