#!/usr/bin/env bash
# The CI gate: everything a change must survive before merging.
#
#   1. tier-1: release build + the full test suite of the root package;
#   2. chaos smoke: 8 seeded fault scenarios through the full stack,
#      each replayed twice (determinism) — parallel across cores;
#   3. migration chaos smoke: 8 seeded multi-host migration scenarios
#      plus the exhaustive crash-at-every-step matrix (both roles x
#      every protocol step) on one seed, each replayed twice;
#   4. R-O1: the telemetry self-overhead budget. `repro o1` exits
#      nonzero if the enabled-vs-disabled registry increment exceeds
#      3% of the modelled deployment command latency, failing the gate;
#   5. R-M1: the migration downtime budget. `repro m1` exits nonzero
#      if sealed (destination-bound) transfer adds more than 7 ms of
#      guest-visible blackout over clear transfer at any state size;
#   6. R-D1: the sentinel smoke. `repro d1 --quick` replays a small
#      attack-free chaos sweep with the detection plane consuming every
#      span, audit record, gauge, and dump-trail entry, then injects
#      A1/A7/replay-storm. It exits nonzero on any clean-seed critical
#      alert (a false positive) or any missed injection;
#   7. R-P1: the manager scaling budget. `repro p1 --quick` measures the
#      routing hot path (PcrRead over a fixed active set) at 100 and
#      10 000 resident instances and exits nonzero if the per-command
#      cost degrades by more than 1.5x between the endpoints;
#   8. R-C1: the crypto floor. `repro c1 --quick` measures the optimized
#      RSA-1024 private op (CRT + Montgomery + fixed window) against the
#      retained schoolbook reference and the pipelined AES-CTR keystream,
#      and exits nonzero if the RSA speedup drops below 4x, the private
#      op exceeds 2 ms, or CTR throughput falls below 40 MB/s;
#   9. attest chaos smoke + R-A1: 8 seeded quote-storm/replay-injection
#      scenarios replayed twice each, then `repro a1 --quick` — exits
#      nonzero if the batched+cached issuer falls below 3x the
#      per-request qps at unchanged PCR state, an honest submission is
#      refused, any injected replay/stale quote slips through or goes
#      undetected, the storm-throttle loop fails to close, or an
#      attack-free seed raises a critical alert;
#  10. fleet chaos smoke + R-M2: 8 seeded churn-storm scenarios through
#      the fleet control plane (phi-accrual detection, concurrent
#      drivers, rebalancer) replayed twice each, then `repro m2 --quick`
#      — exits nonzero if any vTPM ends lost/duplicated/orphaned, any
#      journal stays in doubt, any injected double-drive commits two
#      winners, any seed fails byte-identical replay, the p99
#      quiesce->commit blackout blows its budget, or the failure
#      detector suspects more than 2 live hosts on any seed;
#  11. R-O2: the fleet observatory. `repro o2 --quick` runs attack-free
#      churn seeds with the observatory scraping every host and exits
#      nonzero if any SLO burns on a clean seed (zero false burns), a
#      seed fails byte-identical replay with the observatory enabled,
#      the merged cross-host p99 drifts past the histogram's 1/16
#      relative-error bound against exact per-span ground truth, an
#      injected migration-blackout regression fails to walk the full
#      burn -> sentinel alert -> rebalancer pause -> clear -> resume
#      loop, or one scrape+evaluate pass costs more than 3% of the
#      controller's heartbeat period (the R-O1 self-overhead budget,
#      lifted to the fleet plane).
#
# Usage:
#   scripts/ci.sh            # full gate
#   CHAOS_JOBS=4 scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
# --workspace, not bare `cargo build --release`: the bare form builds
# only the root package and would let workspace-member crates (bench
# bins, harness, observatory) rot uncompiled.
cargo build --release --workspace

echo "== tier-1: tests =="
cargo test -q

echo "== chaos smoke: 8 seeds, replayed twice each =="
CHAOS_BASE=ci CHAOS_FAMILY=mirror scripts/chaos.sh 8

echo "== migration chaos smoke: 8 seeds + crash-at-every-step matrix =="
cargo run --release -p vtpm-harness --bin chaos -- \
    --seeds 8 --base ci-mig --family migration --matrix

echo "== R-O1: telemetry overhead budget (hard 3% gate) =="
cargo run --release -p vtpm-bench --bin repro -- o1

echo "== R-M1: migration downtime budget (sealing premium <= 7ms) =="
cargo run --release -p vtpm-bench --bin repro -- m1 --quick

echo "== R-D1: sentinel smoke (zero clean-seed FPs, all injections detected) =="
cargo run --release -p vtpm-bench --bin repro -- d1 --quick

echo "== R-P1: manager scaling budget (10k/100-instance read path <= 1.5x) =="
cargo run --release -p vtpm-bench --bin repro -- p1 --quick

echo "== R-C1: crypto floor (RSA speedup >= 4x, CTR >= 40 MB/s) =="
cargo run --release -p vtpm-bench --bin repro -- c1 --quick

echo "== attest chaos smoke: 8 seeds, replayed twice each =="
cargo run --release -p vtpm-harness --bin chaos -- \
    --seeds 8 --base ci-att --family attest

echo "== R-A1: attestation plane (cached qps >= 3x, clean defense sweep) =="
cargo run --release -p vtpm-bench --bin repro -- a1 --quick

echo "== fleet chaos smoke: 8 seeds, replayed twice each =="
cargo run --release -p vtpm-harness --bin chaos -- \
    --seeds 8 --base ci-fleet --family fleet

echo "== R-M2: fleet churn sweep (exactly-once accounting, single-winner conflicts) =="
cargo run --release -p vtpm-bench --bin repro -- m2 --quick

echo "== R-O2: fleet observatory (zero false burns, SLO closed loop, <= 3% overhead) =="
cargo run --release -p vtpm-bench --bin repro -- o2 --quick

echo "CI gate passed."
