#!/usr/bin/env bash
# The CI gate: everything a change must survive before merging.
#
#   1. tier-1: release build + the full test suite of the root package;
#   2. chaos smoke: 8 seeded fault scenarios through the full stack,
#      each replayed twice (determinism) — parallel across cores;
#   3. R-O1: the telemetry self-overhead budget. `repro o1` exits
#      nonzero if the enabled-vs-disabled registry increment exceeds
#      3% of the modelled deployment command latency, failing the gate.
#
# Usage:
#   scripts/ci.sh            # full gate
#   CHAOS_JOBS=4 scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== chaos smoke: 8 seeds, replayed twice each =="
CHAOS_BASE=ci scripts/chaos.sh 8

echo "== R-O1: telemetry overhead budget (hard 3% gate) =="
cargo run --release -p vtpm-bench --bin repro -- o1

echo "CI gate passed."
