#!/usr/bin/env bash
# Performance trajectory artifacts (machine-readable, one JSON file per
# subsystem, committed nowhere — diff them across checkouts).
#
# Currently emits:
#   BENCH_sentinel.json — sentinel plane numbers: the R-D1 scripted-
#   injection detection results (detected / detector / virtual-time
#   latency / events-to-detection), the false-positive count over an
#   attack-free sweep, wall ns per stream event through the full engine
#   (flight recorder + all five detectors), and R-O1's telemetry
#   self-overhead percentage. The binary exits nonzero if the R-D1 gate
#   fails, so this doubles as a slow-path check.
#
# Usage:
#   scripts/bench.sh             # full sizes
#   scripts/bench.sh --quick     # CI-sized
#   BENCH_OUT=/tmp scripts/bench.sh   # artifact directory

set -euo pipefail
cd "$(dirname "$0")/.."

out_dir="${BENCH_OUT:-.}"
quick=()
if [ "${1:-}" = "--quick" ]; then
    quick=(--quick)
fi

echo "== sentinel bench -> ${out_dir}/BENCH_sentinel.json =="
cargo run --release -p vtpm-bench --bin sentinel_bench -- \
    "${quick[@]}" --out "${out_dir}/BENCH_sentinel.json"
