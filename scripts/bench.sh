#!/usr/bin/env bash
# Performance trajectory artifacts (machine-readable, one JSON file per
# subsystem, committed nowhere — diff them across checkouts).
#
# Currently emits:
#   BENCH_sentinel.json — sentinel plane numbers: the R-D1 scripted-
#   injection detection results (detected / detector / virtual-time
#   latency / events-to-detection), the false-positive count over an
#   attack-free sweep, wall ns per stream event through the full engine
#   (flight recorder + all five detectors), and R-O1's telemetry
#   self-overhead percentage. The binary exits nonzero if the R-D1 gate
#   fails, so this doubles as a slow-path check.
#
#   BENCH_manager.json — Dom0 manager scaling numbers: the R-P1 sweep
#   (read/mutate wall ns per command at 100/1k/10k resident instances,
#   per-command vs group-commit flush policy, staging/commit/flush
#   amortization counters) and the scaling-ratio gate. The binary exits
#   nonzero if the 10k-vs-100 read-path ratio exceeds 1.5x.
#
#   BENCH_crypto.json — crypto-floor numbers: the R-C1 measurement set
#   (optimized vs schoolbook RSA-1024 private op and the speedup ratio,
#   pipelined vs scalar AES-128-CTR MB/s, SHA-256 bulk MB/s and 40-byte
#   ns) plus the gate thresholds. The binary exits nonzero if the RSA
#   speedup drops below 4x, the private op exceeds its absolute
#   ceiling, or pipelined CTR falls below its MB/s floor.
#
#   BENCH_attest.json — attestation-plane numbers: the R-A1 measurement
#   set (per-request vs batched+cached issuance qps and the speedup,
#   farm-scale verification throughput with p50/p99 latency, and the
#   seeded defense scenarios' refusal/throttle/alert counts). The
#   binary exits nonzero if the R-A1 gate fails.
#
#   BENCH_fleet.json — fleet control-plane numbers: the R-M2 churn
#   sweep (per-seed committed/conflict/suspect counts, cluster-wide
#   p99 quiesce->commit blackout in virtual time, exactly-once
#   accounting, byte-identical replays), wall ns per heartbeat through
#   the phi-accrual estimator at fleet width, and wall ns per
#   controller tick at bench scale. The binary exits nonzero if the
#   R-M2 gate fails.
#
#   BENCH_observatory.json — fleet observatory numbers: the R-O2 set
#   (attack-free chaos seeds with scrape/burn/false-suspect counts and
#   replay verdicts, merged cross-host p99 vs exact per-span ground
#   truth with the 1/16 bound, the injected blackout regression's
#   burn->pause->clear->resume loop verdicts, and wall ns per
#   scrape+evaluate pass against the controller's heartbeat period).
#   The binary exits nonzero if the R-O2 gate fails.
#
# Usage:
#   scripts/bench.sh             # full sizes
#   scripts/bench.sh --quick     # CI-sized
#   BENCH_OUT=/tmp scripts/bench.sh   # artifact directory

set -euo pipefail
cd "$(dirname "$0")/.."

out_dir="${BENCH_OUT:-.}"
quick=()
if [ "${1:-}" = "--quick" ]; then
    quick=(--quick)
fi

echo "== sentinel bench -> ${out_dir}/BENCH_sentinel.json =="
cargo run --release -p vtpm-bench --bin sentinel_bench -- \
    "${quick[@]}" --out "${out_dir}/BENCH_sentinel.json"

echo "== manager bench -> ${out_dir}/BENCH_manager.json =="
cargo run --release -p vtpm-bench --bin manager_bench -- \
    "${quick[@]}" --out "${out_dir}/BENCH_manager.json"

echo "== crypto bench -> ${out_dir}/BENCH_crypto.json =="
cargo run --release -p vtpm-bench --bin crypto_bench -- \
    "${quick[@]}" --out "${out_dir}/BENCH_crypto.json"

echo "== attest bench -> ${out_dir}/BENCH_attest.json =="
cargo run --release -p vtpm-bench --bin attest_bench -- \
    "${quick[@]}" --out "${out_dir}/BENCH_attest.json"

echo "== fleet bench -> ${out_dir}/BENCH_fleet.json =="
cargo run --release -p vtpm-bench --bin fleet_bench -- \
    "${quick[@]}" --out "${out_dir}/BENCH_fleet.json"

echo "== observatory bench -> ${out_dir}/BENCH_observatory.json =="
cargo run --release -p vtpm-bench --bin observatory_bench -- \
    "${quick[@]}" --out "${out_dir}/BENCH_observatory.json"
