#!/usr/bin/env bash
# Seeded chaos sweep over the full vTPM stack (see crates/harness).
#
# Runs N seeded scenarios (default 32) in release mode, spread across
# all cores (seeds are independent; output stays in seed order). The
# chaos CLI already executes every scenario twice and reports "REPLAY
# MISMATCH" when the two runs differ, so a non-zero exit here means
# either an oracle divergence, a CTR nonce reuse, a telemetry
# conservation violation, or a nondeterministic replay.
#
# Every scenario family runs: the single-host mirror pipeline, the
# multi-host migration scenarios (plus the exhaustive crash-at-every-
# step migration matrix on one extra seed), and the attestation-plane
# quote-storm/replay scenarios.
#
# Usage:
#   scripts/chaos.sh                 # 32 seeds/family, encrypted mirror
#   scripts/chaos.sh 64              # more seeds
#   scripts/chaos.sh 32 cleartext    # baseline mirror mode
#   CHAOS_BASE=nightly scripts/chaos.sh   # distinct seed namespace
#   CHAOS_JOBS=4 scripts/chaos.sh    # cap worker threads
#   CHAOS_FAMILY=mirror scripts/chaos.sh  # one family only
#   CHAOS_FAMILY=attest scripts/chaos.sh  # attestation plane only

set -euo pipefail
cd "$(dirname "$0")/.."

seeds="${1:-32}"
mode="${2:-encrypted}"
base="${CHAOS_BASE:-chaos}"
jobs="${CHAOS_JOBS:-$(nproc 2>/dev/null || echo 1)}"
family="${CHAOS_FAMILY:-all}"

# The crash matrix only makes sense when migration scenarios run.
matrix=()
case "$family" in
migration | both | all)
    matrix=(--matrix)
    ;;
esac

exec cargo run --release -p vtpm-harness --bin chaos -- \
    --seeds "$seeds" --mode "$mode" --base "$base" --jobs "$jobs" \
    --family "$family" "${matrix[@]}"
